"""Shared configuration for the figure/table regeneration benchmarks.

Each benchmark regenerates one table or figure from the paper and prints
it (run pytest with ``-s`` to see the output live); every rendered report
is also written to ``results/`` so a plain ``pytest benchmarks/
--benchmark-only`` leaves the full set of regenerated tables on disk.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — disk scale for the throughput benchmarks
  (default 0.25: a 700 M slice of the paper's 2.8 G array; use 1.0 for the
  full-size system, at several times the wall-clock cost).
* ``REPRO_BENCH_SEED`` — RNG seed (default 1991).
* ``REPRO_BENCH_APP_CAP_MS`` / ``REPRO_BENCH_SEQ_CAP_MS`` — simulated-time
  caps per measured phase (default 90 000 ms = nine 10-second intervals).
* ``REPRO_BENCH_TOLERANCE`` — stabilization tolerance (default 0.003; the
  paper's 0.1 % rule rarely fires within laptop-sized horizons, so the
  caps normally govern).
* ``REPRO_BENCH_JOBS`` — worker processes per sweep (default 1: serial,
  so benchmark timings stay comparable; parallel output is identical).
* ``REPRO_BENCH_CACHE`` — set to ``0`` to disable the result cache.
* ``REPRO_BENCH_CACHE_DIR`` — cache location (default ``results/.cache``).
  With the cache warm, regenerating every table and figure replays
  cached sweep points instead of recomputing identical simulations;
  delete the directory (or change any knob above) to recompute.

Fragmentation (allocation) benchmarks for TP and SC always run at full
scale — they are cheap and scale-sensitive; TS fragmentation runs at the
throughput scale because its cost is proportional to its file count.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.core.configs import SystemConfig
from repro.core.runner import ExperimentRunner

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1991"))
APP_CAP_MS = float(os.environ.get("REPRO_BENCH_APP_CAP_MS", "90000"))
SEQ_CAP_MS = float(os.environ.get("REPRO_BENCH_SEQ_CAP_MS", "90000"))
TOLERANCE = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.003"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE", "1") != "0"

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
BENCH_CACHE_DIR = pathlib.Path(
    os.environ.get("REPRO_BENCH_CACHE_DIR", str(RESULTS_DIR / ".cache"))
)


@pytest.fixture(scope="session")
def bench_system() -> SystemConfig:
    """The disk system for throughput benchmarks (scaled)."""
    return SystemConfig(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def full_system() -> SystemConfig:
    """The paper's full 2.8 G system (for cheap allocation tests)."""
    return SystemConfig(scale=1.0)


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED


def emit(name: str, text: str) -> None:
    """Print a rendered report and persist it under ``results/``."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def bench_runner() -> ExperimentRunner:
    """One shared experiment runner: cached sweep points replay across
    the whole benchmark session instead of being recomputed per figure."""
    runner = ExperimentRunner(
        jobs=BENCH_JOBS,
        cache_dir=BENCH_CACHE_DIR if BENCH_CACHE else None,
        use_cache=BENCH_CACHE,
    )
    yield runner
    print(f"\n[bench runner] {runner.stats.summary()}")


@pytest.fixture(scope="session")
def perf_caps() -> dict:
    """Keyword arguments for run_performance_experiment."""
    return dict(
        app_cap_ms=APP_CAP_MS, seq_cap_ms=SEQ_CAP_MS, tolerance=TOLERANCE
    )
