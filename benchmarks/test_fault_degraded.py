"""Fault-injection ablation — degraded-mode read latency.

Losing a drive does not lose data on a redundant organization, but it
does cost performance: a RAID-5 read over the dead drive becomes a
reconstruction (read every survivor in the row and XOR), while a
mirrored pair merely loses half its read bandwidth on one side.  This
benchmark quantifies that asymmetry: the same random-read stream against
each organization healthy and with one drive failed at time zero.

Asserted shape: degraded RAID-5 full-row reads are substantially slower
than healthy ones (the reconstruction fan-out doubles the survivors'
work); degraded mirrored reads stay close to healthy (the surviving copy
serves them directly); both remain available (no request fails).
"""

from repro.disk.geometry import WREN_IV
from repro.disk.raid import MirroredArray, Raid5Array
from repro.disk.request import IoKind
from repro.fault.injector import FaultInjector
from repro.fault.plan import DiskFailure, FaultSpec
from repro.report.tables import Table
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStream
from repro.units import KIB

from benchmarks.conftest import emit

GEOMETRY = WREN_IV.scaled(0.25)

#: Organization factory plus its full-row span in units: wide reads
#: touch every drive, so a failed drive affects every request instead of
#: one in n — the penalty measured is the per-request reconstruction
#: cost, undiluted by spans that happen to miss the dead drive.
ORGANIZATIONS = {
    "mirrored": (
        lambda sim: MirroredArray(sim, GEOMETRY, 4, 24 * KIB, KIB),
        4 * 24,
    ),
    "raid5": (
        lambda sim: Raid5Array(sim, GEOMETRY, 8, 24 * KIB, KIB),
        7 * 24,
    ),
}

#: One data drive dies immediately and is never repaired: the whole run
#: measures steady-state degraded operation, not a rebuild transient.
FAILED_DRIVE = FaultSpec(failures=(DiskFailure(0.0, 1),))


def mean_read_latency(make_array, span_units, faults, n_requests=100, seed=5):
    sim = Simulator()
    array = make_array(sim)
    if faults is not None:
        FaultInjector(sim, array, faults)
        sim.run(until=1.0)
    rng = RandomStream(seed)
    done = {}

    def worker():
        total = 0.0
        for _ in range(n_requests):
            start = rng.uniform_int(
                0, max(0, array.capacity_units - span_units)
            )
            began = sim.now
            yield array.transfer(IoKind.READ, start, span_units)
            total += sim.now - began
        done["mean"] = total / n_requests

    sim.process(worker())
    sim.run()
    return done["mean"]


def build_degraded_ablation():
    rows = {}
    for name, (factory, span_units) in ORGANIZATIONS.items():
        healthy = mean_read_latency(factory, span_units, None)
        degraded = mean_read_latency(factory, span_units, FAILED_DRIVE)
        rows[name] = {
            "healthy": healthy,
            "degraded": degraded,
            "penalty": degraded / healthy,
        }
    table = Table(
        ["Organization", "Healthy row read (ms)", "Degraded (ms)", "Penalty"],
        title="Fault ablation: full-row read latency with one drive failed",
    )
    for name, metrics in rows.items():
        table.add_row(
            [
                name,
                f"{metrics['healthy']:.1f}",
                f"{metrics['degraded']:.1f}",
                f"{metrics['penalty']:.2f}x",
            ]
        )
    return table.render(), rows


def test_fault_degraded(benchmark):
    text, rows = benchmark.pedantic(
        build_degraded_ablation, rounds=1, iterations=1
    )
    emit("fault_degraded", text)

    # Reconstruction fans a read over every survivor: RAID-5 pays for it.
    assert rows["raid5"]["penalty"] > 1.2
    # The surviving mirror copy serves reads directly: negligible penalty.
    assert rows["mirrored"]["penalty"] < rows["raid5"]["penalty"]
    assert rows["mirrored"]["penalty"] < 1.1
