"""Figure 6 (a, b) — comparative performance of the four allocation policies.

The §5 head-to-head: buddy, restricted (5 sizes, grow 1, clustered),
extent (first fit, 3 ranges), and the fixed-block baseline (4K for TS,
16K for TP/SC), on sequential (6a) and application (6b) throughput for
every workload.

Paper shapes asserted:

* 6a: every multiblock policy beats fixed block sequentially; SC and TP
  multiblock sequential sits near the full bandwidth; TS never escapes
  the small-file ceiling (~20%).
* 6b: TP application throughput is limited by random reads/writes for
  every policy (well below its sequential number).
"""

from repro.core.comparison import figure6
from repro.report.figures import GroupedBarChart

from benchmarks.conftest import APP_CAP_MS, SEQ_CAP_MS, emit


def build_figure6(bench_system, seed, runner=None):
    cells = figure6(
        bench_system,
        seed=seed,
        app_cap_ms=APP_CAP_MS,
        seq_cap_ms=SEQ_CAP_MS,
        runner=runner,
    )
    sequential = GroupedBarChart(
        "Figure 6a: Sequential performance (% of max throughput)",
        value_format="{:.1f}%",
        maximum=100.0,
    )
    application = GroupedBarChart(
        "Figure 6b: Application performance (% of max throughput)",
        value_format="{:.1f}%",
        maximum=100.0,
    )
    for cell in cells:
        sequential.add(cell.workload, cell.policy_label, cell.sequential_percent)
        application.add(cell.workload, cell.policy_label, cell.application_percent)
    text = sequential.render() + "\n\n" + application.render()
    return text, cells


def test_fig6_comparison(benchmark, bench_system, bench_seed, bench_runner):
    text, cells = benchmark.pedantic(
        build_figure6,
        args=(bench_system, bench_seed, bench_runner),
        rounds=1,
        iterations=1,
    )
    emit("fig6_comparison", text)

    by_cell = {(c.workload, c.policy_label): c for c in cells}

    def seq(workload, label_prefix):
        for (wl, label), cell in by_cell.items():
            if wl == workload and label.startswith(label_prefix):
                return cell.sequential_percent
        raise KeyError((workload, label_prefix))

    def app(workload, label_prefix):
        for (wl, label), cell in by_cell.items():
            if wl == workload and label.startswith(label_prefix):
                return cell.application_percent
        raise KeyError((workload, label_prefix))

    # 6a: multiblock beats fixed sequentially on every workload.
    for workload in ("SC", "TP", "TS"):
        fixed = seq(workload, "fixed")
        for prefix in ("buddy", "restricted", "extent"):
            assert seq(workload, prefix) > fixed, (workload, prefix)

    # 6a: large-file workloads reach high utilization with multiblock.
    for workload in ("SC", "TP"):
        assert max(
            seq(workload, "buddy"),
            seq(workload, "restricted"),
            seq(workload, "extent"),
        ) > 60.0, workload

    # 6a: TS never escapes the small-file ceiling.
    for prefix in ("buddy", "restricted", "extent", "fixed"):
        assert seq("TS", prefix) < 40.0, prefix

    # 6b: TP application throughput is random-I/O limited for every policy.
    for prefix in ("buddy", "restricted", "extent", "fixed"):
        assert app("TP", prefix) < seq("TP", prefix), prefix
