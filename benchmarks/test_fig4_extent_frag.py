"""Figure 4 — extent-based fragmentation over 1..5 extent ranges.

Each workload gets its §4.3 extent-range table; both first-fit and
best-fit run the allocation test.  Paper shape: "even with a wide range of
extent sizes, neither internal nor external fragmentation surpasses 5%",
and "best fit consistently resulted in less fragmentation".
"""

from repro.core.sweeps import sweep_extent_fragmentation
from repro.report.figures import GroupedBarChart

from benchmarks.conftest import emit

PANELS = (("SC", "4a/4b"), ("TP", "4c/4d"), ("TS", "4e/4f"))


def render_panels(workload, panel_name, points) -> str:
    internal = GroupedBarChart(
        f"Figure {panel_name.split('/')[0]}: {workload} internal fragmentation "
        "(% of allocated space)",
        value_format="{:.1f}%",
    )
    external = GroupedBarChart(
        f"Figure {panel_name.split('/')[1]}: {workload} external fragmentation "
        "(% of total space)",
        value_format="{:.1f}%",
    )
    for point in points:
        frag = point.allocation.fragmentation
        internal.add(point.group_label, point.series_label, frag.internal_percent)
        external.add(point.group_label, point.series_label, frag.external_percent)
    return internal.render() + "\n\n" + external.render()


def build_figure4(bench_system, full_system, seed, runner=None):
    sections = []
    sweeps = {}
    for workload, panel in PANELS:
        system = full_system if workload in ("SC", "TP") else bench_system
        points = sweep_extent_fragmentation(workload, system, seed=seed, runner=runner)
        sweeps[workload] = points
        sections.append(render_panels(workload, panel, points))
    return "\n\n".join(sections), sweeps


def test_fig4_extent_fragmentation(
    benchmark, bench_system, full_system, bench_seed, bench_runner
):
    text, sweeps = benchmark.pedantic(
        build_figure4,
        args=(bench_system, full_system, bench_seed, bench_runner),
        rounds=1,
        iterations=1,
    )
    emit("fig4_extent_frag", text)

    # The paper's headline: extent fragmentation stays low.  SC/TP land
    # well under the paper's 5%; TS runs higher than the paper because our
    # small-file size deviation (±2K around 8K, unreported in the paper)
    # leaves partial final extents — see EXPERIMENTS.md.
    for workload, points in sweeps.items():
        limit = 20.0 if workload == "TS" else 8.0
        for point in points:
            frag = point.allocation.fragmentation
            assert frag.internal_percent < limit, (workload, point.series_label)
            assert frag.external_percent < 12.0, (workload, point.series_label)

    # Best fit fragments externally no worse than first fit on average.
    def mean_external(points, fit):
        values = [
            p.allocation.fragmentation.external_fraction
            for p in points
            if p.fit == fit
        ]
        return sum(values) / len(values)

    across = [
        (mean_external(points, "best"), mean_external(points, "first"))
        for points in sweeps.values()
    ]
    best_mean = sum(b for b, _ in across) / len(across)
    first_mean = sum(f for _, f in across) / len(across)
    assert best_mean <= first_mean + 0.01
