"""Extension ablation — Koch's nightly reallocator.

The paper deliberately measures the buddy system *without* Koch's
background reallocation ("we consider only the allocation and
deallocation algorithm"), and Table 3 duly shows severe internal
fragmentation.  Koch's own paper reports that with the nightly
reallocator "most files are allocated in 3 extents and average under 4%
internal fragmentation."

This ablation closes the loop: run the paper's allocation test with the
buddy policy, then run one nightly reallocation pass, and measure both
claims directly.
"""

from repro.core.configs import SystemConfig
from repro.core.experiments import allocation_fill_for, build_profile
from repro.core.configs import BuddyPolicy
from repro.fs.filesystem import FileSystem
from repro.report.tables import Table
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStream

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, emit


def run_with_reallocation(workload: str):
    """Populate to the workload's operating fill (not disk-full: Koch's
    reallocator runs nightly on a live system and needs scratch space),
    then run one reallocation pass."""
    system = SystemConfig(scale=1.0 if workload in ("SC", "TP") else BENCH_SCALE)
    sim = Simulator()
    array = system.build_array(sim)
    allocator = BuddyPolicy().build(
        array.capacity_units, system.disk_unit_bytes, RandomStream(BENCH_SEED)
    )
    fs = FileSystem(sim, array, allocator)
    # TS at 60% fill: buddy's power-of-two rounding makes the *allocated*
    # fraction much higher than the logical fill.
    fill = 0.60 if workload == "TS" else allocation_fill_for(workload)
    profile = build_profile(workload, system, fill)
    from repro.workload.driver import WorkloadDriver

    driver = WorkloadDriver(sim, fs, profile, seed=BENCH_SEED)
    driver.populate()
    before = fs.fragmentation()
    before_extents = (
        sum(h.extent_count for h in allocator.files.values())
        / max(1, len(allocator.files))
    )
    fs.reorganize(max_extents=3)
    after = fs.fragmentation()
    after_extents = (
        sum(h.extent_count for h in allocator.files.values())
        / max(1, len(allocator.files))
    )
    return before, after, before_extents, after_extents


def build_reallocator_ablation():
    table = Table(
        [
            "Workload",
            "Internal before",
            "Internal after",
            "Extents/file before",
            "Extents/file after",
        ],
        title=(
            "Ablation: Koch's nightly reallocator on the buddy system "
            "(Koch 1987: most files in 3 extents, <4% internal frag)"
        ),
    )
    outcomes = {}
    for workload in ("SC", "TP", "TS"):
        before, after, extents_before, extents_after = run_with_reallocation(
            workload
        )
        outcomes[workload] = (before, after, extents_after)
        table.add_row(
            [
                workload,
                f"{before.internal_percent:.1f}%",
                f"{after.internal_percent:.1f}%",
                f"{extents_before:.1f}",
                f"{extents_after:.1f}",
            ]
        )
    return table.render(), outcomes


def test_ablation_reallocator(benchmark):
    text, outcomes = benchmark.pedantic(
        build_reallocator_ablation, rounds=1, iterations=1
    )
    emit("ablation_reallocator", text)
    for workload, (before, after, extents_after) in outcomes.items():
        assert after.internal_fraction <= before.internal_fraction, workload
    # SC and TS land near Koch's published operating point (<4% internal,
    # ~3 extents).  TP barely moves: reshaping a 210M relation requires a
    # contiguous ~128M scratch block Koch's whole-file copy cannot find at
    # 75% fill — a genuine limitation of the 1987 design at database
    # scales, and quietly part of why the paper excluded the reallocator.
    for workload in ("SC", "TS"):
        before, after, extents_after = outcomes[workload]
        assert after.internal_percent < 10.0, workload
        assert extents_after <= 3.5, workload
