"""Figure 5 — extent-based application and sequential throughput.

Grouped bars over {1..5 extent ranges} × {first fit, best fit} for each
workload.  Paper shapes: throughput is "fairly insensitive to the
selection of best fit or first fit", and for SC/TP the best sequential
numbers coincide with the configurations that minimize extents per file.
"""

from repro.core.sweeps import sweep_extent_performance
from repro.report.figures import GroupedBarChart

from benchmarks.conftest import APP_CAP_MS, SEQ_CAP_MS, emit

PANELS = (("SC", "5a/5b"), ("TP", "5c/5d"), ("TS", "5e/5f"))


def render_panels(workload, panel_name, points) -> str:
    application = GroupedBarChart(
        f"Figure {panel_name.split('/')[0]}: {workload} application "
        "performance (% of max throughput)",
        value_format="{:.1f}%",
        maximum=100.0,
    )
    sequential = GroupedBarChart(
        f"Figure {panel_name.split('/')[1]}: {workload} sequential "
        "performance (% of max throughput)",
        value_format="{:.1f}%",
        maximum=100.0,
    )
    for point in points:
        perf = point.performance
        application.add(point.group_label, point.series_label, perf.application.percent)
        sequential.add(point.group_label, point.series_label, perf.sequential.percent)
    return application.render() + "\n\n" + sequential.render()


def build_figure5(bench_system, seed, runner=None):
    sections = []
    sweeps = {}
    for workload, panel in PANELS:
        points = sweep_extent_performance(
            workload,
            bench_system,
            seed=seed,
            app_cap_ms=APP_CAP_MS,
            seq_cap_ms=SEQ_CAP_MS,
            runner=runner,
        )
        sweeps[workload] = points
        sections.append(render_panels(workload, panel, points))
    return "\n\n".join(sections), sweeps


def test_fig5_extent_performance(benchmark, bench_system, bench_seed, bench_runner):
    text, sweeps = benchmark.pedantic(
        build_figure5,
        args=(bench_system, bench_seed, bench_runner),
        rounds=1,
        iterations=1,
    )
    emit("fig5_extent_perf", text)

    # Fit policy is a second-order effect: mean |first - best| sequential
    # gap stays small relative to the throughput scale.
    for workload, points in sweeps.items():
        by_ranges = {}
        for point in points:
            by_ranges.setdefault(point.n_ranges, {})[point.fit] = (
                point.performance.sequential.utilization
            )
        gaps = [
            abs(pair["first"] - pair["best"])
            for pair in by_ranges.values()
            if len(pair) == 2
        ]
        assert sum(gaps) / len(gaps) < 0.25, workload

    # SC and TP sequential throughput dwarfs TS (small files dominate TS).
    ts_best = max(p.performance.sequential.utilization for p in sweeps["TS"])
    for workload in ("SC", "TP"):
        best = max(p.performance.sequential.utilization for p in sweeps[workload])
        assert best > ts_best, workload
