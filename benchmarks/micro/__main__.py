"""CLI for the microbenchmark suite: run, emit BENCH_core.json, check.

Examples::

    # Full run, write the perf record:
    PYTHONPATH=src python -m benchmarks.micro --output BENCH_core.json

    # Record a baseline section (e.g. numbers measured on the previous
    # engine) alongside fresh numbers, with speedups computed:
    PYTHONPATH=src python -m benchmarks.micro \\
        --baseline old_numbers.json --output BENCH_core.json

    # CI guard: exit 1 if any rate drops >30 % below the committed file:
    PYTHONPATH=src python -m benchmarks.micro --check BENCH_core.json \\
        --scale 0.25 --repeats 2
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from .core import run_suite

#: CI failure threshold: fresh rate must be >= (1 - this) * committed rate.
REGRESSION_TOLERANCE = 0.30


def _load_benchmarks(path: pathlib.Path) -> dict:
    data = json.loads(path.read_text())
    return data.get("benchmarks", data)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.micro", description="simulator hot-path microbenchmarks"
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (1.0 = full, CI uses less)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per benchmark (best run reported)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write results JSON here (e.g. BENCH_core.json)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="JSON with reference numbers to embed as the "
                             "'baseline' section (speedups are computed)")
    parser.add_argument("--check", default=None, metavar="PATH",
                        help="committed BENCH_core.json to compare against; "
                             f"exit 1 on a >{REGRESSION_TOLERANCE:.0%} drop")
    parser.add_argument("--only", default=None, metavar="NAME",
                        help="run a single benchmark by name")
    args = parser.parse_args(argv)

    results = run_suite(scale=args.scale, repeats=args.repeats)
    if args.only is not None:
        if args.only not in results:
            parser.error(f"unknown benchmark {args.only!r}")
        results = {args.only: results[args.only]}

    record: dict = {
        "schema": 1,
        "suite": "benchmarks/micro",
        "config": {"scale": args.scale, "repeats": args.repeats},
        "benchmarks": results,
    }

    if args.baseline is not None:
        baseline = _load_benchmarks(pathlib.Path(args.baseline))
        record["baseline"] = baseline
        record["speedup"] = {
            name: round(result["value"] / baseline[name]["value"], 3)
            for name, result in results.items()
            if name in baseline and baseline[name].get("value")
        }

    for name, result in results.items():
        line = f"{name:14s} {result['value']:>14,.0f} {result['metric']}"
        speedup = record.get("speedup", {}).get(name)
        if speedup is not None:
            line += f"   ({speedup:.2f}x vs baseline)"
        print(line)

    status = 0
    if args.check is not None:
        committed = _load_benchmarks(pathlib.Path(args.check))
        floor = 1.0 - REGRESSION_TOLERANCE
        for name, reference in committed.items():
            fresh = results.get(name)
            if fresh is None or not reference.get("value"):
                continue
            ratio = fresh["value"] / reference["value"]
            verdict = "ok" if ratio >= floor else "REGRESSION"
            print(f"check {name:14s} {ratio:6.2f}x of committed baseline: {verdict}")
            if ratio < floor:
                status = 1
        if status:
            print(
                f"FAIL: rate dropped more than {REGRESSION_TOLERANCE:.0%} below "
                f"{args.check}", file=sys.stderr,
            )

    if args.output is not None:
        path = pathlib.Path(args.output)
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
