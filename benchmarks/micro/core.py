"""Microbenchmark implementations and the timing harness.

Each benchmark builds a deterministic, seeded workload, times the hot loop
with :func:`time.perf_counter` over ``repeats`` runs, and reports the best
(fastest) run as a throughput rate.  The workload construction happens
outside the timed region, so the numbers isolate the engine / disk /
allocator inner loops themselves.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.alloc.base import Allocator
from repro.core.configs import (
    BuddyPolicy,
    ExperimentConfig,
    ExtentPolicy,
    FfsPolicy,
    FixedPolicy,
    LogStructuredPolicy,
    PolicyConfig,
    RestrictedPolicy,
    SystemConfig,
)
from repro.disk.drive import DiskDrive
from repro.disk.geometry import WREN_IV
from repro.disk.request import DiskRequest, IoKind
from repro.errors import DiskFullError
from repro.sim.engine import Simulator, Waitable
from repro.sim.rng import RandomStream

#: 1K disk units over a 64 M address space for the allocator churn.
_ALLOC_CAPACITY_UNITS = 65_536
_ALLOC_UNIT_BYTES = 1024


def _best_of(repeats: int, run: Callable[[], tuple[int, float]]) -> tuple[int, float]:
    """Run ``run`` ``repeats`` times; return (work_items, best_seconds)."""
    best_n = 0
    best_s = float("inf")
    for _ in range(max(1, repeats)):
        n, seconds = run()
        if seconds < best_s:
            best_n, best_s = n, seconds
    return best_n, best_s


# ---------------------------------------------------------------------------
# engine_loop — end-to-end event engine
# ---------------------------------------------------------------------------


def bench_engine_loop(scale: float = 1.0, repeats: int = 3) -> dict[str, Any]:
    """End-to-end engine microbenchmark.

    ``n_chains`` ping-pong processes each round-trip through one heap-
    scheduled timer plus one zero-delay waitable resumption, with delays
    quantized to 0.25 ms so same-timestamp ties are common.  A second
    population of plain sleepers exercises the pure timer path.  This is
    the "end-to-end engine microbenchmark" guarded by CI.
    """
    until_ms = max(50.0, 4000.0 * scale)
    n_chains = 48
    n_sleepers = 16

    def run() -> tuple[int, float]:
        sim = Simulator()
        rng = RandomStream(7, "micro-engine")
        # Quantized delays: heavy (time, seq) tie traffic.
        delays = tuple(
            0.25 * rng.uniform_int(1, 12) for _ in range(1024)
        )

        def chain(offset: int):
            i = offset
            while True:
                waitable = Waitable()
                sim.schedule(delays[i & 1023], waitable.succeed)
                yield waitable  # resumes via the zero-delay path
                i += 3

        def sleeper(offset: int):
            i = offset
            while True:
                yield delays[(i * 7) & 1023]
                i += 1

        for k in range(n_chains):
            sim.process(chain(k))
        for k in range(n_sleepers):
            sim.process(sleeper(k))
        start = time.perf_counter()
        sim.run(until=until_ms)
        elapsed = time.perf_counter() - start
        return sim.events_executed, elapsed

    events, seconds = _best_of(repeats, run)
    return {
        "metric": "events_per_sec",
        "value": events / seconds,
        "work": events,
        "best_s": seconds,
    }


# ---------------------------------------------------------------------------
# disk_service — DiskDrive.service hot path
# ---------------------------------------------------------------------------


def bench_disk_service(scale: float = 1.0, repeats: int = 3) -> dict[str, Any]:
    """Time :meth:`DiskDrive.service` over a sequential/random request mix.

    Requests are prebuilt outside the timed loop: three-quarters continue
    the previous transfer (the paper's sequential-read regime, which
    exercises the skew/rotation math), one quarter seek to a random
    cylinder.
    """
    n_requests = max(500, int(120_000 * scale))
    rng = RandomStream(11, "micro-disk")
    capacity = WREN_IV.capacity_bytes
    requests = []
    position = 0
    for i in range(n_requests):
        if i % 4 == 3:
            position = rng.uniform_int(0, (capacity - 1) // 8192 - 1) * 8192
        n_bytes = 8192 if i % 2 == 0 else 24 * 1024
        if position + n_bytes > capacity:
            position = 0
        requests.append(DiskRequest(IoKind.READ, position, n_bytes))
        position += n_bytes

    def run() -> tuple[int, float]:
        drive = DiskDrive(WREN_IV)
        clock = 0.0
        start = time.perf_counter()
        for request in requests:
            breakdown = drive.service(request, clock)
            clock += breakdown.total_ms
        elapsed = time.perf_counter() - start
        return n_requests, elapsed

    count, seconds = _best_of(repeats, run)
    return {
        "metric": "requests_per_sec",
        "value": count / seconds,
        "work": count,
        "best_s": seconds,
    }


# ---------------------------------------------------------------------------
# alloc_churn — allocator inner loops
# ---------------------------------------------------------------------------


def _churn(allocator: Allocator, rng: RandomStream, n_ops: int) -> int:
    files: list[Any] = []
    performed = 0
    for i in range(n_ops):
        op = i % 8
        try:
            if op in (0, 1) or not files:
                handle = allocator.create(size_hint_units=rng.uniform_int(1, 64))
                allocator.extend(handle, rng.uniform_int(1, 64))
                files.append(handle)
            elif op in (2, 3, 4):
                allocator.extend(rng.choice(files), rng.uniform_int(1, 32))
            elif op == 5:
                handle = rng.choice(files)
                if handle.allocated_units > 1:
                    allocator.truncate(handle, handle.allocated_units // 2)
            else:
                index = rng.uniform_int(0, len(files) - 1)
                allocator.delete(files.pop(index))
        except DiskFullError:
            while len(files) > 4:
                allocator.delete(files.pop())
        performed += 1
    return performed


def _bench_policy_churn(
    policy: PolicyConfig, scale: float, repeats: int
) -> dict[str, Any]:
    """Create/extend/truncate/delete churn on one allocation policy."""
    n_ops = max(200, int(30_000 * scale))

    def run() -> tuple[int, float]:
        rng = RandomStream(13, "micro-alloc")
        allocator = policy.build(
            _ALLOC_CAPACITY_UNITS, _ALLOC_UNIT_BYTES, rng.fork("policy")
        )
        ops_rng = rng.fork("ops")
        start = time.perf_counter()
        performed = _churn(allocator, ops_rng, n_ops)
        elapsed = time.perf_counter() - start
        return performed, elapsed

    count, seconds = _best_of(repeats, run)
    return {
        "metric": "ops_per_sec",
        "value": count / seconds,
        "work": count,
        "best_s": seconds,
    }


def bench_alloc_churn(scale: float = 1.0, repeats: int = 3) -> dict[str, Any]:
    """Churn on the restricted buddy policy (the paper's central design)."""
    return _bench_policy_churn(RestrictedPolicy(), scale, repeats)


# ---------------------------------------------------------------------------
# experiment_point — end-to-end application-phase experiment
# ---------------------------------------------------------------------------

#: System scale for the macro benchmark points.  Small enough that one
#: repeat stays in benchmark territory, large enough that the TS file
#: population (the delete-churn scan victim) numbers in the thousands.
_POINT_SYSTEM_SCALE = 0.05


def _bench_experiment_point(
    workload: str, cap_ms: float, scale: float, repeats: int
) -> dict[str, Any]:
    """One full application-phase performance point, measured end to end.

    Unlike the microbenchmarks above, this times the whole experiment
    path — populate, prefill, warm-up, and the timed application phase
    through the workload driver, file system, allocator, and disk array —
    and reports workload operations completed per wall-clock second.
    The simulated-time cap is deliberately NOT scaled down for CI: the
    fixed populate cost is amortized over the capped run, so shrinking
    the cap would change the ops/sec a run reports and make the CI-scale
    ``--check`` comparison against the committed full-scale record
    meaningless.  ``scale`` instead trims the repeat count (the whole
    point is only a few seconds per repeat at this system scale).
    """
    from repro.core.experiments import run_performance_experiment

    app_cap = cap_ms
    if scale < 1.0:
        repeats = max(1, round(repeats * scale))

    def run() -> tuple[int, float]:
        config = ExperimentConfig(
            policy=RestrictedPolicy(),
            workload=workload,
            system=SystemConfig(scale=_POINT_SYSTEM_SCALE),
        )
        start = time.perf_counter()
        result = run_performance_experiment(
            config,
            app_cap_ms=app_cap,
            warmup_ms=1_000.0,
            run_sequential=False,
        )
        elapsed = time.perf_counter() - start
        return sum(result.operation_counts.values()), elapsed

    ops, seconds = _best_of(repeats, run)
    return {
        "metric": "ops_per_sec",
        "value": ops / seconds,
        "work": ops,
        "best_s": seconds,
    }


def bench_experiment_point(scale: float = 1.0, repeats: int = 3) -> dict[str, Any]:
    """Tiny TS application-phase point (the delete-churn hot path)."""
    return _bench_experiment_point("TS", 60_000.0, scale, repeats)


def bench_experiment_point_tp(scale: float = 1.0, repeats: int = 3) -> dict[str, Any]:
    """TP variant: small-file random I/O against a fixed population."""
    return _bench_experiment_point("TP", 60_000.0, scale, repeats)


def bench_experiment_point_sc(scale: float = 1.0, repeats: int = 3) -> dict[str, Any]:
    """SC variant: large sequential bursts (array transfer path heavy)."""
    return _bench_experiment_point("SC", 60_000.0, scale, repeats)


#: The per-policy churn variants (``alloc_churn`` itself is restricted).
_CHURN_POLICIES: dict[str, PolicyConfig] = {
    "alloc_churn_buddy": BuddyPolicy(),
    "alloc_churn_extent": ExtentPolicy(),
    "alloc_churn_ffs": FfsPolicy(),
    "alloc_churn_fixed": FixedPolicy(),
    "alloc_churn_log": LogStructuredPolicy(),
}


def _make_policy_bench(policy: PolicyConfig) -> Callable[[float, int], dict[str, Any]]:
    def bench(scale: float = 1.0, repeats: int = 3) -> dict[str, Any]:
        return _bench_policy_churn(policy, scale, repeats)

    return bench


#: Registry: name -> benchmark callable(scale, repeats) -> result dict.
BENCHMARKS: dict[str, Callable[[float, int], dict[str, Any]]] = {
    "engine_loop": bench_engine_loop,
    "disk_service": bench_disk_service,
    "alloc_churn": bench_alloc_churn,
    **{name: _make_policy_bench(policy)
       for name, policy in _CHURN_POLICIES.items()},
    "experiment_point": bench_experiment_point,
    "experiment_point_tp": bench_experiment_point_tp,
    "experiment_point_sc": bench_experiment_point_sc,
}


def run_suite(scale: float = 1.0, repeats: int = 3) -> dict[str, dict[str, Any]]:
    """Run every registered microbenchmark; return name -> result."""
    return {
        name: bench(scale, repeats) for name, bench in sorted(BENCHMARKS.items())
    }
