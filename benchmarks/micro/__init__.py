"""Microbenchmarks for the simulator's hot paths.

Unlike the figure/table benchmarks one directory up (which regenerate the
paper's results), these time the three inner loops every experiment rides
on:

* ``engine_loop`` — the end-to-end discrete-event engine: heap-scheduled
  timers, same-timestamp ties, and zero-delay waitable resumptions.
* ``disk_service`` — :meth:`repro.disk.drive.DiskDrive.service`: seek,
  positional rotation, and transfer-time math.
* ``alloc_churn`` — allocator create/extend/truncate/delete churn on the
  restricted buddy policy.

Run the suite and emit ``BENCH_core.json`` (the repo's perf trajectory
record)::

    PYTHONPATH=src python -m benchmarks.micro --output BENCH_core.json

Compare a fresh run against a committed baseline (used by CI; exits 1 on
a >30 % events/sec regression)::

    PYTHONPATH=src python -m benchmarks.micro --check BENCH_core.json

Workloads are seeded and deterministic; only wall-clock time varies
between runs.  Rates are throughput figures (events/sec, requests/sec,
ops/sec), so they are comparable across ``--scale`` values.
"""

from .core import BENCHMARKS, run_suite  # noqa: F401
