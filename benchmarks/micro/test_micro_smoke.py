"""Smoke tests: every microbenchmark runs and reports a sane rate.

These run at a tiny scale so ``pytest benchmarks`` stays fast; the real
numbers come from ``python -m benchmarks.micro``.
"""

from __future__ import annotations

import json

from benchmarks.micro import BENCHMARKS, run_suite
from benchmarks.micro.__main__ import main as micro_main


def test_registry_names():
    assert set(BENCHMARKS) == {"engine_loop", "disk_service", "alloc_churn"}


def test_suite_smoke_rates_positive():
    results = run_suite(scale=0.01, repeats=1)
    for name, result in results.items():
        assert result["value"] > 0, name
        assert result["work"] > 0, name
        assert result["metric"].endswith("_per_sec"), name


def test_cli_emits_json_and_checks(tmp_path, capsys):
    output = tmp_path / "BENCH_core.json"
    assert micro_main(["--scale", "0.01", "--repeats", "1",
                       "--output", str(output)]) == 0
    record = json.loads(output.read_text())
    assert record["schema"] == 1
    assert set(record["benchmarks"]) == set(BENCHMARKS)
    # Self-check against the numbers just written always passes the
    # 30 % tolerance in expectation; force a guaranteed failure instead
    # by inflating the committed reference.
    for entry in record["benchmarks"].values():
        entry["value"] *= 100.0
    inflated = tmp_path / "inflated.json"
    inflated.write_text(json.dumps(record))
    assert micro_main(["--scale", "0.01", "--repeats", "1",
                       "--check", str(inflated)]) == 1
    capsys.readouterr()


def test_cli_baseline_speedup(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    first = micro_main(["--scale", "0.01", "--repeats", "1",
                        "--output", str(baseline)])
    assert first == 0
    output = tmp_path / "BENCH_core.json"
    assert micro_main(["--scale", "0.01", "--repeats", "1",
                       "--baseline", str(baseline),
                       "--output", str(output)]) == 0
    record = json.loads(output.read_text())
    assert set(record["speedup"]) == set(BENCHMARKS)
    assert all(ratio > 0 for ratio in record["speedup"].values())
    capsys.readouterr()
