"""Extension ablation — redundant disk organizations (§6 future work).

"Secondly, the impact of a RAID in the underlying disk system will reduce
the small write performance."  This benchmark measures exactly that: the
same request patterns against the plain striped array (the paper's
configuration), a mirrored pair, RAID-5, and Gray/Walker parity striping.

Asserted shape: RAID-5's read-modify-write makes small random writes
substantially slower than on the plain striped array, while large
sequential reads remain competitive (within a data-drive factor).
"""

from repro.disk.geometry import WREN_IV
from repro.disk.raid import MirroredArray, ParityStripedArray, Raid5Array
from repro.disk.array import StripedArray
from repro.disk.request import IoKind
from repro.report.tables import Table
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStream
from repro.units import KIB, MIB

from benchmarks.conftest import emit

GEOMETRY = WREN_IV.scaled(0.25)


def mean_latency(make_array, kind, request_units, n_requests, seed=5):
    sim = Simulator()
    array = make_array(sim)
    rng = RandomStream(seed)
    done = {}

    def worker():
        total = 0.0
        for _ in range(n_requests):
            start = rng.uniform_int(0, max(0, array.capacity_units - request_units))
            began = sim.now
            yield array.transfer(kind, start, request_units)
            total += sim.now - began
        done["mean"] = total / n_requests

    sim.process(worker())
    sim.run()
    return done["mean"]


ORGANIZATIONS = {
    "striped": lambda sim: StripedArray(sim, GEOMETRY, 8, 24 * KIB, KIB),
    "mirrored": lambda sim: MirroredArray(sim, GEOMETRY, 4, 24 * KIB, KIB),
    "raid5": lambda sim: Raid5Array(sim, GEOMETRY, 8, 24 * KIB, KIB),
    "parity-striped": lambda sim: ParityStripedArray(sim, GEOMETRY, 8, KIB),
}


def build_raid_ablation():
    rows = {}
    for name, factory in ORGANIZATIONS.items():
        rows[name] = {
            "small-write": mean_latency(factory, IoKind.WRITE, 8, 150),
            "small-read": mean_latency(factory, IoKind.READ, 8, 150),
            "big-read": mean_latency(factory, IoKind.READ, 4 * MIB // KIB, 15),
        }
    table = Table(
        ["Organization", "8K write (ms)", "8K read (ms)", "4M read (ms)"],
        title="Ablation (paper §6 future work): request latency by disk "
        "organization",
    )
    for name, metrics in rows.items():
        table.add_row(
            [
                name,
                f"{metrics['small-write']:.1f}",
                f"{metrics['small-read']:.1f}",
                f"{metrics['big-read']:.1f}",
            ]
        )
    return table.render(), rows


def test_ablation_raid(benchmark):
    text, rows = benchmark.pedantic(build_raid_ablation, rounds=1, iterations=1)
    emit("ablation_raid", text)

    # The paper's prediction: RAID reduces small-write performance.
    assert rows["raid5"]["small-write"] > 1.4 * rows["striped"]["small-write"]
    assert rows["parity-striped"]["small-write"] > 1.2 * rows["striped"]["small-write"]
    # Reads are unharmed by parity.
    assert rows["raid5"]["small-read"] < 1.2 * rows["striped"]["small-read"]
    # Large sequential reads stay within a small factor on RAID-5.
    assert rows["raid5"]["big-read"] < 2.0 * rows["striped"]["big-read"]
