"""Extension ablation — log-structured allocation (§6 future work).

"In the small file environment we might want to incorporate policies from
a log structured file system to allocate blocks [ROSE90]."  This
benchmark builds the environment that suggestion targets — a
write-dominated small-file churn (files created, written once, soon
deleted) — and compares the read-optimized policies against the
:class:`~repro.core.configs.LogStructuredPolicy` extension.

Expected shape: the threaded log turns scattered small writes into
sequential ones, beating the read-optimized policies on this write-heavy
mix, while remaining unremarkable on the read-optimized policies' home
turf (the paper's own TS mix, two-thirds reads).
"""

from repro.core.configs import (
    ExtentPolicy,
    FixedPolicy,
    LogStructuredPolicy,
    RestrictedPolicy,
    SystemConfig,
    extent_ranges_for,
)
from repro.fs.filesystem import FileSystem
from repro.report.tables import Table
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStream
from repro.units import KIB
from repro.workload.driver import WorkloadDriver
from repro.workload.filetype import AccessPattern, FileType
from repro.workload.profiles import Profile

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, emit


def write_heavy_profile(capacity_bytes: int) -> Profile:
    """Small files created, written, and deleted — almost no reads."""
    n_files = max(1, int(capacity_bytes * 0.6 / (8 * KIB)))
    churner = FileType(
        name="lfs-churn",
        n_files=n_files,
        n_users=24,
        process_time_ms=10.0,
        hit_frequency_ms=20.0,
        rw_size_bytes=8 * KIB,
        rw_deviation_bytes=2 * KIB,
        allocation_size_bytes=2 * KIB,
        truncate_size_bytes=4 * KIB,
        initial_size_bytes=8 * KIB,
        initial_deviation_bytes=2 * KIB,
        read_ratio=15.0,
        write_ratio=45.0,
        extend_ratio=0.0,
        truncate_ratio=0.0,
        delete_ratio=40.0,
        access=AccessPattern.RANDOM,
    )
    return Profile(name="LFS-CHURN", types=(churner,))


def measure_policy(policy, system, seed) -> float:
    """Application-phase utilization under the write-heavy churn."""
    sim = Simulator()
    array = system.build_array(sim)
    allocator = policy.build(
        array.capacity_units, system.disk_unit_bytes, RandomStream(seed, "a")
    )
    fs = FileSystem(sim, array, allocator)
    profile = write_heavy_profile(system.capacity_bytes)
    driver = WorkloadDriver(sim, fs, profile, seed=seed, lower_bound=0.01)
    driver.populate()
    driver.start_users()
    sim.run(until=5_000)
    from repro.sim.meters import ThroughputMeter

    meter = ThroughputMeter(array.max_bandwidth_bytes_per_ms, start_time=sim.now)
    fs.meter = meter
    started = sim.now
    sim.run(until=started + 60_000)
    return meter.stable_utilization(sim.now)


POLICIES = (
    LogStructuredPolicy(),
    RestrictedPolicy(block_sizes=("1K", "8K", "64K")),
    ExtentPolicy(range_means=extent_ranges_for("TS", 3)),
    FixedPolicy("4K"),
)


def build_lfs_ablation():
    system = SystemConfig(scale=min(BENCH_SCALE, 0.1))
    results = {
        policy.label: measure_policy(policy, system, BENCH_SEED)
        for policy in POLICIES
    }
    table = Table(
        ["Policy", "Write-churn throughput (% max)"],
        title="Ablation (paper §6 future work): log-structured allocation "
        "on a write-dominated small-file churn",
    )
    for label, value in sorted(results.items(), key=lambda kv: -kv[1]):
        table.add_row([label, f"{100 * value:.1f}%"])
    return table.render(), results


def test_ablation_log_structured(benchmark):
    text, results = benchmark.pedantic(build_lfs_ablation, rounds=1, iterations=1)
    emit("ablation_lfs", text)

    lfs = results["log-structured"]
    # The write-optimized log beats every read-optimized policy on the
    # write-dominated churn (ROSE90's claim, and the paper's motivation
    # for flagging it as future work).
    for label, value in results.items():
        if label != "log-structured":
            assert lfs > value, (label, value, lfs)
