"""Figure 2 (a–f) — restricted buddy application and sequential throughput.

Six panels: {SC, TP, TS} × {application, sequential}, each a grouped bar
chart over {2, 3, 4, 5 block sizes} × {grow 1/2} × {clustered/unclustered}.

Paper shapes asserted: the configurations with larger block sizes provide
the best throughput on the large-file workloads ("up to 25% improvement"
for SC, ~20% for TP), while TS sits far below either.
"""

from repro.core.sweeps import sweep_restricted_performance
from repro.report.figures import GroupedBarChart

from benchmarks.conftest import APP_CAP_MS, SEQ_CAP_MS, emit

PANELS = (
    ("SC", "2a/2b"),
    ("TP", "2c/2d"),
    ("TS", "2e/2f"),
)


def render_panels(workload, panel_name, points) -> str:
    application = GroupedBarChart(
        f"Figure {panel_name.split('/')[0]}: {workload} application "
        "performance (% of max throughput)",
        value_format="{:.1f}%",
        maximum=100.0,
    )
    sequential = GroupedBarChart(
        f"Figure {panel_name.split('/')[1]}: {workload} sequential "
        "performance (% of max throughput)",
        value_format="{:.1f}%",
        maximum=100.0,
    )
    for point in points:
        perf = point.performance
        application.add(
            point.group_label, point.series_label, perf.application.percent
        )
        sequential.add(
            point.group_label, point.series_label, perf.sequential.percent
        )
    return application.render() + "\n\n" + sequential.render()


def build_figure2(bench_system, seed, runner=None):
    sections = []
    sweeps = {}
    for workload, panel in PANELS:
        points = sweep_restricted_performance(
            workload,
            bench_system,
            seed=seed,
            app_cap_ms=APP_CAP_MS,
            seq_cap_ms=SEQ_CAP_MS,
            runner=runner,
        )
        sweeps[workload] = points
        sections.append(render_panels(workload, panel, points))
    return "\n\n".join(sections), sweeps


def test_fig2_restricted_performance(benchmark, bench_system, bench_seed, bench_runner):
    text, sweeps = benchmark.pedantic(
        build_figure2,
        args=(bench_system, bench_seed, bench_runner),
        rounds=1,
        iterations=1,
    )
    emit("fig2_restricted_perf", text)

    def sequential_by_sizes(points):
        by_sizes = {}
        for point in points:
            by_sizes.setdefault(point.n_sizes, []).append(
                point.performance.sequential.utilization
            )
        return {k: sum(v) / len(v) for k, v in by_sizes.items()}

    # Large-block configurations beat the 2-size ladder on SC and TP.
    for workload in ("SC", "TP"):
        means = sequential_by_sizes(sweeps[workload])
        assert max(means[4], means[5]) > means[2], workload

    # TS throughput is far below the large-file workloads.
    ts_best = max(
        p.performance.sequential.utilization for p in sweeps["TS"]
    )
    sc_best = max(
        p.performance.sequential.utilization for p in sweeps["SC"]
    )
    assert ts_best < sc_best
