"""Figure 1 (a–f) — restricted buddy fragmentation sweep.

Six panels: {SC, TP, TS} × {internal, external} fragmentation, each a
grouped bar chart over {2, 3, 4, 5 block sizes} with four bars per group
(grow 1 / grow 2, clustered / unclustered).

Paper shapes asserted: every configuration stays in single digits except
where the TS tier-boundary effect bites; TS shows the most fragmentation;
and "increasing the grow factor from one to two reduces the internal
fragmentation" for TS.
"""

from repro.core.sweeps import sweep_restricted_fragmentation
from repro.report.figures import GroupedBarChart

from benchmarks.conftest import emit

PANELS = (
    ("SC", "1a/1b"),
    ("TP", "1c/1d"),
    ("TS", "1e/1f"),
)


def run_sweep(workload, bench_system, full_system, seed, runner=None):
    system = full_system if workload in ("SC", "TP") else bench_system
    return sweep_restricted_fragmentation(workload, system, seed=seed, runner=runner)


def render_panels(workload, panel_name, points) -> str:
    internal = GroupedBarChart(
        f"Figure {panel_name.split('/')[0]}: {workload} internal fragmentation "
        "(% of allocated space)",
        value_format="{:.1f}%",
    )
    external = GroupedBarChart(
        f"Figure {panel_name.split('/')[1]}: {workload} external fragmentation "
        "(% of total space)",
        value_format="{:.1f}%",
    )
    for point in points:
        frag = point.allocation.fragmentation
        internal.add(point.group_label, point.series_label, frag.internal_percent)
        external.add(point.group_label, point.series_label, frag.external_percent)
    return internal.render() + "\n\n" + external.render()


def build_figure1(bench_system, full_system, seed, runner=None):
    sections = []
    sweeps = {}
    for workload, panel in PANELS:
        points = run_sweep(workload, bench_system, full_system, seed, runner)
        sweeps[workload] = points
        sections.append(render_panels(workload, panel, points))
    return "\n\n".join(sections), sweeps


def test_fig1_restricted_fragmentation(
    benchmark, bench_system, full_system, bench_seed, bench_runner
):
    text, sweeps = benchmark.pedantic(
        build_figure1,
        args=(bench_system, full_system, bench_seed, bench_runner),
        rounds=1,
        iterations=1,
    )
    emit("fig1_restricted_frag", text)

    # External fragmentation stays small everywhere (paper: < 6%).
    for workload, points in sweeps.items():
        for point in points:
            assert point.allocation.fragmentation.external_percent < 25.0, (
                workload,
                point.series_label,
            )

    # TS: grow factor 2 reduces internal fragmentation vs grow factor 1
    # (compare matched pairs: same ladder, same clustering).
    ts_points = {
        (p.n_sizes, p.clustered, p.grow_factor): p for p in sweeps["TS"]
    }
    improvements = 0
    comparisons = 0
    for (n_sizes, clustered, grow), point in ts_points.items():
        if grow != 1:
            continue
        partner = ts_points[(n_sizes, clustered, 2)]
        comparisons += 1
        if (
            partner.allocation.fragmentation.internal_fraction
            < point.allocation.fragmentation.internal_fraction
        ):
            improvements += 1
    assert improvements >= comparisons - 1  # allow one noisy pair

    # SC and TP fragmentation is "rarely discernible" relative to TS.
    ts_worst = max(
        p.allocation.fragmentation.internal_percent for p in sweeps["TS"]
    )
    tp_best = min(
        p.allocation.fragmentation.internal_percent for p in sweeps["TP"]
    )
    assert tp_best < ts_worst
