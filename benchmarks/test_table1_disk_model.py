"""Table 1 — disk drive parameters and the derived system envelope.

Table 1 is a configuration table, so "regenerating" it means validating
that the modelled drive reproduces every stated parameter and that the
derived whole-system numbers (2.8 G capacity, 10.8 M/sec maximum
throughput) fall out of the model rather than being hard-coded.  The
benchmark also measures the model's achieved sequential rate directly: a
long striped read must sustain >90 % of the rated bandwidth.
"""

from repro.core.configs import SystemConfig
from repro.disk.geometry import WREN_IV
from repro.disk.request import IoKind
from repro.report.tables import Table
from repro.sim.engine import Simulator
from repro.units import KIB, MIB

from benchmarks.conftest import emit


def _measured_sequential_rate(n_units: int = 32 * 1024) -> tuple[float, float]:
    """Time a long sequential striped read; return (MiB/s, fraction of max)."""
    sim = Simulator()
    array = SystemConfig().build_array(sim)
    done = {}

    def reader():
        yield array.transfer(IoKind.READ, 0, n_units)
        done["ms"] = sim.now

    sim.process(reader())
    sim.run()
    rate = n_units * KIB / done["ms"]  # bytes per ms
    return rate * 1000 / MIB, rate / array.max_bandwidth_bytes_per_ms


def build_table1() -> str:
    table = Table(
        ["Parameter", "Paper (simulated)", "Model"],
        title="Table 1: CDC Wren IV drive parameters and system envelope",
    )
    system = SystemConfig()
    capacity_g = system.capacity_bytes / 1e9
    max_mib_s = (
        8 * WREN_IV.sustained_bytes_per_ms * 1000 / MIB
    )
    measured_mib_s, fraction = _measured_sequential_rate()
    rows = [
        ["Number of disks", "8", "8"],
        ["Total capacity", "2.8 G", f"{capacity_g:.2f} G (usable, whole stripes)"],
        ["Maximum throughput", "10.8 M/sec", f"{max_mib_s:.2f} MiB/s (derived)"],
        ["Number of platters", "9", str(WREN_IV.platters)],
        ["Number of cylinders", "1600", str(WREN_IV.cylinders)],
        ["Bytes per track", "24 K", f"{WREN_IV.track_bytes // KIB} K"],
        ["Single track seek", "5.5 ms", f"{WREN_IV.single_track_seek_ms} ms"],
        ["Seek incremental", "0.0320 ms", f"{WREN_IV.incremental_seek_ms} ms"],
        ["Single rotation", "16.67 ms", f"{WREN_IV.rotation_ms} ms"],
        [
            "Measured 32M sequential read",
            "(n/a)",
            f"{measured_mib_s:.2f} MiB/s = {100 * fraction:.1f}% of max",
        ],
    ]
    for row in rows:
        table.add_row(row)
    return table.render()


def test_table1_disk_model(benchmark):
    text = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    emit("table1_disk_model", text)
    measured, fraction = _measured_sequential_rate()
    assert fraction > 0.9  # the model sustains its own rated bandwidth
