"""Figure 3 — how contiguous allocation and grow factors interact.

The paper's Figure 3 explains why a higher grow factor *helps* TS
sequential throughput: with grow factor 1 a file crosses into the 64K tier
at 72K and "the next sequential 64K block is not contiguous to the blocks
already allocated", so the file pays a seek; with grow factor 2 the
boundary moves to 144K, past most TS files.

The regeneration is a measured ablation: grow a lone file by 8K appends on
an empty restricted-buddy file system and time a whole-file sequential
read at each size.  The g=1 curve must pick up an extra discontiguity
(and a latency step) right after 72K; the g=2 curve not until after 144K.
"""

from repro.core.ablation import grow_factor_ablation
from repro.report.tables import Table
from repro.units import KIB

from benchmarks.conftest import emit

SIZES = [n * 8 * KIB for n in range(1, 25)]  # 8K .. 192K


def build_figure3():
    curves = {g: grow_factor_ablation(g, file_sizes_bytes=SIZES) for g in (1, 2)}
    table = Table(
        [
            "File size",
            "g=1 extents",
            "g=1 breaks",
            "g=1 read ms",
            "g=2 extents",
            "g=2 breaks",
            "g=2 read ms",
        ],
        title=(
            "Figure 3 (ablation): grow factor vs contiguity — the g=1 "
            "column gains a discontiguity right after 72K, g=2 after 144K"
        ),
    )
    for one, two in zip(curves[1], curves[2]):
        table.add_row(
            [
                f"{one.file_size_bytes // KIB}K",
                one.extent_count,
                one.discontiguities,
                f"{one.read_ms:.1f}",
                two.extent_count,
                two.discontiguities,
                f"{two.read_ms:.1f}",
            ]
        )
    return table.render(), curves


def test_fig3_grow_factor_ablation(benchmark):
    text, curves = benchmark.pedantic(build_figure3, rounds=1, iterations=1)
    emit("fig3_grow_ablation", text)

    by_size = {
        g: {p.file_size_bytes // KIB: p for p in points}
        for g, points in curves.items()
    }
    # The Figure 3 boundary effect: g=1 breaks at >72K, g=2 at >144K.
    assert by_size[1][80].discontiguities > by_size[1][72].discontiguities
    assert by_size[2][80].discontiguities == by_size[2][72].discontiguities
    assert by_size[2][152].discontiguities > by_size[2][144].discontiguities
    # Between 88K and 144K the g=1 file carries the misaligned 64K block
    # while g=2 is still in small contiguous blocks, so on average g=2
    # reads faster there.  (Individual sizes can flip on rotational phase
    # luck; the mean is the structural signal.)
    window = [size_k for size_k in range(88, 145, 8)]
    mean_g1 = sum(by_size[1][k].read_ms for k in window) / len(window)
    mean_g2 = sum(by_size[2][k].read_ms for k in window) / len(window)
    assert mean_g2 <= mean_g1 + 1e-6
