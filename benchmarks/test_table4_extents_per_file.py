"""Table 4 — average number of extents per file.

At the moment each extent-policy allocation test ends, record the mean
data-extent count across live files for 1..5 extent ranges and each
workload.  Paper values for reference (first-fit):

    ranges   SC    TP    TS
    1        162   267   5
    2        124   13    9
    3        97    12    9
    4        151   14    7
    5        162   108   6

Absolute values depend on the paper's unreported per-type extent-range
assignments (we document ours in DESIGN.md); the asserted shapes are the
robust ones: SC/TP collapse by an order of magnitude once a large range
(16M) exists, while TS stays in single digits throughout.
"""

from repro.core.sweeps import sweep_extent_fragmentation
from repro.report.tables import Table

from benchmarks.conftest import emit


def build_table4(bench_system, full_system, seed, runner=None):
    results = {}
    for workload in ("SC", "TP", "TS"):
        system = full_system if workload in ("SC", "TP") else bench_system
        points = sweep_extent_fragmentation(
            workload, system, seed=seed, fits=("first",), runner=runner
        )
        results[workload] = {
            p.n_ranges: p.allocation.average_extents_per_file for p in points
        }
    table = Table(
        ["Number of Extent Ranges", "SC", "TP", "TS"],
        title=(
            "Table 4: Average number of extents per file "
            "(paper: SC 162/124/97/151/162, TP 267/13/12/14/108, TS 5/9/9/7/6)"
        ),
    )
    for n_ranges in range(1, 6):
        table.add_row(
            [
                n_ranges,
                f"{results['SC'][n_ranges]:.1f}",
                f"{results['TP'][n_ranges]:.1f}",
                f"{results['TS'][n_ranges]:.1f}",
            ]
        )
    return table.render(), results


def test_table4_extents_per_file(
    benchmark, bench_system, full_system, bench_seed, bench_runner
):
    text, results = benchmark.pedantic(
        build_table4,
        args=(bench_system, full_system, bench_seed, bench_runner),
        rounds=1,
        iterations=1,
    )
    emit("table4_extents_per_file", text)

    # Single-range configs force hundreds of extents onto the big files.
    assert results["SC"][1] > 50
    assert results["TP"][1] > 50
    # A 16M range collapses the SC extent counts (paper: 162 -> 124/97).
    assert results["SC"][3] < results["SC"][1]
    # TS files stay within a handful of extents in every configuration.
    for n_ranges in range(1, 6):
        assert results["TS"][n_ranges] < 30
