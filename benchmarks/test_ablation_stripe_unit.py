"""Extension ablation — stripe-unit sensitivity (§6 future work).

The paper's conclusion flags: "The different policies may show different
sensitivities to the stripe size parameter."  This benchmark runs that
experiment: the SC sequential test under the restricted-buddy and
fixed-block policies with stripe units of 8K, 24K (one track, the paper's
default), and 96K.

Expected shape: the multiblock policy is fairly insensitive (its transfers
are large enough to span all drives at any of these stripe units), while
the fixed-block system interacts with the stripe unit through how many of
its scattered blocks land per disk.
"""

from repro.core.configs import (
    SELECTED_RESTRICTED,
    ExperimentConfig,
    FixedPolicy,
    SystemConfig,
)
from repro.core.experiments import run_performance_experiment
from repro.report.tables import Table

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, emit

STRIPE_UNITS = ("8K", "24K", "96K")


def build_stripe_ablation():
    rows = {}
    for stripe_unit in STRIPE_UNITS:
        system = SystemConfig(scale=BENCH_SCALE, stripe_unit=stripe_unit)
        for policy in (SELECTED_RESTRICTED, FixedPolicy("16K")):
            config = ExperimentConfig(
                policy=policy, workload="SC", system=system, seed=BENCH_SEED
            )
            result = run_performance_experiment(
                config,
                app_cap_ms=30_000,
                seq_cap_ms=60_000,
                run_application=False,
            )
            rows[(stripe_unit, policy.label)] = result.sequential.percent
    table = Table(
        ["Stripe unit", "restricted (seq % max)", "fixed 16K (seq % max)"],
        title="Ablation (paper §6 future work): SC sequential throughput "
        "vs stripe unit",
    )
    for stripe_unit in STRIPE_UNITS:
        table.add_row(
            [
                stripe_unit,
                f"{rows[(stripe_unit, SELECTED_RESTRICTED.label)]:.1f}%",
                f"{rows[(stripe_unit, 'fixed[16K]')]:.1f}%",
            ]
        )
    return table.render(), rows


def test_ablation_stripe_unit(benchmark):
    text, rows = benchmark.pedantic(build_stripe_ablation, rounds=1, iterations=1)
    emit("ablation_stripe_unit", text)

    restricted = [
        rows[(su, SELECTED_RESTRICTED.label)] for su in STRIPE_UNITS
    ]
    fixed = [rows[(su, "fixed[16K]")] for su in STRIPE_UNITS]
    # The multiblock policy always beats fixed, at every stripe unit.
    for r_value, f_value in zip(restricted, fixed):
        assert r_value > f_value
    # And its sensitivity (relative spread) is modest.
    assert (max(restricted) - min(restricted)) / max(restricted) < 0.5
