"""Table 3 — results for buddy allocation.

Regenerates the paper's Table 3: for each workload (SC, TP, TS), the buddy
policy's internal/external fragmentation from the allocation test plus
application and sequential throughput (as % of maximum) from the
performance tests.

Paper values for reference:

    workload   internal   external   application   sequential
    SC         43.1%      13.4%      88.0%         94.4%
    TP         15.2%       9.0%      27.7%         93.9%
    TS         18.4%       2.3%       8.4%         12.0%

The qualitative shape asserted here: buddy's internal fragmentation is
severe (double digits on every workload), while its sequential throughput
on the large-file workloads (SC/TP) is high — the paper's "small number of
extents results in very high throughput" observation.
"""

from repro.core.configs import SELECTED_BUDDY, ExperimentConfig
from repro.core.runner import ExperimentTask, execute_all
from repro.report.tables import Table

from benchmarks.conftest import APP_CAP_MS, SEQ_CAP_MS, TOLERANCE, emit

WORKLOADS = ("SC", "TP", "TS")


def run_table3(bench_system, full_system, seed, runner=None):
    """Fragmentation at full scale (TS at bench scale); throughput at bench scale."""
    tasks = []
    for workload in WORKLOADS:
        system = full_system if workload in ("SC", "TP") else bench_system
        config = ExperimentConfig(
            policy=SELECTED_BUDDY, workload=workload, system=system, seed=seed
        )
        tasks.append(ExperimentTask.allocation(config))
    for workload in WORKLOADS:
        config = ExperimentConfig(
            policy=SELECTED_BUDDY, workload=workload, system=bench_system, seed=seed
        )
        tasks.append(
            ExperimentTask.performance(
                config,
                app_cap_ms=APP_CAP_MS,
                seq_cap_ms=SEQ_CAP_MS,
                tolerance=TOLERANCE,
            )
        )
    results = execute_all(tasks, runner)
    frag = {
        workload: results[i].fragmentation for i, workload in enumerate(WORKLOADS)
    }
    perf = {
        workload: results[len(WORKLOADS) + i]
        for i, workload in enumerate(WORKLOADS)
    }
    return frag, perf


def build_table3(bench_system, full_system, seed, runner=None) -> tuple[str, dict]:
    frag, perf = run_table3(bench_system, full_system, seed, runner)
    table = Table(
        [
            "Workload",
            "Internal Frag (% alloc)",
            "External Frag (% total)",
            "Application (% max)",
            "Sequential (% max)",
        ],
        title="Table 3: Results for Buddy Allocation "
        "(paper: SC 43.1/13.4/88.0/94.4, TP 15.2/9.0/27.7/93.9, "
        "TS 18.4/2.3/8.4/12.0)",
    )
    for workload in ("SC", "TP", "TS"):
        table.add_row(
            [
                workload,
                f"{frag[workload].internal_percent:.1f}%",
                f"{frag[workload].external_percent:.1f}%",
                f"{perf[workload].application.percent:.1f}%",
                f"{perf[workload].sequential.percent:.1f}%",
            ]
        )
    return table.render(), {"frag": frag, "perf": perf}


def test_table3_buddy(benchmark, bench_system, full_system, bench_seed, bench_runner):
    text, data = benchmark.pedantic(
        build_table3,
        args=(bench_system, full_system, bench_seed, bench_runner),
        rounds=1,
        iterations=1,
    )
    emit("table3_buddy", text)
    frag, perf = data["frag"], data["perf"]
    # Shape assertions (see module docstring).
    for workload in ("SC", "TP", "TS"):
        assert frag[workload].internal_percent > 8.0, workload
    assert perf["SC"].sequential.percent > 60.0
    assert perf["TP"].sequential.percent > 60.0
    assert perf["TS"].sequential.percent < 40.0
