#!/usr/bin/env python3
"""Run auditor-enabled smoke points and fail on any invariant violation.

Two configurations, both with the :class:`repro.audit.InvariantAuditor`
sweeping every ``--cadence`` executed events *and* at freeze:

1. A figure-2 smoke point — the restricted buddy policy on the time
   sharing workload over a striped array, the paper's headline
   comparison, at a CI-sized scale.
2. A faulted RAID-5 point — a drive failure with a later repair, so the
   parity-plan, degraded-service, and rebuild paths all run under audit.

A violation raises :class:`repro.errors.InvariantViolation` inside the
run, which this tool reports with the structured excerpt and a non-zero
exit.  It also re-runs the first point a second time and asserts the
fingerprint timeline is byte-identical — the determinism half of the
state-integrity contract.

Usage::

    PYTHONPATH=src python tools/check_invariants.py
"""

from __future__ import annotations

import argparse
import sys


def run_point(label: str, config, audit, **kwargs):
    from repro.core.experiments import run_performance_experiment

    result = run_performance_experiment(config, audit=audit, **kwargs)
    prints = result.fingerprints or ()
    print(
        f"{label}: OK — {len(prints)} fingerprint(s), "
        f"last digest {prints[-1].digest[:16] if prints else 'n/a'}..."
    )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--cap-ms", type=float, default=2_000.0)
    parser.add_argument(
        "--cadence",
        type=int,
        default=2_000,
        help="events between auditor sweeps (default: 2000)",
    )
    args = parser.parse_args(argv)

    from repro import (
        AuditConfig,
        ExperimentConfig,
        RestrictedPolicy,
        SystemConfig,
        parse_fault_spec,
    )
    from repro.errors import InvariantViolation

    audit = AuditConfig(
        invariants=True, fingerprints=True, cadence_events=args.cadence
    )
    caps = dict(app_cap_ms=args.cap_ms, seq_cap_ms=args.cap_ms)

    figure2 = ExperimentConfig(
        policy=RestrictedPolicy(),
        workload="TS",
        system=SystemConfig(scale=args.scale),
    )
    raid5 = ExperimentConfig(
        policy=RestrictedPolicy(),
        workload="TS",
        system=SystemConfig(scale=args.scale, organization="raid5"),
        faults=parse_fault_spec("fail:drive=0,at=500,repair=1200"),
    )

    try:
        first = run_point("figure-2 point (TS/restricted/striped)", figure2,
                          audit, **caps)
        run_point("faulted RAID-5 point (fail@500ms, repair@1200ms)", raid5,
                  audit, **caps)
        second = run_point("figure-2 point (repeat run)", figure2,
                           audit, **caps)
    except InvariantViolation as exc:
        print(f"check_invariants: FAIL — {exc}", file=sys.stderr)
        return 1

    if first.fingerprints != second.fingerprints:
        print(
            "check_invariants: FAIL — fingerprint timelines differ "
            "between two runs of the same config",
            file=sys.stderr,
        )
        return 1
    print(
        f"check_invariants: OK — zero violations, "
        f"{len(first.fingerprints or ())} fingerprints reproduced exactly"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
