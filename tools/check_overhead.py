#!/usr/bin/env python3
"""Assert the disabled-observability engine overhead stays within budget.

The tracer and metrics registry hang off the simulator as plain
attributes that default to ``None``; every instrumentation site is
guarded by an ``is not None`` check *outside* the engine's fused run
loop.  This tool proves the claim: it re-times ``engine_loop`` (tracing
disabled — the default) and compares events/sec against the committed
``BENCH_core.json`` record, requiring the fresh rate to stay within
``--tolerance`` (default 2 %) of the committed one.

Timing noise on shared CI hardware can exceed 2 %, so the check takes
``--attempts`` independent runs and passes if *any* attempt lands within
tolerance — a genuine hot-path regression fails every attempt; scheduler
jitter does not.

Usage::

    PYTHONPATH=src python tools/check_overhead.py --baseline BENCH_core.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Default fractional slowdown allowed vs the committed record.
DEFAULT_TOLERANCE = 0.02


def check_overhead(
    bench_name: str,
    committed_value: float,
    tolerance: float = DEFAULT_TOLERANCE,
    attempts: int = 3,
    scale: float = 1.0,
    repeats: int = 3,
) -> tuple[bool, list[float]]:
    """Re-run ``bench_name``; return (passed, per-attempt ratios)."""
    from benchmarks.micro.core import BENCHMARKS

    bench = BENCHMARKS[bench_name]
    floor = 1.0 - tolerance
    ratios: list[float] = []
    for attempt in range(max(1, attempts)):
        result = bench(scale=scale, repeats=repeats)
        ratio = result["value"] / committed_value
        ratios.append(ratio)
        print(
            f"attempt {attempt + 1}: {result['value']:,.0f} {result['metric']} "
            f"= {ratio:.3f}x of committed ({committed_value:,.0f})"
        )
        if ratio >= floor:
            return True, ratios
    return False, ratios


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("BENCH_core.json"),
        help="committed benchmark record to compare against",
    )
    parser.add_argument(
        "--bench",
        default="engine_loop",
        help="benchmark name from benchmarks.micro (default: engine_loop)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional slowdown (default: 0.02)",
    )
    parser.add_argument(
        "--attempts",
        type=int,
        default=3,
        help="independent timing attempts; any one within tolerance passes",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    # The audit hook follows the same contract as the tracer/metrics
    # hooks: a plain attribute defaulting to None, checked outside the
    # fused loop.  Assert the default before timing anything — a stray
    # always-on auditor would make the rate comparison measure the wrong
    # thing.
    from repro import Simulator

    if Simulator().auditor is not None:
        print(
            "check_overhead: FAIL — fresh Simulator() has a non-None "
            "auditor; the audited path must be opt-in",
            file=sys.stderr,
        )
        return 1
    print("auditor default: None (disabled path) — OK")

    try:
        record = json.loads(args.baseline.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_overhead: cannot load {args.baseline}: {exc}", file=sys.stderr)
        return 2
    committed = record.get("benchmarks", record).get(args.bench, {}).get("value")
    if not committed:
        print(
            f"check_overhead: no committed value for {args.bench!r} "
            f"in {args.baseline}",
            file=sys.stderr,
        )
        return 2

    passed, ratios = check_overhead(
        args.bench,
        committed,
        tolerance=args.tolerance,
        attempts=args.attempts,
        scale=args.scale,
        repeats=args.repeats,
    )
    if passed:
        print(
            f"check_overhead: OK — {args.bench} within "
            f"{args.tolerance:.0%} of committed rate"
        )
        return 0
    print(
        f"check_overhead: FAIL — best attempt {max(ratios):.3f}x, "
        f"needed >= {1.0 - args.tolerance:.3f}x over {len(ratios)} attempt(s)",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
