#!/usr/bin/env python3
"""Validate a Chrome ``trace_event`` JSON document produced by ``repro trace``.

Structural invariants checked (CI runs this against a freshly generated
trace; the test suite imports :func:`validate_trace` directly):

* the document is an object with a ``traceEvents`` list;
* every event carries the required fields for its phase type;
* no negative timestamps or durations;
* every complete ("X") event that names a parent span nests strictly
  inside that parent's interval, and the parent exists on the same trace;
* every lane (tid) that carries events has a ``thread_name`` metadata
  record.

Usage::

    python tools/check_trace.py trace.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Allowed slack (microseconds) when comparing child to parent intervals.
#: Spans are emitted from the same simulated clock and rounded identically,
#: so exact containment is expected; the epsilon only forgives float
#: rounding at the final digit.
EPSILON_US = 1e-6


class TraceError(Exception):
    """A structural invariant violation in the trace document."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise TraceError(message)


def validate_trace(document: dict) -> dict:
    """Check structural invariants; return summary stats.

    Raises :class:`TraceError` on the first violation.  Returns a dict
    with ``spans``, ``instants``, ``metadata``, and ``lanes`` counts so
    callers can assert the trace is non-trivial.
    """
    _require(isinstance(document, dict), "top level must be a JSON object")
    events = document.get("traceEvents")
    _require(isinstance(events, list), "missing traceEvents list")

    named_lanes: set[int] = set()
    used_lanes: set[int] = set()
    # span id -> (start_us, end_us), from the exporter's "args.id" field.
    intervals: dict[int, tuple[float, float]] = {}
    parents: list[tuple[int, int]] = []  # (child id, parent id)
    counts = {"spans": 0, "instants": 0, "metadata": 0}

    for position, event in enumerate(events):
        _require(isinstance(event, dict), f"event {position} is not an object")
        phase = event.get("ph")
        where = f"event {position} ({event.get('name', '?')!r})"
        if phase == "M":
            counts["metadata"] += 1
            if event.get("name") == "thread_name":
                named_lanes.add(int(event["tid"]))
            continue
        _require(phase in ("X", "i"), f"{where}: unsupported phase {phase!r}")
        timestamp = event.get("ts")
        _require(
            isinstance(timestamp, (int, float)) and not isinstance(timestamp, bool),
            f"{where}: missing numeric ts",
        )
        _require(timestamp >= 0, f"{where}: negative timestamp {timestamp}")
        used_lanes.add(int(event.get("tid", -1)))
        if phase == "i":
            counts["instants"] += 1
            continue

        counts["spans"] += 1
        duration = event.get("dur")
        _require(
            isinstance(duration, (int, float)) and not isinstance(duration, bool),
            f"{where}: complete event missing numeric dur",
        )
        _require(duration >= 0, f"{where}: negative duration {duration}")
        args = event.get("args", {})
        span_id = args.get("id")
        _require(
            isinstance(span_id, int), f"{where}: complete event missing args.id"
        )
        _require(span_id not in intervals, f"{where}: duplicate span id {span_id}")
        intervals[span_id] = (timestamp, timestamp + duration)
        parent_id = args.get("parent", 0)
        if parent_id:
            parents.append((span_id, parent_id))

    for child_id, parent_id in parents:
        _require(
            parent_id in intervals,
            f"span {child_id}: parent {parent_id} not present in trace",
        )
        child_start, child_end = intervals[child_id]
        parent_start, parent_end = intervals[parent_id]
        _require(
            child_start >= parent_start - EPSILON_US
            and child_end <= parent_end + EPSILON_US,
            f"span {child_id} [{child_start}, {child_end}] escapes parent "
            f"{parent_id} [{parent_start}, {parent_end}]",
        )

    unnamed = used_lanes - named_lanes
    _require(not unnamed, f"lanes without thread_name metadata: {sorted(unnamed)}")
    counts["lanes"] = len(used_lanes)
    return counts


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="Chrome trace JSON file")
    parser.add_argument(
        "--min-spans",
        type=int,
        default=1,
        help="fail if the trace has fewer complete spans than this",
    )
    args = parser.parse_args(argv)

    try:
        document = json.loads(args.trace.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_trace: cannot load {args.trace}: {exc}", file=sys.stderr)
        return 2
    try:
        counts = validate_trace(document)
        if counts["spans"] < args.min_spans:
            raise TraceError(
                f"only {counts['spans']} span(s), expected >= {args.min_spans}"
            )
    except TraceError as exc:
        print(f"check_trace: INVALID: {exc}", file=sys.stderr)
        return 1
    print(
        "check_trace: OK — {spans} spans, {instants} instants, "
        "{lanes} lanes, {metadata} metadata records".format(**counts)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
