#!/usr/bin/env python
"""CI crash/resume check: kill a sweep mid-flight, resume it, compare.

This is the end-to-end guarantee behind ``--checkpoint``/``--resume``:
a checkpointed sweep that dies abruptly (here: SIGKILL, the harshest
case — no atexit handlers, no signal handlers, no flush) must resume
from its manifest and finish with results bit-identical to a sweep that
was never interrupted.

The script runs itself as a child (``--child <dir>``) executing a small
checkpointed performance sweep, polls the manifest until at least one
point has been recorded (but not all), SIGKILLs the child, then resumes
the sweep in-process and compares against an uninterrupted reference.

Exit status 0 on success; 1 with a diagnostic on any violation.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

# Runnable from a checkout without an installed package.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

SEEDS = (7, 8, 9, 10)
POLL_S = 0.05
KILL_DEADLINE_S = 300.0


def build_tasks():
    from repro.core.configs import ExperimentConfig, FixedPolicy, SystemConfig
    from repro.core.runner import ExperimentTask

    return [
        ExperimentTask.performance(
            ExperimentConfig(
                policy=FixedPolicy(),
                workload="TS",
                system=SystemConfig(scale=0.02),
                seed=seed,
            ),
            app_cap_ms=20_000.0,
            seq_cap_ms=10_000.0,
        )
        for seed in SEEDS
    ]


def run_child(checkpoint_dir: str) -> int:
    from repro.core.runner import ExperimentRunner

    runner = ExperimentRunner(jobs=1, checkpoint_dir=checkpoint_dir)
    runner.results(build_tasks())
    return 0


def completed_points(manifest: Path) -> int:
    try:
        with open(manifest, encoding="utf-8") as handle:
            return int(json.load(handle).get("completed", 0))
    except Exception:
        return 0


def main() -> int:
    if len(sys.argv) > 2 and sys.argv[1] == "--child":
        return run_child(sys.argv[2])

    checkpoint_dir = tempfile.mkdtemp(prefix="repro-resume-check-")
    manifest = Path(checkpoint_dir) / "manifest.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(Path(__file__).resolve().parent.parent / "src"),
                      env.get("PYTHONPATH", "")])
    )
    child = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--child", checkpoint_dir],
        env=env,
    )

    killed = False
    deadline = time.monotonic() + KILL_DEADLINE_S
    while time.monotonic() < deadline:
        if child.poll() is not None:
            break
        done = completed_points(manifest)
        if 1 <= done < len(SEEDS):
            child.send_signal(signal.SIGKILL)
            child.wait()
            killed = True
            break
        time.sleep(POLL_S)
    else:
        child.kill()
        child.wait()
        print("FAIL: sweep made no checkpoint progress before the deadline")
        return 1

    survivors = completed_points(manifest)
    if killed:
        print(
            f"killed child pid {child.pid} (SIGKILL) after "
            f"{survivors}/{len(SEEDS)} points were checkpointed"
        )
    else:
        print(
            "note: child finished before the kill window; resume will "
            "replay every point"
        )

    from repro.core.runner import ExperimentRunner

    resumed = ExperimentRunner(
        jobs=1, checkpoint_dir=checkpoint_dir, resume=True
    )
    resumed_results = resumed.results(build_tasks())
    reference = ExperimentRunner(jobs=1).results(build_tasks())

    if resumed_results != reference:
        print("FAIL: resumed sweep results differ from an uninterrupted run")
        return 1
    if resumed.stats.cached < survivors:
        print(
            f"FAIL: only {resumed.stats.cached} points replayed from the "
            f"checkpoint; {survivors} were recorded before the kill"
        )
        return 1
    print(
        f"OK: resumed sweep is bit-identical ({resumed.stats.cached} "
        f"replayed, {resumed.stats.executed} re-run)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
