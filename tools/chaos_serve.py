"""Chaos harness for the experiment service: scripted fault drills
against a *real* ``repro serve`` daemon (subprocess, real HTTP, real
worker processes, real simulations).

Each drill asserts the service's headline guarantees survive a specific
injected failure:

* ``restart``      — SIGKILL the daemon mid-sweep, restart it on the
                     same state dir; every job finishes and every result
                     digest is bit-identical to an undisturbed run.
                     (This is the CI smoke drill.)
* ``worker-kill``  — SIGKILL a busy worker via the chaos endpoint; the
                     job retries to completion with an identical digest.
* ``corrupt-cache``— flip bytes in a stored result; the cache detects
                     the bad checksum, evicts, re-executes, and the new
                     digest matches.
* ``torn-ledger``  — truncate the run ledger mid-record (simulated torn
                     write); the daemon repairs the tail and recovers
                     every intact job.
* ``dedup``        — a burst of identical concurrent requests costs
                     exactly one simulation.
* ``overload``     — a flood of distinct requests sheds with bounded
                     429 + Retry-After; everything admitted still
                     finishes.
* ``slow-client``  — an SSE subscriber that hangs up mid-stream leaves
                     the daemon healthy.

Usage::

    python tools/chaos_serve.py                 # every drill
    python tools/chaos_serve.py --drill restart # just the CI smoke

Exit status 0 when every selected drill passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


class ChaosFailure(AssertionError):
    """A drill's guarantee did not hold."""


# -- daemon management -------------------------------------------------------


class Daemon:
    """One ``repro serve`` subprocess with parsed listen address."""

    def __init__(self, state_dir: Path, *extra: str) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            f"{REPO / 'src'}:{env['PYTHONPATH']}"
            if env.get("PYTHONPATH")
            else str(REPO / "src")
        )
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--state-dir", str(state_dir), "--port", "0", *extra,
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.stderr_lines: list[str] = []
        self._drain = threading.Thread(target=self._pump, daemon=True)
        self._drain.start()
        self.base = self._await_listening()

    def _pump(self) -> None:
        for line in self.process.stderr:
            self.stderr_lines.append(line.rstrip("\n"))

    def _await_listening(self, timeout_s: float = 30.0) -> str:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            for line in self.stderr_lines:
                if "listening on " in line:
                    url = line.split("listening on ", 1)[1].split()[0]
                    return url.rstrip("/")
            if self.process.poll() is not None:
                raise ChaosFailure(
                    "daemon exited during startup:\n"
                    + "\n".join(self.stderr_lines)
                )
            time.sleep(0.05)
        raise ChaosFailure("daemon never reported its listen address")

    def sigkill(self) -> None:
        self.process.send_signal(signal.SIGKILL)
        self.process.wait()

    def stop(self) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()


# -- HTTP helpers ------------------------------------------------------------


def request(
    base: str, path: str, body: dict | None = None, timeout: float = 120.0
) -> tuple[int, dict, dict]:
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        f"{base}{path}",
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return (
                response.status,
                dict(response.headers),
                json.loads(response.read()),
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def await_job(base: str, key: str, timeout_s: float = 180.0) -> dict:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, _, view = request(base, f"/v1/jobs/{key}")
        if status == 200 and view["status"] in ("done", "failed"):
            return view
        time.sleep(0.1)
    raise ChaosFailure(f"job {key} did not finish within {timeout_s:.0f}s")


def spec_for(seed: int, cap_ms: float) -> dict:
    return {
        "kind": "performance",
        "workload": "TS",
        "seed": seed,
        "policy": {"name": "fixed", "block_size": "4K"},
        "system": {"scale": 0.02},
        "kwargs": {"app_cap_ms": cap_ms, "seq_cap_ms": cap_ms},
    }


def submit(base: str, spec: dict, **body) -> dict:
    status, _, view = request(
        base, "/v1/experiments", {"spec": spec, **body}
    )
    if status not in (200, 202):
        raise ChaosFailure(f"submit failed ({status}): {view}")
    return view


def digests_of(base: str, keys: list[str]) -> dict[str, str]:
    out = {}
    for key in keys:
        view = await_job(base, key)
        if view["status"] != "done":
            raise ChaosFailure(f"job {key} failed: {view.get('error')}")
        out[key] = view["summary"]["result_digest"]
    return out


def clean_run_digests(
    scratch: Path, specs: list[dict], label: str
) -> dict[str, str]:
    """Digests from an undisturbed daemon: the bit-identity reference."""
    daemon = Daemon(scratch / f"{label}-clean")
    try:
        keys = [submit(daemon.base, spec)["job"] for spec in specs]
        return digests_of(daemon.base, keys)
    finally:
        daemon.stop()


# -- drills ------------------------------------------------------------------


def drill_restart(scratch: Path) -> None:
    """SIGKILL mid-sweep; restart; finish bit-identically."""
    specs = [spec_for(seed, cap_ms=20_000.0) for seed in range(1, 7)]
    reference = clean_run_digests(scratch, specs, "restart")

    state = scratch / "restart-state"
    daemon = Daemon(state)
    keys = [submit(daemon.base, spec)["job"] for spec in specs]
    # Wait until the sweep is genuinely mid-flight (something finished,
    # something running), then kill -9 the daemon.
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        _, _, stats = request(daemon.base, "/v1/stats")
        if stats["executed"] >= 1 and stats["depth"] >= 1:
            break
        time.sleep(0.05)
    else:
        daemon.stop()
        raise ChaosFailure("sweep never reached a mid-flight state")
    daemon.sigkill()

    revived = Daemon(state)
    try:
        _, _, stats = request(revived.base, "/v1/stats")
        if stats["recovered"] < 1:
            raise ChaosFailure(
                f"restart recovered {stats['recovered']} jobs; expected >= 1"
            )
        after = digests_of(revived.base, keys)
    finally:
        revived.stop()
    if after != reference:  # same specs, same cache keys, same digests
        raise ChaosFailure(
            "digests after SIGKILL+restart differ from the clean run"
        )


def drill_worker_kill(scratch: Path) -> None:
    """SIGKILL a busy worker; the job retries and matches the clean digest."""
    spec = spec_for(77, cap_ms=30_000.0)
    reference = clean_run_digests(scratch, [spec], "worker-kill")

    daemon = Daemon(scratch / "worker-kill-state", "--chaos", "--retries", "2")
    try:
        key = submit(daemon.base, spec)["job"]
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            _, _, stats = request(daemon.base, "/v1/stats")
            if stats["jobs"].get("running"):
                break
            time.sleep(0.05)
        status, _, _ = request(daemon.base, "/v1/chaos/kill-worker", {})
        if status != 200:
            raise ChaosFailure(f"chaos endpoint returned {status}")
        view = await_job(daemon.base, key)
        _, _, stats = request(daemon.base, "/v1/stats")
        if stats["supervision"]["crashes"] < 1:
            raise ChaosFailure("the worker kill was never observed as a crash")
        if view["summary"]["result_digest"] != next(iter(reference.values())):
            raise ChaosFailure("digest after worker kill differs from clean run")
    finally:
        daemon.stop()


def drill_corrupt_cache(scratch: Path) -> None:
    """Corrupt a stored result; the service detects, evicts, re-runs."""
    spec = spec_for(5, cap_ms=2_000.0)
    state = scratch / "corrupt-state"
    daemon = Daemon(state)
    key = submit(daemon.base, spec, wait_s=120)["job"]
    good = await_job(daemon.base, key)["summary"]["result_digest"]
    daemon.stop()

    [entry] = list((state / "results").glob(f"{key}*"))
    blob = bytearray(entry.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    entry.write_bytes(bytes(blob))

    revived = Daemon(state)
    try:
        view = submit(revived.base, spec, wait_s=120)
        if view["status"] != "done":
            raise ChaosFailure(f"resubmit after corruption: {view}")
        if view["summary"]["result_digest"] != good:
            raise ChaosFailure("re-executed digest differs after corruption")
        _, _, stats = request(revived.base, "/v1/stats")
        if stats["cache"]["evictions"] < 1:
            raise ChaosFailure("corrupt entry was not evicted")
        if stats["executed"] < 1:
            raise ChaosFailure("corrupt entry was served instead of re-run")
    finally:
        revived.stop()


def drill_torn_ledger(scratch: Path) -> None:
    """Truncate the ledger mid-record; the daemon repairs and recovers."""
    state = scratch / "torn-state"
    daemon = Daemon(state)
    spec = spec_for(11, cap_ms=2_000.0)
    key = submit(daemon.base, spec, wait_s=120)["job"]
    daemon.sigkill()  # no graceful close: the journal must stand alone

    ledger = state / "ledger.jsonl"
    with open(ledger, "a", encoding="utf-8") as handle:
        handle.write('{"op": "accept", "key": "torn-victim", "sp')

    revived = Daemon(state)
    try:
        view = await_job(revived.base, key)
        if view["status"] != "done":
            raise ChaosFailure(f"intact job lost after torn ledger: {view}")
        status, _, _ = request(revived.base, "/v1/jobs/torn-victim")
        if status != 404:
            raise ChaosFailure("the torn record should not have survived")
    finally:
        revived.stop()


def drill_dedup(scratch: Path) -> None:
    """A burst of identical requests costs exactly one simulation."""
    daemon = Daemon(scratch / "dedup-state")
    try:
        spec = spec_for(42, cap_ms=20_000.0)
        results: list[dict] = []
        lock = threading.Lock()

        def fire() -> None:
            view = submit(daemon.base, spec)
            with lock:
                results.append(view)

        threads = [threading.Thread(target=fire) for _ in range(32)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        keys = {view["job"] for view in results}
        if len(keys) != 1:
            raise ChaosFailure(f"expected one job key, got {len(keys)}")
        await_job(daemon.base, keys.pop())
        _, _, stats = request(daemon.base, "/v1/stats")
        if stats["executed"] != 1:
            raise ChaosFailure(
                f"{stats['executed']} simulations for 32 identical requests"
            )
        # Stragglers arriving after completion are cache hits rather
        # than dedups; either way they must not have simulated.
        served = stats["deduped"] + stats["cache_hits"]
        if served != 31:
            raise ChaosFailure(
                f"deduped+cache_hits={served}, expected 31 "
                f"(deduped={stats['deduped']}, hits={stats['cache_hits']})"
            )
    finally:
        daemon.stop()


def drill_overload(scratch: Path) -> None:
    """Flooding sheds bounded 429s; everything admitted still finishes."""
    daemon = Daemon(
        scratch / "overload-state",
        "--workers", "1", "--max-queue", "3",
    )
    try:
        accepted_keys: list[str] = []
        shed = 0
        for seed in range(100, 112):
            status, headers, view = request(
                daemon.base,
                "/v1/experiments",
                {"spec": spec_for(seed, cap_ms=20_000.0)},
            )
            if status == 429:
                shed += 1
                if "Retry-After" not in headers:
                    raise ChaosFailure("429 without a Retry-After header")
                if not (1.0 <= view["retry_after_s"] <= 120.0):
                    raise ChaosFailure(
                        f"unbounded retry hint: {view['retry_after_s']}"
                    )
            elif status == 202:
                accepted_keys.append(view["job"])
            else:
                raise ChaosFailure(f"unexpected status {status}: {view}")
        if shed == 0:
            raise ChaosFailure("the flood was never shed")
        if not accepted_keys:
            raise ChaosFailure("nothing was admitted at all")
        digests_of(daemon.base, accepted_keys)  # raises unless all finish
    finally:
        daemon.stop()


def drill_slow_client(scratch: Path) -> None:
    """An SSE subscriber hanging up mid-stream leaves the daemon healthy."""
    daemon = Daemon(scratch / "slow-client-state")
    try:
        spec = spec_for(55, cap_ms=20_000.0)
        key = submit(daemon.base, spec)["job"]
        stream = urllib.request.urlopen(
            f"{daemon.base}/v1/jobs/{key}/events", timeout=10
        )
        stream.close()  # hang up immediately, mid-job
        view = await_job(daemon.base, key)
        if view["status"] != "done":
            raise ChaosFailure(f"job lost after client disconnect: {view}")
        status, _, body = request(daemon.base, "/healthz")
        if status != 200 or not body.get("ok"):
            raise ChaosFailure("daemon unhealthy after client disconnect")
    finally:
        daemon.stop()


DRILLS = {
    "restart": drill_restart,
    "worker-kill": drill_worker_kill,
    "corrupt-cache": drill_corrupt_cache,
    "torn-ledger": drill_torn_ledger,
    "dedup": drill_dedup,
    "overload": drill_overload,
    "slow-client": drill_slow_client,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--drill",
        choices=(*DRILLS, "all"),
        default="all",
        help="which drill to run (default: every drill)",
    )
    parser.add_argument(
        "--scratch",
        default=None,
        metavar="DIR",
        help="state-directory root (default: a fresh temp dir)",
    )
    args = parser.parse_args(argv)

    import tempfile

    scratch = Path(args.scratch or tempfile.mkdtemp(prefix="chaos-serve-"))
    scratch.mkdir(parents=True, exist_ok=True)
    selected = list(DRILLS) if args.drill == "all" else [args.drill]

    failures = 0
    for name in selected:
        started = time.monotonic()
        print(f"chaos[{name}]: running ...", flush=True)
        try:
            DRILLS[name](scratch)
        except ChaosFailure as failure:
            failures += 1
            print(f"chaos[{name}]: FAIL — {failure}", flush=True)
        else:
            print(
                f"chaos[{name}]: PASS ({time.monotonic() - started:.1f}s)",
                flush=True,
            )
    print(
        f"chaos: {len(selected) - failures}/{len(selected)} drills passed",
        flush=True,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
