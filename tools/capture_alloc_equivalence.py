#!/usr/bin/env python3
"""Capture allocator-equivalence evidence for hot-path rewrites.

Produces a JSON record with three sections:

* ``fig2`` — audited figure-2-style sweep points (restricted buddy
  variants x workloads): the full fingerprint timeline digests.
* ``fig6`` — audited figure-6 comparison points (all four compared
  policies x workloads): fingerprint timeline digests.
* ``fuzz54`` — the 54-config allocation-to-failure fuzz grid: the
  fragmentation report fields, operation count, and file count of every
  run (pure functions of every allocation decision made).

Run before and after an allocator change and diff the two files; any
difference means the change altered an allocation decision somewhere::

    PYTHONPATH=src python tools/capture_alloc_equivalence.py --out pre.json
    # ... rewrite the allocator ...
    PYTHONPATH=src python tools/capture_alloc_equivalence.py --out post.json
    diff pre.json post.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def capture_fig2(scale: float, cap_ms: float) -> dict:
    from repro import (
        AuditConfig,
        ExperimentConfig,
        RestrictedPolicy,
        SystemConfig,
    )
    from repro.core.experiments import run_performance_experiment

    audit = AuditConfig(invariants=True, fingerprints=True, cadence_events=2_000)
    out: dict[str, list[str]] = {}
    for workload in ("TS", "TP", "SC"):
        for n_sizes, grow, clustered in (
            (5, 1, True), (3, 1, True), (5, 2, True), (5, 1, False)
        ):
            sizes = ("1K", "8K", "64K", "1M", "16M")[:n_sizes]
            policy = RestrictedPolicy(
                block_sizes=sizes, grow_factor=grow, clustered=clustered
            )
            config = ExperimentConfig(
                policy=policy, workload=workload,
                system=SystemConfig(scale=scale),
            )
            result = run_performance_experiment(
                config, audit=audit, app_cap_ms=cap_ms, seq_cap_ms=cap_ms
            )
            key = f"{workload}/{policy.label}"
            out[key] = [fp.digest for fp in (result.fingerprints or ())]
            print(f"fig2 {key}: {len(out[key])} fingerprints", file=sys.stderr)
    return out


def capture_fig6(scale: float, cap_ms: float) -> dict:
    from repro import (
        AuditConfig,
        BuddyPolicy,
        ExperimentConfig,
        ExtentPolicy,
        FixedPolicy,
        RestrictedPolicy,
        SystemConfig,
    )
    from repro.core.experiments import run_performance_experiment

    audit = AuditConfig(invariants=True, fingerprints=True, cadence_events=2_000)
    policies = [
        BuddyPolicy(),
        RestrictedPolicy(),
        ExtentPolicy(),
        FixedPolicy(block_size="4K"),
        FixedPolicy(block_size="16K"),
    ]
    out: dict[str, list[str]] = {}
    for workload in ("TS", "TP", "SC"):
        for policy in policies:
            config = ExperimentConfig(
                policy=policy, workload=workload,
                system=SystemConfig(scale=scale),
            )
            result = run_performance_experiment(
                config, audit=audit, app_cap_ms=cap_ms, seq_cap_ms=cap_ms
            )
            key = f"{workload}/{policy.label}"
            out[key] = [fp.digest for fp in (result.fingerprints or ())]
            print(f"fig6 {key}: {len(out[key])} fingerprints", file=sys.stderr)
    return out


def capture_fuzz54(scale: float) -> dict:
    from repro import (
        AuditConfig,
        BuddyPolicy,
        ExperimentConfig,
        ExtentPolicy,
        FfsPolicy,
        FixedPolicy,
        LogStructuredPolicy,
        RestrictedPolicy,
        SystemConfig,
    )
    from repro.core.experiments import run_allocation_experiment

    policies = [
        BuddyPolicy(), RestrictedPolicy(), ExtentPolicy(),
        FfsPolicy(), FixedPolicy(), LogStructuredPolicy(),
    ]
    out: dict[str, dict] = {}
    for policy in policies:
        for workload in ("TS", "TP", "SC"):
            for seed in (3, 1991, 86_028_121):
                config = ExperimentConfig(
                    policy=policy, workload=workload,
                    system=SystemConfig(scale=scale), seed=seed,
                )
                result = run_allocation_experiment(
                    config, fill_fraction=1.0,
                    audit=AuditConfig(cadence_events=100),
                )
                frag = result.fragmentation
                key = f"{policy.label}/{workload}/{seed}"
                out[key] = {
                    "internal": frag.internal_fraction,
                    "external": frag.external_fraction,
                    "allocated_units": frag.allocated_units,
                    "operations": result.operations,
                    "files": result.file_count,
                    "avg_extents": result.average_extents_per_file,
                }
                print(f"fuzz {key}: ops={result.operations}", file=sys.stderr)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", required=True)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--fuzz-scale", type=float, default=0.005)
    parser.add_argument("--cap-ms", type=float, default=2_000.0)
    parser.add_argument("--skip", nargs="*", default=(),
                        choices=("fig2", "fig6", "fuzz54"))
    args = parser.parse_args(argv)

    record: dict = {"scale": args.scale, "fuzz_scale": args.fuzz_scale}
    if "fig2" not in args.skip:
        record["fig2"] = capture_fig2(args.scale, args.cap_ms)
    if "fig6" not in args.skip:
        record["fig6"] = capture_fig6(args.scale, args.cap_ms)
    if "fuzz54" not in args.skip:
        record["fuzz54"] = capture_fuzz54(args.fuzz_scale)
    path = pathlib.Path(args.out)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
