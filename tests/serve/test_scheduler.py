"""Tests for the split pool layers (WorkerCrew / TaskScheduler) and the
deterministic retry/backoff schedule satellites."""

import os
import time

from repro.core.pool import (
    SupervisedPool,
    TaskScheduler,
    WorkerCrew,
    backoff_delay,
    backoff_schedule,
)


# -- picklable work functions for the spawn workers -------------------------


def quick(x):
    return ("ok", x + 1, 0.0)


def slow_if_zero(x):
    """Task payload 0 hangs forever; everything else returns fast."""
    if x == 0:
        time.sleep(300)
    return ("ok", x * 10, 0.0)


def napping(x):
    time.sleep(1.0)
    return ("ok", x, 0.0)


class TestBackoffDeterminism:
    def test_same_seed_means_identical_schedule(self):
        a = backoff_schedule(42, index=3, retries=4, base_s=0.5)
        b = backoff_schedule(42, index=3, retries=4, base_s=0.5)
        assert a == b
        assert len(a) == 4

    def test_schedule_is_exponential_with_bounded_jitter(self):
        schedule = backoff_schedule(7, index=0, retries=3, base_s=0.5)
        for attempt, delay in enumerate(schedule):
            base = 0.5 * (2.0**attempt)
            assert base <= delay <= 1.5 * base

    def test_different_seed_index_or_attempt_changes_the_jitter(self):
        base = backoff_delay(1, index=0, attempt=0, base_s=0.5)
        assert backoff_delay(2, index=0, attempt=0, base_s=0.5) != base
        assert backoff_delay(1, index=1, attempt=0, base_s=0.5) != base
        # Different attempts share no jitter stream either (beyond the
        # doubled base).
        first, second = backoff_schedule(1, index=0, retries=2, base_s=0.5)
        assert second - 2 * first != 0

    def test_scheduler_retry_uses_the_published_schedule(self):
        # The published schedule is the contract: a service replaying a
        # request after a restart must back off identically.
        pool = SupervisedPool(quick, n_workers=1, retries=2, jitter_seed=9)
        assert backoff_schedule(
            pool.jitter_seed, 5, pool.retries, pool.backoff_base_s
        ) == backoff_schedule(9, 5, 2, 0.5)


class TestTimeoutWithSiblings:
    def test_hung_task_is_killed_while_siblings_complete(self):
        pool = SupervisedPool(slow_if_zero, n_workers=3, timeout_s=1.5)
        outcomes = {i: outcome for i, _, outcome in pool.run(
            [(i, i) for i in range(5)]
        )}
        assert set(outcomes) == set(range(5))
        status0, detail0, _ = outcomes[0]
        assert status0 == "error"
        assert "timeout" in detail0
        for i in (1, 2, 3, 4):
            assert outcomes[i] == ("ok", i * 10, 0.0)
        assert pool.stats.timeouts == 1
        assert pool.stats.workers_replaced == 1


class TestWorkerCrew:
    def test_incremental_feeding_mid_run(self):
        crew = WorkerCrew(quick)
        scheduler = TaskScheduler(crew)
        try:
            crew.ensure_workers(2)
            scheduler.add(0, 10)
            done = {}
            fed_second = False
            while scheduler.outstanding or not fed_second:
                for index, _, outcome in scheduler.step(0.05):
                    done[index] = outcome
                if not fed_second and 0 in done:
                    scheduler.add(1, 20)  # fed after the first completed
                    fed_second = True
            assert done == {0: ("ok", 11, 0.0), 1: ("ok", 21, 0.0)}
        finally:
            crew.shutdown()

    def test_kill_one_is_observed_as_a_crash_and_retried(self):
        crew = WorkerCrew(napping)
        scheduler = TaskScheduler(crew, retries=1, backoff_base_s=0.05)
        try:
            crew.ensure_workers(1)
            scheduler.add(0, "payload")
            scheduler.step(0.05)  # dispatch
            deadline = time.monotonic() + 5.0
            while crew.busy == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert crew.kill_one() == 0
            outcomes = []
            deadline = time.monotonic() + 15.0
            while not outcomes and time.monotonic() < deadline:
                outcomes = scheduler.step(0.1)
            [(index, _, (status, payload, _))] = outcomes
            assert (index, status, payload) == (0, "ok", "payload")
            assert crew.stats.crashes == 1
            assert crew.stats.retries == 1
        finally:
            crew.shutdown()

    def test_try_assign_survives_a_worker_dead_before_dispatch(self):
        crew = WorkerCrew(quick)
        try:
            crew.ensure_workers(1)
            [(process, _)] = crew._workers.values()
            process.kill()
            process.join()
            # The dead worker is replaced inline and the task lands on
            # the replacement instead of raising BrokenPipeError.
            assert crew.try_assign(0, 1) is True
            assert crew.stats.workers_replaced == 1
            events = []
            deadline = time.monotonic() + 10.0
            while not events and time.monotonic() < deadline:
                events = crew.poll(0.1)
            assert events[0].kind == "done"
            assert events[0].outcome == ("ok", 2, 0.0)
        finally:
            crew.shutdown()

    def test_shutdown_reaps_every_child(self):
        crew = WorkerCrew(quick)
        crew.ensure_workers(3)
        pids = [process.pid for process, _ in crew._workers.values()]
        crew.shutdown()
        assert crew.size == 0
        for pid in pids:
            # A reaped child no longer exists (or is at worst a zombie
            # already joined); os.kill(pid, 0) must fail.
            try:
                os.kill(pid, 0)
                alive = True
            except ProcessLookupError:
                alive = False
            assert not alive
        crew.shutdown()  # idempotent
