"""Shared fixtures for the serve tests: spec builders and picklable
work functions for the spawn workers.

The service validates every submission through the codec, so scripted
work functions receive *canonical* specs; behavior is keyed on the seed:

* ``666`` — scripted deterministic task failure (``task-error``).
* ``[700, 800)`` — gated: blocks until the ``REPRO_TEST_GATE`` file
  disappears (lets tests hold jobs in flight deterministically).
* ``[900, 1000)`` — suicidal: the worker SIGKILLs itself on the first
  attempt (flag file under ``REPRO_TEST_GATE``'s directory) and
  succeeds on the retry.
* anything else — returns immediately.
"""

from __future__ import annotations

import os
import signal
import time


def spec_for(seed: int, scale: float = 0.02, **kwargs) -> dict:
    spec = {
        "kind": "performance",
        "workload": "TS",
        "seed": seed,
        "policy": {"name": "fixed", "block_size": "4K"},
        "system": {"scale": scale},
    }
    spec.update(kwargs)
    return spec


def tiny_real_spec(seed: int = 7) -> dict:
    """A spec small enough to really execute in well under a second."""
    return spec_for(
        seed, kwargs={"app_cap_ms": 1_000.0, "seq_cap_ms": 1_000.0}
    )


def scripted_work(spec: dict) -> tuple:
    seed = spec["seed"]
    if seed == 666:
        return ("task-error", "Traceback: scripted deterministic failure", 0.0)
    if 700 <= seed < 800:
        gate = os.environ.get("REPRO_TEST_GATE")
        while gate and os.path.exists(gate):
            time.sleep(0.02)
    if 900 <= seed < 1000:
        gate = os.environ.get("REPRO_TEST_GATE", "")
        flag = f"{gate}.attempted.{seed}"
        if not os.path.exists(flag):
            with open(flag, "w") as handle:
                handle.write("attempted")
            os.kill(os.getpid(), signal.SIGKILL)
    return ("ok", {"seed": seed, "square": seed * seed}, 0.01)


def emitting_work(spec: dict) -> tuple:
    """Streams a few telemetry frames before finishing (SSE tests)."""
    from repro.obs.telemetry import emit

    for tick in range(3):
        emit({"stage": "tick", "sim_ms": float(tick), "cap_ms": 3.0})
        time.sleep(0.05)
    return ("ok", {"seed": spec["seed"]}, 0.15)


def drain_gated(service, gate: str, timeout_s: float = 10.0) -> None:
    """Release the gate and wait for the service to go idle."""
    if os.path.exists(gate):
        os.unlink(gate)
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if service.stats_view()["depth"] == 0:
            return
        time.sleep(0.02)
    raise AssertionError("service did not drain in time")
