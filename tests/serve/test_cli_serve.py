"""Tests for the ``repro serve`` / ``repro submit`` CLI surface."""

import json
import threading

import pytest

from repro.cli import build_parser, main
from repro.serve import ExperimentService, make_daemon

from .helpers import scripted_work, spec_for


class TestParser:
    def test_serve_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "--state-dir", "/tmp/state", "--port", "0",
                "--workers", "4", "--max-queue", "64", "--timeout", "300",
                "--retries", "2", "--chaos",
            ]
        )
        assert args.state_dir == "/tmp/state"
        assert args.workers == 4
        assert args.max_queue == 64
        assert args.timeout == 300.0
        assert args.chaos

    def test_serve_requires_state_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_submit_flags(self):
        args = build_parser().parse_args(
            [
                "submit", "--url", "http://127.0.0.1:9999",
                "--kind", "alloc", "--policy", "extent", "--workload", "TP",
                "--priority", "high", "--wait", "30", "--follow",
            ]
        )
        assert args.url == "http://127.0.0.1:9999"
        assert args.kind == "alloc"
        assert args.priority == "high"
        assert args.wait == 30.0
        assert args.follow

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit"])
        assert args.url == "http://127.0.0.1:8765"
        assert args.kind == "perf"
        assert args.priority == "normal"
        assert args.spec is None


class TestSubmitRoundTrip:
    @pytest.fixture
    def live_daemon(self, tmp_path):
        service = ExperimentService(
            tmp_path / "state", workers=1, work_fn=scripted_work
        )
        service.start()
        daemon = make_daemon(service, port=0)
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        host, port = daemon.server_address[:2]
        yield f"http://{host}:{port}"
        daemon.shutdown()
        daemon.server_close()
        service.stop()

    def test_submit_spec_file_and_wait(self, live_daemon, tmp_path, capsys):
        spec_path = tmp_path / "point.json"
        spec_path.write_text(json.dumps(spec_for(17)))
        status = main(
            [
                "submit", "--url", live_daemon,
                "--spec", str(spec_path), "--wait", "30",
            ]
        )
        assert status == 0
        out = capsys.readouterr()
        body = json.loads(out.out)
        assert body["status"] == "done"
        assert body["summary"]["result_digest"]
        assert "submit: job" in out.err

    def test_submit_flag_built_spec_without_wait_exits_9(
        self, live_daemon, capsys
    ):
        status = main(
            ["submit", "--url", live_daemon, "--kind", "perf", "--seed", "18"]
        )
        # scripted work is instantaneous, but without --wait the CLI
        # reports whatever state the job is in; both are legal here.
        assert status in (0, 9)
        body = json.loads(capsys.readouterr().out)
        assert body["submitted"] in ("queued", "done")

    def test_unreachable_daemon_is_a_clean_error(self, capsys):
        status = main(
            ["submit", "--url", "http://127.0.0.1:1", "--wait", "1"]
        )
        assert status == 2
        assert "cannot reach" in capsys.readouterr().err
