"""Tests for the durability satellites: concurrent-writer-safe result
cache stores and per-thread telemetry emitter slots."""

import threading

from repro.core.runner import ResultCache
from repro.obs.telemetry import (
    emit,
    install_emitter,
    telemetry_enabled,
    uninstall_emitter,
)


class TestConcurrentCacheStores:
    def test_racing_writers_on_one_key_never_tear_the_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        barrier = threading.Barrier(8)

        def hammer(worker: int) -> None:
            barrier.wait()
            for round_ in range(25):
                cache.store("contested", {"worker": worker, "round": round_})

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Last-writer-wins semantics: the surviving entry is one of the
        # writes, complete and checksum-valid — never an interleaving.
        result = cache.load("contested")
        assert result is not None
        assert set(result) == {"worker", "round"}
        assert cache.evictions == 0
        # Every temp file was cleaned up (unique names per writer).
        assert list(tmp_path.glob("*.tmp")) == []

    def test_distinct_keys_from_many_threads_all_land(self, tmp_path):
        cache = ResultCache(tmp_path)

        def store(k: int) -> None:
            cache.store(f"key-{k}", {"value": k})

        threads = [threading.Thread(target=store, args=(k,)) for k in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for k in range(16):
            assert cache.load(f"key-{k}") == {"value": k}


class TestThreadLocalEmitters:
    def test_emitters_are_isolated_per_thread(self):
        seen_main: list[dict] = []
        seen_other: list[dict] = []
        errors: list[str] = []

        def other_thread() -> None:
            # A sibling thread installing and removing its own emitter
            # must not disturb the main thread's slot.
            install_emitter(seen_other.append)
            emit({"from": "other"})
            uninstall_emitter()
            if telemetry_enabled():
                errors.append("other thread still enabled after uninstall")

        install_emitter(seen_main.append)
        try:
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
            emit({"from": "main"})
        finally:
            uninstall_emitter()

        assert errors == []
        assert seen_main == [{"from": "main"}]
        assert seen_other == [{"from": "other"}]

    def test_thread_without_emitter_is_disabled(self):
        states: list[bool] = []
        worker = threading.Thread(
            target=lambda: states.append(telemetry_enabled())
        )
        install_emitter(lambda frame: None)
        try:
            worker.start()
            worker.join()
        finally:
            uninstall_emitter()
        assert states == [False]
