"""Tests for the JSON wire codec: strict validation + key-preserving
round trips (what makes ledger specs a faithful recovery record)."""

import pytest

from repro.audit import AuditConfig
from repro.core.configs import (
    BuddyPolicy,
    ExperimentConfig,
    ExtentPolicy,
    FfsPolicy,
    FixedPolicy,
    LogStructuredPolicy,
    RestrictedPolicy,
    SystemConfig,
)
from repro.core.runner import ExperimentTask
from repro.errors import ConfigurationError
from repro.fault.plan import parse_fault_spec
from repro.serve import spec_to_task, task_to_spec


def roundtrip(task: ExperimentTask) -> ExperimentTask:
    return spec_to_task(task_to_spec(task))


class TestRoundTrip:
    @pytest.mark.parametrize(
        "policy",
        [
            BuddyPolicy(),
            RestrictedPolicy(grow_factor=2, clustered=False),
            ExtentPolicy(range_means=(4096, 65536), fit="best"),
            FixedPolicy(block_size="16K", aged=True),
            FfsPolicy(block_size="8K"),
            LogStructuredPolicy(),
        ],
    )
    def test_every_policy_roundtrips_with_same_cache_key(self, policy):
        config = ExperimentConfig(
            policy=policy, workload="TP", system=SystemConfig(scale=0.05), seed=3
        )
        task = ExperimentTask.performance(config, app_cap_ms=9_000.0)
        assert roundtrip(task).cache_key == task.cache_key

    def test_allocation_task_roundtrips(self):
        config = ExperimentConfig(
            policy=RestrictedPolicy(),
            workload="SC",
            system=SystemConfig(scale=0.1),
            seed=11,
            fill_fraction=0.5,
        )
        task = ExperimentTask.allocation(config, max_operations=500)
        assert roundtrip(task).cache_key == task.cache_key

    def test_faults_roundtrip_including_high_precision_times(self):
        faults = parse_fault_spec(
            "fail:drive=2,at=5000.125,repair=40000.0625;"
            "slow:drive=0,at=123.456789012345,factor=4.5,for=1000;"
            "transient:rate=0.0012345678901234567,drive=1,from=10,until=99999"
        )
        config = ExperimentConfig(
            policy=FixedPolicy(),
            workload="TS",
            system=SystemConfig(scale=0.05, organization="raid5"),
            seed=5,
            faults=faults,
        )
        task = ExperimentTask.performance(config)
        again = roundtrip(task)
        assert again.cache_key == task.cache_key
        assert again.config.faults == faults

    def test_audit_config_roundtrips(self):
        config = ExperimentConfig(
            policy=FixedPolicy(), workload="TS",
            system=SystemConfig(scale=0.05), seed=5,
        )
        task = ExperimentTask.performance(
            config, audit=AuditConfig(fingerprints=True)
        )
        again = roundtrip(task)
        assert again.cache_key == task.cache_key
        assert dict(again.kwargs)["audit"].fingerprints is True

    def test_system_organization_and_striping_roundtrip(self):
        config = ExperimentConfig(
            policy=FixedPolicy(),
            workload="TS",
            system=SystemConfig(
                scale=0.05, n_disks=4, organization="mirrored",
                queue_discipline="fcfs",
            ),
            seed=2,
        )
        task = ExperimentTask.performance(config)
        assert roundtrip(task).cache_key == task.cache_key


class TestValidation:
    def base_spec(self) -> dict:
        return {
            "kind": "performance",
            "workload": "TS",
            "seed": 7,
            "policy": {"name": "fixed", "block_size": "4K"},
            "system": {"scale": 0.02},
        }

    def test_minimal_spec_gets_defaults(self):
        task = spec_to_task({"workload": "SC"})
        assert task.kind == "performance"
        assert task.config.seed == 1991
        assert isinstance(task.config.policy, RestrictedPolicy)

    @pytest.mark.parametrize(
        "mutation, fragment",
        [
            ({"typo_field": 1}, "unknown field"),
            ({"kind": "nonsense"}, "kind"),
            ({"workload": "XX"}, "workload"),
            ({"seed": "seven"}, "seed"),
            ({"seed": True}, "seed"),
            ({"policy": {"name": "zfs"}}, "policy.name"),
            ({"policy": {"name": "fixed", "blok_size": "4K"}}, "unknown"),
            ({"system": {"scael": 0.1}}, "unknown"),
            ({"faults": 42}, "faults"),
            ({"kwargs": {"nope": 1}}, "unknown"),
            ({"audit": {"nope": True}}, "unknown"),
        ],
    )
    def test_malformed_specs_are_rejected_with_context(self, mutation, fragment):
        spec = self.base_spec()
        spec.update(mutation)
        with pytest.raises(ConfigurationError, match=fragment):
            spec_to_task(spec)

    def test_non_object_spec_is_rejected(self):
        with pytest.raises(ConfigurationError, match="expected an object"):
            spec_to_task([1, 2, 3])

    def test_allocation_rejects_performance_kwargs(self):
        spec = self.base_spec()
        spec["kind"] = "allocation"
        spec["kwargs"] = {"app_cap_ms": 100.0}
        with pytest.raises(ConfigurationError, match="unknown"):
            spec_to_task(spec)
