"""Chaos-harness smoke: run real drills from tools/chaos_serve.py.

The full harness (``python tools/chaos_serve.py``) exercises every
drill; these tests pin the two acceptance-critical ones — SIGKILL'd
daemon restarting bit-identically, and a burst of identical requests
costing one simulation — so the guarantee cannot rot silently.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
HARNESS = REPO / "tools" / "chaos_serve.py"


def run_drill(name: str, tmp_path: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [
            sys.executable, str(HARNESS),
            "--drill", name, "--scratch", str(tmp_path),
        ],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(REPO),
    )


def test_sigkill_restart_drill_is_bit_identical(tmp_path):
    result = run_drill("restart", tmp_path)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "chaos[restart]: PASS" in result.stdout


def test_identical_request_burst_costs_one_simulation(tmp_path):
    result = run_drill("dedup", tmp_path)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "chaos[dedup]: PASS" in result.stdout
