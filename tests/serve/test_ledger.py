"""Tests for the durable run ledger: replay, torn-tail repair,
compaction, and the deterministic-failure record."""

import json

import pytest

from repro.errors import ServiceError
from repro.serve import RunLedger


def test_accept_then_done_replays_as_completed(tmp_path):
    ledger = RunLedger(tmp_path)
    assert ledger.open() == {}
    ledger.accept("k1", {"seed": 1}, priority=0)
    ledger.accept("k2", {"seed": 2})
    ledger.done("k1")
    ledger.close()

    entries = RunLedger(tmp_path).open()
    assert set(entries) == {"k1", "k2"}
    assert entries["k1"].done and entries["k1"].error is None
    assert entries["k1"].priority == 0
    assert not entries["k2"].done
    assert entries["k2"].spec == {"seed": 2}


def test_replay_preserves_acceptance_order(tmp_path):
    ledger = RunLedger(tmp_path)
    ledger.open()
    for i in range(5):
        ledger.accept(f"k{i}", {"seed": i})
    ledger.close()
    assert list(RunLedger(tmp_path).open()) == [f"k{i}" for i in range(5)]


def test_torn_tail_is_truncated_not_fatal(tmp_path):
    ledger = RunLedger(tmp_path)
    ledger.open()
    ledger.accept("good", {"seed": 1})
    ledger.close()
    path = tmp_path / "ledger.jsonl"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"op": "accept", "key": "torn", "spe')  # no newline

    again = RunLedger(tmp_path)
    entries = again.open()
    assert set(entries) == {"good"}
    assert again.recovered_bytes > 0
    # The compacted file is clean again: a third open loses nothing.
    third = RunLedger(tmp_path)
    assert set(third.open()) == {"good"}
    assert third.recovered_bytes == 0


def test_garbage_line_stops_replay_at_last_good_record(tmp_path):
    ledger = RunLedger(tmp_path)
    ledger.open()
    ledger.accept("before", {"seed": 1})
    ledger.close()
    path = tmp_path / "ledger.jsonl"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\x00\x00 not json at all \x00\n")
        handle.write(json.dumps({"op": "accept", "key": "after", "spec": {}}) + "\n")

    entries = RunLedger(tmp_path).open()
    # Everything after the corruption is suspect and dropped.
    assert set(entries) == {"before"}


def test_deterministic_failure_survives_reopen(tmp_path):
    ledger = RunLedger(tmp_path)
    ledger.open()
    ledger.accept("bad", {"seed": 666})
    ledger.done("bad", error="Traceback: scripted")
    ledger.close()

    entries = RunLedger(tmp_path).open()
    assert entries["bad"].done
    assert "scripted" in entries["bad"].error


def test_compaction_bounds_file_size(tmp_path):
    ledger = RunLedger(tmp_path)
    ledger.open()
    # Many redundant records for the same keys...
    for _ in range(50):
        ledger.accept("k", {"seed": 1})
        ledger.done("k")
    ledger.close()
    before = (tmp_path / "ledger.jsonl").stat().st_size

    RunLedger(tmp_path).open()
    after = (tmp_path / "ledger.jsonl").stat().st_size
    # ...collapse to one accept + one done stub on reopen.
    assert after < before / 10
    lines = (tmp_path / "ledger.jsonl").read_text().splitlines()
    assert len(lines) == 2


def test_append_without_open_is_an_error(tmp_path):
    with pytest.raises(ServiceError, match="not open"):
        RunLedger(tmp_path).accept("k", {})


def test_extra_fields_survive_the_round_trip(tmp_path):
    ledger = RunLedger(tmp_path)
    ledger.open()
    ledger.accept("k", {"seed": 1}, client="test-suite")
    ledger.close()
    entries = RunLedger(tmp_path).open()
    assert entries["k"].extra == {"client": "test-suite"}
