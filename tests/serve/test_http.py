"""Tests for the HTTP front door: submission, status, SSE streaming,
overload responses, and the chaos endpoint gate."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import ExperimentService, make_daemon

from .helpers import drain_gated, emitting_work, scripted_work, spec_for


@pytest.fixture
def gate(tmp_path, monkeypatch):
    path = tmp_path / "gate.flag"
    path.write_text("hold")
    monkeypatch.setenv("REPRO_TEST_GATE", str(path))
    return str(path)


@pytest.fixture
def server(tmp_path):
    """A running daemon over the scripted work function."""
    with running_server(tmp_path) as bundle:
        yield bundle


class running_server:
    def __init__(self, tmp_path, work_fn=scripted_work, chaos=False, **kwargs):
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("retries", 1)
        kwargs.setdefault("backoff_base_s", 0.05)
        self.service = ExperimentService(
            tmp_path / "state", work_fn=work_fn, **kwargs
        )
        self.chaos = chaos

    def __enter__(self):
        self.service.start()
        self.daemon = make_daemon(self.service, port=0, chaos=self.chaos)
        self.thread = threading.Thread(
            target=self.daemon.serve_forever, daemon=True
        )
        self.thread.start()
        host, port = self.daemon.server_address[:2]
        self.base = f"http://{host}:{port}"
        return self

    def __exit__(self, *exc):
        self.daemon.shutdown()
        self.daemon.server_close()
        self.service.stop()
        return False

    def request(self, path, body=None, timeout=30.0):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            f"{self.base}{path}",
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, dict(response.headers), json.loads(
                    response.read()
                )
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), json.loads(error.read())


class TestSubmission:
    def test_submit_and_wait_returns_the_finished_job(self, server):
        status, _, body = server.request(
            "/v1/experiments", {"spec": spec_for(3), "wait_s": 30}
        )
        assert status == 200
        assert body["status"] == "done"
        assert body["submitted"] == "queued"
        assert body["summary"]["result_digest"]

    def test_submit_without_wait_returns_202_accepted(self, server, gate):
        status, _, body = server.request(
            "/v1/experiments", {"spec": spec_for(770)}
        )
        assert status == 202
        assert body["status"] in ("queued", "running")
        drain_gated(server.service, gate)

    def test_identical_concurrent_posts_run_once(self, server, gate):
        results = []
        lock = threading.Lock()

        def post():
            outcome = server.request(
                "/v1/experiments", {"spec": spec_for(771)}
            )
            with lock:
                results.append(outcome)

        threads = [threading.Thread(target=post) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        drain_gated(server.service, gate)
        hows = sorted(body["submitted"] for _, _, body in results)
        assert hows == ["deduped"] * 5 + ["queued"]
        assert server.service.stats.executed == 1

    def test_malformed_spec_maps_to_400(self, server):
        status, _, body = server.request(
            "/v1/experiments", {"spec": {"workload": "XX"}}
        )
        assert status == 400
        assert "workload" in body["error"]

    def test_non_json_body_maps_to_400(self, server):
        request = urllib.request.Request(
            f"{server.base}/v1/experiments", data=b"not json {"
        )
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(request, timeout=10)
        assert error.value.code == 400

    def test_unknown_route_and_job_map_to_404(self, server):
        assert server.request("/v1/nope")[0] == 404
        assert server.request("/v1/jobs/ffff")[0] == 404


class TestOverload:
    def test_shed_request_gets_429_with_retry_after(self, tmp_path, gate):
        with running_server(tmp_path, workers=1, max_queue=2) as server:
            server.request("/v1/experiments", {"spec": spec_for(700)})
            server.request("/v1/experiments", {"spec": spec_for(701)})
            status, headers, body = server.request(
                "/v1/experiments", {"spec": spec_for(702)}
            )
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert body["depth"] == 2 and body["budget"] == 2
            drain_gated(server.service, gate)

    def test_fully_shed_sweep_is_429_partial_is_200(self, tmp_path, gate):
        with running_server(tmp_path, workers=1, max_queue=2) as server:
            status, _, body = server.request(
                "/v1/sweeps",
                {"specs": [spec_for(s) for s in (703, 704, 705)]},
            )
            assert status == 200
            assert body["accepted"] == 2 and body["shed"] == 1
            status, headers, _ = server.request(
                "/v1/sweeps", {"specs": [spec_for(706)]}
            )
            assert status == 429
            assert "Retry-After" in headers
            drain_gated(server.service, gate)

    def test_sweep_reports_invalid_specs_without_failing_the_rest(
        self, server
    ):
        status, _, body = server.request(
            "/v1/sweeps",
            {"specs": [spec_for(8), {"workload": "XX"}], "wait": False},
        )
        assert status == 200
        assert body["accepted"] == 1 and body["invalid"] == 1
        assert body["jobs"][1]["submitted"] == "invalid"


class TestStreaming:
    def test_sse_streams_progress_then_done(self, tmp_path):
        with running_server(tmp_path, work_fn=emitting_work) as server:
            _, _, body = server.request(
                "/v1/experiments", {"spec": spec_for(9)}
            )
            key = body["job"]
            events = []
            with urllib.request.urlopen(
                f"{server.base}/v1/jobs/{key}/events", timeout=30
            ) as stream:
                name = None
                for raw in stream:
                    line = raw.decode().rstrip("\n")
                    if line.startswith("event: "):
                        name = line[len("event: "):]
                    elif line.startswith("data: "):
                        events.append((name, json.loads(line[len("data: "):])))
                        if name == "done":
                            break
            assert events[-1][0] == "done"
            assert events[-1][1]["status"] == "done"
            progress = [data for name, data in events if name == "progress"]
            if progress:  # frames may race the subscription; done never does
                assert progress[0]["stage"] == "tick"

    def test_sse_on_finished_job_sends_done_immediately(self, server):
        _, _, body = server.request(
            "/v1/experiments", {"spec": spec_for(12), "wait_s": 30}
        )
        with urllib.request.urlopen(
            f"{server.base}/v1/jobs/{body['job']}/events", timeout=10
        ) as stream:
            first = stream.readline().decode()
            assert first.startswith("event: done")

    def test_disconnecting_client_does_not_wedge_the_service(
        self, tmp_path, gate
    ):
        with running_server(tmp_path) as server:
            _, _, body = server.request(
                "/v1/experiments", {"spec": spec_for(772)}
            )
            stream = urllib.request.urlopen(
                f"{server.base}/v1/jobs/{body['job']}/events", timeout=10
            )
            stream.close()  # hang up while the job is still running
            drain_gated(server.service, gate)
            status, _, view = server.request(f"/v1/jobs/{body['job']}")
            assert status == 200 and view["status"] == "done"


class TestChaosEndpoint:
    def test_kill_worker_requires_the_chaos_flag(self, server):
        status, _, body = server.request("/v1/chaos/kill-worker", {})
        assert status == 403
        assert "--chaos" in body["error"]

    def test_kill_worker_mid_job_still_completes_via_retry(
        self, tmp_path, gate
    ):
        with running_server(tmp_path, chaos=True) as server:
            _, _, body = server.request(
                "/v1/experiments", {"spec": spec_for(773)}
            )
            # Wait until the job is actually on a worker, then kill it.
            import time

            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                view = server.service.stats_view()
                if view["jobs"].get("running"):
                    break
                time.sleep(0.02)
            status, _, _ = server.request("/v1/chaos/kill-worker", {})
            assert status == 200
            drain_gated(server.service, gate)
            _, _, view = server.request(f"/v1/jobs/{body['job']}")
            assert view["status"] == "done"
            assert server.service.pool_stats.crashes == 1


class TestHealth:
    def test_healthz_and_stats(self, server):
        status, _, body = server.request("/healthz")
        assert status == 200 and body["ok"] is True
        status, _, stats = server.request("/v1/stats")
        assert status == 200
        assert stats["budget"] == server.service.max_queue
        assert "supervision" in stats
