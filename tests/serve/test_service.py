"""Tests for the service core: single-flight dedup, admission control,
crash recovery through the ledger, and bit-identical results."""

import os
import threading
import time

import pytest

from repro.errors import ConfigurationError, ServiceOverloaded
from repro.serve import ExperimentService, result_digest
from repro.serve.service import DONE, FAILED

from .helpers import drain_gated, scripted_work, spec_for, tiny_real_spec


@pytest.fixture
def gate(tmp_path, monkeypatch):
    """A flag file that holds gated jobs (seeds 700-799) in flight."""
    path = tmp_path / "gate.flag"
    path.write_text("hold")
    monkeypatch.setenv("REPRO_TEST_GATE", str(path))
    return str(path)


def make_service(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("work_fn", scripted_work)
    kwargs.setdefault("retries", 1)
    kwargs.setdefault("backoff_base_s", 0.05)
    return ExperimentService(tmp_path / "state", **kwargs)


def wait_done(service, job, timeout_s=20.0):
    assert service.wait(job, timeout_s=timeout_s), f"{job.key} never finished"
    return job


class TestSingleFlight:
    def test_identical_concurrent_requests_cost_one_simulation(
        self, tmp_path, gate
    ):
        service = make_service(tmp_path)
        service.start()
        try:
            spec = spec_for(750)  # gated: stays in flight until released
            jobs, hows = [], []
            lock = threading.Lock()

            def submit():
                job, how = service.submit(spec)
                with lock:
                    jobs.append(job)
                    hows.append(how)

            threads = [threading.Thread(target=submit) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert len({job.key for job in jobs}) == 1
            assert sorted(hows) == ["deduped"] * 7 + ["queued"]
            drain_gated(service, gate)
            wait_done(service, jobs[0])
            assert service.stats.executed == 1
            assert service.stats.accepted == 1
            assert service.stats.deduped == 7
        finally:
            service.stop()

    def test_finished_job_is_served_from_cache_not_rerun(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        try:
            job, how = service.submit(spec_for(5))
            assert how == "queued"
            wait_done(service, job)
            again, how2 = service.submit(spec_for(5))
            assert how2 == "done"
            assert again.state == DONE
            assert service.stats.executed == 1
            assert service.stats.cache_hits == 1
        finally:
            service.stop()


class TestAdmissionControl:
    def test_overload_sheds_with_retry_hint(self, tmp_path, gate):
        service = make_service(tmp_path, workers=1, max_queue=3)
        service.start()
        try:
            for seed in (700, 701, 702):
                service.submit(spec_for(seed))
            with pytest.raises(ServiceOverloaded) as shed:
                service.submit(spec_for(703))
            assert shed.value.depth == 3
            assert shed.value.budget == 3
            assert 1.0 <= shed.value.retry_after_s <= 120.0
            assert service.stats.shed == 1
            # Dedup against an in-flight job is NOT shed even at budget.
            _, how = service.submit(spec_for(700))
            assert how == "deduped"
            drain_gated(service, gate)
            # Capacity freed: the same request is now admitted.
            job, how = service.submit(spec_for(703))
            assert how == "queued"
            wait_done(service, job)
        finally:
            service.stop()

    def test_malformed_spec_is_rejected_before_admission(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        try:
            with pytest.raises(ConfigurationError):
                service.submit({"workload": "bogus"})
            assert service.stats.accepted == 0
        finally:
            service.stop()


class TestFailureSemantics:
    def test_deterministic_task_failure_is_journaled_not_retried(
        self, tmp_path
    ):
        service = make_service(tmp_path)
        service.start()
        try:
            job, _ = service.submit(spec_for(666))
            wait_done(service, job)
            assert job.state == FAILED
            assert "scripted deterministic failure" in job.error
            assert service.pool_stats.retries == 0
        finally:
            service.stop()
        # Restart: the failure is recalled from the ledger, not re-run.
        again = make_service(tmp_path)
        again.start()
        try:
            assert again.stats.recovered == 0
            recalled = again.job(job.key)
            assert recalled is not None and recalled.state == FAILED
            resubmitted, how = again.submit(spec_for(666))
            assert how == "deduped"
            assert resubmitted.state == FAILED
            assert again.stats.executed == 0
        finally:
            again.stop()

    def test_worker_suicide_is_retried_to_success(self, tmp_path, gate):
        service = make_service(tmp_path)
        service.start()
        try:
            job, _ = service.submit(spec_for(901))  # SIGKILLs on attempt 1
            wait_done(service, job, timeout_s=30.0)
            assert job.state == DONE
            assert service.pool_stats.crashes == 1
            assert service.pool_stats.retries == 1
        finally:
            service.stop()


class TestRecovery:
    def test_sigkill_equivalent_stop_recovers_and_finishes(
        self, tmp_path, gate
    ):
        service = make_service(tmp_path)
        service.start()
        keys = []
        try:
            for seed in (710, 711, 712):
                job, _ = service.submit(spec_for(seed))
                keys.append(job.key)
        finally:
            service.stop()  # gate still held: nothing completed

        os.unlink(gate)
        revived = make_service(tmp_path)
        revived.start()
        try:
            assert revived.stats.recovered == 3
            for key in keys:
                job = revived.job(key)
                assert job is not None
                wait_done(revived, job)
                assert job.state == DONE
                assert revived.result(key)["seed"] in (710, 711, 712)
        finally:
            revived.stop()

    def test_recovered_results_are_bit_identical_to_a_clean_run(
        self, tmp_path, gate
    ):
        spec = tiny_real_spec(seed=721)  # really simulated, real digests

        clean = ExperimentService(tmp_path / "clean", workers=1)
        clean.start()
        try:
            job, _ = clean.submit(spec)
            wait_done(clean, job, timeout_s=60.0)
            clean_digest = result_digest(clean.result(job.key))
        finally:
            clean.stop()

        # Accept the job on a service whose (gated) worker can never
        # finish it — a deterministic stand-in for a daemon killed
        # mid-simulation — then recover on a real service over the same
        # state dir.
        crashed = ExperimentService(
            tmp_path / "crashed", workers=1, work_fn=scripted_work
        )
        crashed.start()
        try:
            job2, _ = crashed.submit(spec)
        finally:
            crashed.stop()

        revived = ExperimentService(tmp_path / "crashed", workers=1)
        revived.start()
        try:
            recovered = revived.job(job2.key)
            assert recovered is not None
            assert recovered.recovered
            wait_done(revived, recovered, timeout_s=60.0)
            assert result_digest(revived.result(job2.key)) == clean_digest
        finally:
            revived.stop()


class TestPrioritiesAndViews:
    def test_high_priority_overtakes_queued_low(self, tmp_path, gate):
        service = make_service(tmp_path, workers=1)
        service.start()
        try:
            blocker, _ = service.submit(spec_for(760))  # occupies the worker
            deadline = time.monotonic() + 10.0
            while service.stats_view()["jobs"].get("running", 0) == 0:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            low, _ = service.submit(spec_for(10), priority="low")
            high, _ = service.submit(spec_for(11), priority="high")
            drain_gated(service, gate)
            wait_done(service, low)
            wait_done(service, high)
            assert high.finished_s < low.finished_s
        finally:
            service.stop()

    def test_job_view_carries_the_digest_witness(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        try:
            job, _ = service.submit(spec_for(33))
            wait_done(service, job)
            view = service.job_view(job)
            assert view["status"] == "done"
            expected = result_digest({"seed": 33, "square": 33 * 33})
            assert view["summary"]["result_digest"] == expected
        finally:
            service.stop()

    def test_unknown_job_is_none_but_cached_result_synthesizes(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        try:
            assert service.job("no-such-key") is None
            job, _ = service.submit(spec_for(44))
            wait_done(service, job)
            key = job.key
        finally:
            service.stop()
        # New service, same state dir, empty registry: the result cache
        # is the durable record.
        revived = make_service(tmp_path)
        revived.start()
        try:
            synthesized = revived.job(key)
            assert synthesized is not None
            assert synthesized.state == DONE
        finally:
            revived.stop()
