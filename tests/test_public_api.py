"""The public API surface: everything in ``__all__`` exists and imports."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_entry_points_callable(self):
        assert callable(repro.run_allocation_experiment)
        assert callable(repro.run_performance_experiment)
        assert callable(repro.figure6)
        assert callable(repro.table3_buddy)
        assert callable(repro.grow_factor_ablation)

    def test_policy_configs_constructible(self):
        assert repro.BuddyPolicy().label == "buddy"
        assert repro.RestrictedPolicy().label.startswith("restricted")
        assert repro.ExtentPolicy().label.startswith("extent")
        assert repro.FixedPolicy().label.startswith("fixed")

    def test_paper_system_constant(self):
        assert repro.PAPER_SYSTEM.n_disks == 8
        assert repro.PAPER_SYSTEM.scale == 1.0

    def test_profiles_by_paper_name(self):
        capacity = repro.PAPER_SYSTEM.capacity_bytes
        assert repro.time_sharing(capacity).name == "TS"
        assert repro.transaction_processing().name == "TP"
        assert repro.supercomputer().name == "SC"


class TestSubpackageDocstrings:
    """Every public module documents itself (release hygiene)."""

    def test_module_docstrings(self):
        import repro.alloc
        import repro.core
        import repro.disk
        import repro.fault
        import repro.fs
        import repro.report
        import repro.sim
        import repro.structures
        import repro.workload

        for module in (
            repro,
            repro.sim,
            repro.disk,
            repro.fault,
            repro.alloc,
            repro.fs,
            repro.workload,
            repro.core,
            repro.report,
            repro.structures,
        ):
            assert module.__doc__ and len(module.__doc__) > 20, module
