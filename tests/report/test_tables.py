"""Unit tests for the table renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.report.tables import Table, percent


class TestTable:
    def test_render_alignment(self):
        table = Table(["Name", "Value"], title="T")
        table.add_row(["a", 1.0])
        table.add_row(["long-name", 123.456])
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        # All data rows the same width.
        assert len(lines[3]) == len(lines[4])

    def test_floats_formatted(self):
        table = Table(["x"])
        table.add_row([3.14159])
        assert "3.1" in table.render()

    def test_row_length_mismatch_raises(self):
        table = Table(["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row([1])

    def test_empty_headers_raise(self):
        with pytest.raises(ConfigurationError):
            Table([])

    def test_no_title(self):
        table = Table(["a"])
        table.add_row([1])
        assert not table.render().startswith("\n")


def test_percent():
    assert percent(0.123) == "12.3%"
    assert percent(0.5, decimals=0) == "50%"
