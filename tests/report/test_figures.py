"""Unit tests for the text bar-chart renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.report.figures import GroupedBarChart, render_bar


class TestRenderBar:
    def test_full_and_empty(self):
        assert render_bar(10, 10, width=10) == "█" * 10
        assert render_bar(0, 10, width=10) == "·" * 10

    def test_half(self):
        assert render_bar(5, 10, width=10) == "█" * 5 + "·" * 5

    def test_clamps_above_maximum(self):
        assert render_bar(20, 10, width=10) == "█" * 10

    def test_zero_maximum_raises(self):
        with pytest.raises(ConfigurationError):
            render_bar(1, 0)


class TestGroupedBarChart:
    def test_renders_groups_and_series(self):
        chart = GroupedBarChart("Fig X", value_format="{:.1f}%")
        chart.add("2 sizes", "g=1", 4.0)
        chart.add("2 sizes", "g=2", 2.0)
        chart.add("3 sizes", "g=1", 6.0)
        rendered = chart.render()
        assert rendered.startswith("Fig X")
        assert "2 sizes" in rendered
        assert "3 sizes" in rendered
        assert "4.0%" in rendered
        assert rendered.index("2 sizes") < rendered.index("3 sizes")

    def test_empty_chart(self):
        assert "(no data)" in GroupedBarChart("empty").render()

    def test_shared_scale(self):
        chart = GroupedBarChart("t")
        chart.add("g", "big", 100.0)
        chart.add("g", "small", 50.0)
        lines = chart.render().splitlines()
        big_bar = lines[2].count("█")
        small_bar = lines[3].count("█")
        assert big_bar == 2 * small_bar

    def test_explicit_maximum(self):
        chart = GroupedBarChart("t", maximum=100.0)
        chart.add("g", "s", 50.0)
        line = chart.render().splitlines()[2]
        assert line.count("█") == pytest.approx(20, abs=1)
