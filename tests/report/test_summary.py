"""Tests for the experiment dossier renderer."""

from repro.core.experiments import PerformanceResult, PhaseResult
from repro.fault.injector import FaultSummary
from repro.report.summary import (
    render_fault_summary,
    render_metrics_snapshot,
    render_performance_summary,
    render_policy_comparison,
)


def make_result(policy="extent[3 ranges, first-fit]", workload="TP",
                app=0.17, seq=0.94):
    return PerformanceResult(
        policy_label=policy,
        workload=workload,
        application=PhaseResult(app, False, 90_000.0, 1.5e8),
        sequential=PhaseResult(seq, True, 60_000.0, 5.9e8),
        final_utilization=0.93,
        operation_counts={"read": 900, "write": 450, "extend": 70},
        operation_latency_ms={"read": 31.2, "write": 28.9, "extend": 12.0},
        disk_full_events=0,
        governor_conversions=12,
    )


class TestPerformanceSummary:
    def test_contains_all_sections(self):
        text = render_performance_summary(make_result())
        assert "extent[3 ranges, first-fit] / TP" in text
        assert "application" in text and "sequential" in text
        assert "17.0%" in text and "94.0%" in text
        assert "read" in text and "31.2" in text
        assert "final utilization : 93.0%" in text
        assert "governor converts : 12" in text

    def test_missing_latency_renders_zero(self):
        result = make_result()
        result.operation_counts["truncate"] = 5
        text = render_performance_summary(result)
        assert "truncate" in text


def make_fault_summary(**overrides):
    values = dict(
        disk_failures=1,
        transient_errors=2,
        slowdowns=0,
        rebuilds_completed=1,
        healthy_ms=10_000.0,
        degraded_ms=5_000.0,
        healthy_bytes=1.0e8,
        degraded_bytes=2.5e7,
        rebuild_bytes=5.0e7,
    )
    values.update(overrides)
    return FaultSummary(**values)


class TestFaultSummaryRendering:
    def test_healthy_window_renders_percentage(self):
        text = render_fault_summary(make_fault_summary())
        assert "% of healthy" in text
        assert "n/a" not in text

    def test_zero_healthy_time_renders_na(self):
        text = render_fault_summary(
            make_fault_summary(healthy_ms=0.0, healthy_bytes=0.0)
        )
        assert "n/a (no healthy window)" in text

    def test_zero_healthy_bytes_renders_na(self):
        # Time passed while healthy but nothing moved: no baseline.
        text = render_fault_summary(make_fault_summary(healthy_bytes=0.0))
        assert "n/a (no healthy window)" in text


class TestDegradedPercentGuard:
    def test_none_when_never_healthy(self):
        summary = make_fault_summary(healthy_ms=0.0, healthy_bytes=0.0)
        assert summary.degraded_percent_of_healthy is None

    def test_none_when_healthy_window_moved_no_bytes(self):
        summary = make_fault_summary(healthy_bytes=0.0)
        assert summary.degraded_percent_of_healthy is None

    def test_percentage_when_baseline_exists(self):
        summary = make_fault_summary()
        # degraded 2.5e7/5e3 vs healthy 1e8/1e4 -> 50%.
        assert summary.degraded_percent_of_healthy == 50.0


class TestMetricsRendering:
    def metrics(self):
        return {
            "counters": {"disk.requests": 120, "alloc.requests": 40},
            "gauges": {"disk.queue_depth_peak.d0": 7.0},
            "totals": {"disk.busy_ms.d0": 4321.5},
            "histograms": {
                "disk.service_ms": {
                    "edges": [1.0, 10.0],
                    "counts": [5, 90, 25],
                    "count": 120,
                    "sum": 960.0,
                    "mean": 8.0,
                    "min": 0.4,
                    "max": 55.0,
                },
                "empty_dist": {
                    "edges": [1.0],
                    "counts": [0, 0],
                    "count": 0,
                    "sum": 0.0,
                    "mean": 0.0,
                    "min": None,
                    "max": None,
                },
            },
        }

    def test_scalars_and_histograms_tabulated(self):
        text = render_metrics_snapshot(self.metrics())
        assert "disk.requests" in text and "120" in text
        assert "disk.queue_depth_peak.d0" in text and "7" in text
        assert "4321.5" in text
        assert "disk.service_ms" in text and "8.00" in text

    def test_empty_histogram_renders_na(self):
        text = render_metrics_snapshot(self.metrics())
        assert "n/a" in text

    def test_metrics_section_joins_performance_summary(self):
        import dataclasses

        result = dataclasses.replace(make_result(), metrics=self.metrics())
        text = render_performance_summary(result)
        assert "Metrics" in text
        assert "Latency distributions" in text


class TestPolicyComparison:
    def test_groups_by_workload(self):
        results = [
            make_result(policy="buddy", workload="SC", seq=0.95),
            make_result(policy="fixed[16K]", workload="SC", seq=0.32),
            make_result(policy="buddy", workload="TS", seq=0.14),
        ]
        text = render_policy_comparison(results, title="t")
        assert text.index("SC") < text.index("TS")
        assert "95.0%" in text and "32.0%" in text
