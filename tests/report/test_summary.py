"""Tests for the experiment dossier renderer."""

from repro.core.experiments import PerformanceResult, PhaseResult
from repro.report.summary import (
    render_performance_summary,
    render_policy_comparison,
)


def make_result(policy="extent[3 ranges, first-fit]", workload="TP",
                app=0.17, seq=0.94):
    return PerformanceResult(
        policy_label=policy,
        workload=workload,
        application=PhaseResult(app, False, 90_000.0, 1.5e8),
        sequential=PhaseResult(seq, True, 60_000.0, 5.9e8),
        final_utilization=0.93,
        operation_counts={"read": 900, "write": 450, "extend": 70},
        operation_latency_ms={"read": 31.2, "write": 28.9, "extend": 12.0},
        disk_full_events=0,
        governor_conversions=12,
    )


class TestPerformanceSummary:
    def test_contains_all_sections(self):
        text = render_performance_summary(make_result())
        assert "extent[3 ranges, first-fit] / TP" in text
        assert "application" in text and "sequential" in text
        assert "17.0%" in text and "94.0%" in text
        assert "read" in text and "31.2" in text
        assert "final utilization : 93.0%" in text
        assert "governor converts : 12" in text

    def test_missing_latency_renders_zero(self):
        result = make_result()
        result.operation_counts["truncate"] = 5
        text = render_performance_summary(result)
        assert "truncate" in text


class TestPolicyComparison:
    def test_groups_by_workload(self):
        results = [
            make_result(policy="buddy", workload="SC", seq=0.95),
            make_result(policy="fixed[16K]", workload="SC", seq=0.32),
            make_result(policy="buddy", workload="TS", seq=0.14),
        ]
        text = render_policy_comparison(results, title="t")
        assert text.index("SC") < text.index("TS")
        assert "95.0%" in text and "32.0%" in text
