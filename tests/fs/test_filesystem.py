"""Unit tests for the file-system layer on a real simulated disk."""

import pytest

from repro.alloc.extent import ExtentAllocator, ExtentSizeConfig, FitPolicy
from repro.alloc.fixed import FixedBlockAllocator
from repro.disk.array import StripedArray
from repro.disk.geometry import TINY_DISK
from repro.errors import DiskFullError, FileSystemError
from repro.fs.filesystem import FileSystem
from repro.sim.engine import Simulator
from repro.sim.meters import ThroughputMeter
from repro.sim.rng import RandomStream
from repro.units import KIB


def make_fs(sim=None, allocator_factory=None):
    sim = sim or Simulator()
    array = StripedArray(sim, TINY_DISK, 4, 24 * KIB, KIB)
    if allocator_factory is None:
        allocator = ExtentAllocator(
            array.capacity_units,
            ExtentSizeConfig(range_means_units=(16,)),
            FitPolicy.FIRST_FIT,
            RandomStream(1),
        )
    else:
        allocator = allocator_factory(array.capacity_units)
    return sim, FileSystem(sim, array, allocator)


def run(sim, generator):
    holder = {}

    def wrapper():
        holder["result"] = yield from generator

    sim.process(wrapper())
    sim.run()
    return holder["result"]


class TestLifecycle:
    def test_create_and_allocate_to(self):
        sim, fs = make_fs()
        f = fs.create(size_hint_bytes=32 * KIB, tag="t")
        fs.allocate_to(f, 32 * KIB)
        assert f.length_bytes == 32 * KIB
        assert f.allocated_units >= 32

    def test_allocate_to_never_shrinks_length(self):
        sim, fs = make_fs()
        f = fs.create()
        fs.allocate_to(f, 10 * KIB)
        fs.allocate_to(f, 5 * KIB)
        assert f.length_bytes == 10 * KIB

    def test_delete_frees_everything(self):
        sim, fs = make_fs()
        f = fs.create()
        fs.allocate_to(f, 64 * KIB)
        allocated = fs.allocator.allocated_units
        assert allocated > 0
        fs.delete(f)
        assert fs.allocator.allocated_units == 0
        with pytest.raises(FileSystemError):
            fs.truncate(f, 1)

    def test_truncate_shortens_and_frees(self):
        sim, fs = make_fs()
        f = fs.create()
        fs.allocate_to(f, 64 * KIB)
        removed = fs.truncate(f, 16 * KIB)
        assert removed == 16 * KIB
        assert f.length_bytes == 48 * KIB

    def test_truncate_clamps_to_length(self):
        sim, fs = make_fs()
        f = fs.create()
        fs.allocate_to(f, 8 * KIB)
        assert fs.truncate(f, 100 * KIB) == 8 * KIB
        assert f.length_bytes == 0

    def test_live_files_listing(self):
        sim, fs = make_fs()
        a, b = fs.create(), fs.create()
        assert [x.fs_id for x in fs.live_files()] == [a.fs_id, b.fs_id]


class TestIo:
    def test_read_takes_simulated_time(self):
        sim, fs = make_fs()
        f = fs.create()
        fs.allocate_to(f, 64 * KIB)
        assert sim.now == 0.0
        n = run(sim, fs.read(f, 0, 8 * KIB))
        assert n == 8 * KIB
        assert sim.now > 0.0
        assert fs.bytes_read == 8 * KIB

    def test_read_clamps_to_eof(self):
        sim, fs = make_fs()
        f = fs.create()
        fs.allocate_to(f, 4 * KIB)
        n = run(sim, fs.read(f, 2 * KIB, 100 * KIB))
        assert n == 2 * KIB

    def test_read_past_eof_returns_zero_instantly(self):
        sim, fs = make_fs()
        f = fs.create()
        fs.allocate_to(f, 4 * KIB)
        n = run(sim, fs.read(f, 8 * KIB, KIB))
        assert n == 0
        assert sim.now == 0.0

    def test_write_within_file(self):
        sim, fs = make_fs()
        f = fs.create()
        fs.allocate_to(f, 16 * KIB)
        n = run(sim, fs.write(f, 0, 4 * KIB))
        assert n == 4 * KIB
        assert fs.bytes_written == 4 * KIB

    def test_write_past_eof_grows_file(self):
        sim, fs = make_fs()
        f = fs.create()
        fs.allocate_to(f, 8 * KIB)
        run(sim, fs.write(f, 6 * KIB, 6 * KIB))
        assert f.length_bytes == 12 * KIB

    def test_write_far_past_eof_appends_without_hole(self):
        sim, fs = make_fs()
        f = fs.create()
        fs.allocate_to(f, 4 * KIB)
        run(sim, fs.write(f, 100 * KIB, 4 * KIB))
        assert f.length_bytes == 8 * KIB  # offset clamped to EOF

    def test_extend_appends(self):
        sim, fs = make_fs()
        f = fs.create()
        fs.allocate_to(f, 4 * KIB)
        n = run(sim, fs.extend(f, 8 * KIB))
        assert n == 8 * KIB
        assert f.length_bytes == 12 * KIB

    def test_read_whole_and_write_whole(self):
        sim, fs = make_fs()
        f = fs.create()
        fs.allocate_to(f, 40 * KIB)
        assert run(sim, fs.read_whole(f)) == 40 * KIB
        assert run(sim, fs.write_whole(f)) == 40 * KIB

    def test_write_whole_empty_file_is_noop(self):
        sim, fs = make_fs()
        f = fs.create()
        assert run(sim, fs.write_whole(f)) == 0

    def test_bad_arguments_raise(self):
        sim, fs = make_fs()
        f = fs.create()
        fs.allocate_to(f, 4 * KIB)
        with pytest.raises(FileSystemError):
            run(sim, fs.read(f, -1, 10))
        with pytest.raises(FileSystemError):
            run(sim, fs.write(f, 0, 0))
        with pytest.raises(FileSystemError):
            run(sim, fs.extend(f, -5))

    def test_meter_records_transfers(self):
        sim, fs = make_fs()
        meter = ThroughputMeter(1000.0, interval_ms=10.0)
        fs.meter = meter
        f = fs.create()
        fs.allocate_to(f, 8 * KIB)
        run(sim, fs.read(f, 0, 8 * KIB))
        assert meter.total_bytes == 8 * KIB

    def test_disk_full_propagates_from_write(self):
        sim, fs = make_fs(
            allocator_factory=lambda units: FixedBlockAllocator(units, 4)
        )
        f = fs.create()
        with pytest.raises(DiskFullError):
            fs.allocate_to(f, 10**12)


class TestFragmentationView:
    def test_fragmentation_uses_lengths(self):
        sim, fs = make_fs(
            allocator_factory=lambda units: FixedBlockAllocator(units, 4)
        )
        f = fs.create()
        fs.allocate_to(f, KIB)  # 1K in a 4K block
        report = fs.fragmentation()
        assert report.internal_fraction == pytest.approx(3 / 8)

    def test_utilization_tracks_allocator(self):
        sim, fs = make_fs()
        assert fs.utilization == 0.0
        f = fs.create()
        fs.allocate_to(f, 100 * KIB)
        assert fs.utilization > 0.0


class TestWriteBehind:
    def make_wb_fs(self):
        sim = Simulator()
        array = StripedArray(sim, TINY_DISK, 4, 24 * KIB, KIB)
        allocator = ExtentAllocator(
            array.capacity_units,
            ExtentSizeConfig(range_means_units=(16,)),
            FitPolicy.FIRST_FIT,
            RandomStream(1),
        )
        return sim, FileSystem(sim, array, allocator, write_behind=True)

    def test_write_returns_instantly(self):
        sim, fs = self.make_wb_fs()
        f = fs.create()
        fs.allocate_to(f, 64 * KIB)
        n = run(sim, fs.write(f, 0, 32 * KIB))
        # The write "completed" for the caller without simulated delay...
        assert n == 32 * KIB
        # ...but the disks still have the work queued/running.
        sim.run()
        assert fs.disk.total_bytes_moved >= 32 * KIB

    def test_reads_still_wait(self):
        sim, fs = self.make_wb_fs()
        f = fs.create()
        fs.allocate_to(f, 16 * KIB)
        run(sim, fs.read(f, 0, 8 * KIB))
        assert sim.now > 0.0

    def test_write_behind_overlaps_thinking(self):
        """A burst of writes costs (almost) nothing in caller time but
        serializes on the drives: classic write-behind overlap."""
        sim, fs = self.make_wb_fs()
        f = fs.create()
        fs.allocate_to(f, 256 * KIB)

        def burst():
            for offset in range(0, 256 * KIB, 32 * KIB):
                yield from fs.write(f, offset, 32 * KIB)
            return sim.now

        holder = {}

        def wrapper():
            holder["caller_done"] = yield from burst()

        sim.process(wrapper())
        sim.run()
        assert holder["caller_done"] < 1.0  # caller never blocked
        assert sim.now > 10.0  # the drives worked long after
