"""Unit tests for the logical-to-physical extent map."""

import pytest

from repro.alloc.base import AllocFile, Extent
from repro.errors import FileSystemError
from repro.fs.extmap import ExtentMap


def make_handle(extents):
    handle = AllocFile(file_id=1)
    handle.extents = [Extent(s, l) for s, l in extents]
    return handle


class TestLocate:
    def test_locate_within_extents(self):
        handle = make_handle([(100, 10), (500, 20)])
        emap = ExtentMap(handle)
        assert emap.locate(0) == (0, 0)
        assert emap.locate(9) == (0, 9)
        assert emap.locate(10) == (1, 0)
        assert emap.locate(29) == (1, 19)

    def test_locate_out_of_range_raises(self):
        emap = ExtentMap(make_handle([(0, 10)]))
        with pytest.raises(FileSystemError):
            emap.locate(10)
        with pytest.raises(FileSystemError):
            emap.locate(-1)

    def test_total_units(self):
        assert ExtentMap(make_handle([(0, 3), (9, 7)])).total_units == 10
        assert ExtentMap(make_handle([])).total_units == 0


class TestRuns:
    def test_single_extent_run(self):
        emap = ExtentMap(make_handle([(100, 50)]))
        assert emap.runs(5, 10) == [(105, 10)]

    def test_adjacent_extents_merge(self):
        emap = ExtentMap(make_handle([(100, 10), (110, 10), (120, 10)]))
        assert emap.runs(0, 30) == [(100, 30)]

    def test_discontiguous_extents_split(self):
        emap = ExtentMap(make_handle([(100, 10), (500, 10)]))
        assert emap.runs(5, 10) == [(105, 5), (500, 5)]

    def test_range_past_end_raises(self):
        emap = ExtentMap(make_handle([(0, 10)]))
        with pytest.raises(FileSystemError):
            emap.runs(5, 6)

    def test_non_positive_range_raises(self):
        emap = ExtentMap(make_handle([(0, 10)]))
        with pytest.raises(FileSystemError):
            emap.runs(0, 0)


class TestSync:
    def test_sync_append(self):
        handle = make_handle([(0, 10)])
        emap = ExtentMap(handle)
        added = [Extent(50, 5)]
        handle.extents.extend(added)
        emap.sync_append(added)
        assert emap.total_units == 15
        assert emap.locate(12) == (1, 2)

    def test_sync_append_mismatch_raises(self):
        handle = make_handle([(0, 10)])
        emap = ExtentMap(handle)
        with pytest.raises(FileSystemError):
            emap.sync_append([Extent(50, 5)])  # handle not actually grown

    def test_sync_truncate(self):
        handle = make_handle([(0, 10), (50, 5)])
        emap = ExtentMap(handle)
        handle.extents.pop()
        emap.sync_truncate()
        assert emap.total_units == 10
