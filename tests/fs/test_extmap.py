"""Unit tests for the logical-to-physical extent map."""

import pytest

from repro.alloc.base import AllocFile, Extent
from repro.errors import FileSystemError
from repro.fs.extmap import ExtentMap


def make_handle(extents):
    handle = AllocFile(file_id=1)
    handle.extents = [Extent(s, l) for s, l in extents]
    return handle


class TestLocate:
    def test_locate_within_extents(self):
        handle = make_handle([(100, 10), (500, 20)])
        emap = ExtentMap(handle)
        assert emap.locate(0) == (0, 0)
        assert emap.locate(9) == (0, 9)
        assert emap.locate(10) == (1, 0)
        assert emap.locate(29) == (1, 19)

    def test_locate_out_of_range_raises(self):
        emap = ExtentMap(make_handle([(0, 10)]))
        with pytest.raises(FileSystemError):
            emap.locate(10)
        with pytest.raises(FileSystemError):
            emap.locate(-1)

    def test_total_units(self):
        assert ExtentMap(make_handle([(0, 3), (9, 7)])).total_units == 10
        assert ExtentMap(make_handle([])).total_units == 0


class TestRuns:
    def test_single_extent_run(self):
        emap = ExtentMap(make_handle([(100, 50)]))
        assert emap.runs(5, 10) == [(105, 10)]

    def test_adjacent_extents_merge(self):
        emap = ExtentMap(make_handle([(100, 10), (110, 10), (120, 10)]))
        assert emap.runs(0, 30) == [(100, 30)]

    def test_discontiguous_extents_split(self):
        emap = ExtentMap(make_handle([(100, 10), (500, 10)]))
        assert emap.runs(5, 10) == [(105, 5), (500, 5)]

    def test_range_past_end_raises(self):
        emap = ExtentMap(make_handle([(0, 10)]))
        with pytest.raises(FileSystemError):
            emap.runs(5, 6)

    def test_non_positive_range_raises(self):
        emap = ExtentMap(make_handle([(0, 10)]))
        with pytest.raises(FileSystemError):
            emap.runs(0, 0)

    def test_range_ending_exactly_on_extent_boundary(self):
        emap = ExtentMap(make_handle([(100, 10), (500, 10)]))
        # Ends on the first extent's last unit: no spill into the second.
        assert emap.runs(0, 10) == [(100, 10)]
        assert emap.runs(4, 6) == [(104, 6)]
        # Ends exactly at end-of-file, starting mid-extent.
        assert emap.runs(15, 5) == [(505, 5)]
        # Covers everything, ending exactly at end-of-file.
        assert emap.runs(0, 20) == [(100, 10), (500, 10)]

    def test_whole_file_merges_to_one_run(self):
        emap = ExtentMap(make_handle([(64, 8), (72, 8), (80, 16), (96, 4)]))
        assert emap.runs(0, 36) == [(64, 36)]

    def test_single_unit_reads(self):
        emap = ExtentMap(make_handle([(100, 2), (500, 2)]))
        assert emap.runs(0, 1) == [(100, 1)]
        assert emap.runs(1, 1) == [(101, 1)]
        # First unit past the extent boundary.
        assert emap.runs(2, 1) == [(500, 1)]
        assert emap.runs(3, 1) == [(501, 1)]

    def test_single_unit_reads_after_sequential_advance(self):
        # Walk forward one unit at a time so the cursor fast path (hit,
        # successor advance, bisect fallback) all get exercised, then jump
        # backwards to force the bisect.
        emap = ExtentMap(make_handle([(10, 3), (20, 3), (40, 3)]))
        expected = [10, 11, 12, 20, 21, 22, 40, 41, 42]
        for offset, unit in enumerate(expected):
            assert emap.runs(offset, 1) == [(unit, 1)]
        assert emap.runs(0, 1) == [(10, 1)]
        assert emap.runs(8, 1) == [(42, 1)]

    def test_negative_offset_raises(self):
        emap = ExtentMap(make_handle([(0, 10)]))
        with pytest.raises(FileSystemError):
            emap.runs(-1, 2)

    def test_empty_map_raises(self):
        emap = ExtentMap(make_handle([]))
        with pytest.raises(FileSystemError):
            emap.runs(0, 1)
        with pytest.raises(FileSystemError):
            emap.locate(0)


class TestSync:
    def test_sync_append(self):
        handle = make_handle([(0, 10)])
        emap = ExtentMap(handle)
        added = [Extent(50, 5)]
        handle.extents.extend(added)
        emap.sync_append(added)
        assert emap.total_units == 15
        assert emap.locate(12) == (1, 2)

    def test_sync_append_mismatch_raises(self):
        handle = make_handle([(0, 10)])
        emap = ExtentMap(handle)
        with pytest.raises(FileSystemError):
            emap.sync_append([Extent(50, 5)])  # handle not actually grown

    def test_sync_truncate(self):
        handle = make_handle([(0, 10), (50, 5)])
        emap = ExtentMap(handle)
        handle.extents.pop()
        emap.sync_truncate()
        assert emap.total_units == 10
