"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, make_policy
from repro.core.configs import (
    BuddyPolicy,
    ExtentPolicy,
    RestrictedPolicy,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_alloc_defaults(self):
        args = build_parser().parse_args(["alloc"])
        assert args.policy == "restricted"
        assert args.workload == "SC"
        assert args.scale == 0.1

    def test_perf_cap(self):
        args = build_parser().parse_args(["perf", "--cap-ms", "1000"])
        assert args.cap_ms == 1000.0

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["alloc", "--policy", "zfs"])

    def test_runner_flags(self):
        args = build_parser().parse_args(
            ["compare", "--jobs", "4", "--cache-dir", "/tmp/x", "--no-cache"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/x"
        assert args.no_cache

    def test_supervision_flags(self):
        args = build_parser().parse_args(
            [
                "compare", "--timeout", "120", "--retries", "2",
                "--checkpoint", "/tmp/ckpt", "--resume",
            ]
        )
        assert args.timeout == 120.0
        assert args.retries == 2
        assert args.checkpoint == "/tmp/ckpt"
        assert args.resume

    def test_supervision_defaults_off(self):
        args = build_parser().parse_args(["perf"])
        assert args.timeout is None
        assert args.retries == 0
        assert args.checkpoint is None
        assert not args.resume

    def test_perf_fault_flags(self):
        args = build_parser().parse_args(
            ["perf", "--organization", "raid5", "--inject", "fail:drive=0,at=100"]
        )
        assert args.organization == "raid5"
        assert args.inject == "fail:drive=0,at=100"

    def test_perf_rejects_unknown_organization(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf", "--organization", "raid7"])

    def test_faults_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.organization == "raid5"
        assert "fail:" in args.inject


class TestMakePolicy:
    def args(self, **overrides):
        defaults = dict(
            grow_factor=1, unclustered=False, extent_ranges=3, fit="first"
        )
        defaults.update(overrides)
        return type("Args", (), defaults)

    def test_buddy(self):
        assert isinstance(make_policy("buddy", "SC", self.args()), BuddyPolicy)

    def test_restricted_options(self):
        policy = make_policy(
            "restricted", "SC", self.args(grow_factor=2, unclustered=True)
        )
        assert isinstance(policy, RestrictedPolicy)
        assert policy.grow_factor == 2
        assert not policy.clustered

    def test_extent_workload_ranges(self):
        policy = make_policy("extent", "TS", self.args(extent_ranges=2))
        assert isinstance(policy, ExtentPolicy)
        assert policy.range_means == ("1K", "8K")

    def test_fixed_workload_block_size(self):
        assert make_policy("fixed", "TS", self.args()).block_size == "4K"
        assert make_policy("fixed", "TP", self.args()).block_size == "16K"


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Wren IV" in out
        assert "2.83" in out

    def test_alloc_runs(self, capsys):
        code = main(
            ["alloc", "--policy", "extent", "--workload", "SC", "--scale", "0.03"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Internal fragmentation" in out

    def test_perf_runs(self, capsys):
        code = main(
            [
                "perf",
                "--policy",
                "extent",
                "--workload",
                "SC",
                "--scale",
                "0.03",
                "--cap-ms",
                "15000",
                "--no-cache",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sequential" in out

    def test_profile_runs(self, capsys):
        code = main(
            [
                "profile",
                "--policy",
                "extent",
                "--workload",
                "SC",
                "--scale",
                "0.03",
                "--cap-ms",
                "8000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "events/sec" in out
        assert "per-subsystem event/time breakdown" in out
        assert "repro.disk.queue" in out
        assert "cProfile" in out

    def test_profile_sort_and_limit_flags(self, capsys):
        code = main(
            [
                "profile",
                "--policy",
                "extent",
                "--workload",
                "SC",
                "--scale",
                "0.03",
                "--cap-ms",
                "4000",
                "--sort",
                "cumtime",
                "--limit",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top 5 functions by cumulative time" in out
        assert "Ordered by: cumulative time" in out

    def test_profile_rejects_unknown_sort(self, capsys):
        with pytest.raises(SystemExit):
            main(["profile", "--sort", "ncalls"])

    def test_faults_runs_and_reports_degraded_mode(self, capsys):
        code = main(
            [
                "faults", "--scale", "0.02", "--cap-ms", "20000",
                "--inject", "fail:drive=1,at=8000,repair=15000",
                "--no-cache",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault plan:" in out
        assert "Degraded" in out
        assert "disk failures" in out

    def test_faults_rejects_empty_plan(self, capsys):
        code = main(["faults", "--inject", "", "--no-cache"])
        assert code == 2
        assert "fault plan is empty" in capsys.readouterr().err

    def test_perf_with_injection_reports_faults(self, capsys):
        code = main(
            [
                "perf", "--scale", "0.02", "--cap-ms", "15000",
                "--organization", "mirrored",
                "--inject", "slow:drive=0,at=0,factor=2",
                "--no-cache",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slowdown windows" in out

    def test_checkpointed_sweep_resumes(self, capsys, tmp_path):
        argv = [
            "alloc", "--policy", "extent", "--workload", "SC",
            "--scale", "0.03", "--no-cache",
            "--checkpoint", str(tmp_path / "ckpt"),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert "0 executed, 1 cached" in captured.err
        assert "Internal fragmentation" in captured.out

    def test_alloc_warm_cache_executes_nothing(self, capsys, tmp_path):
        argv = [
            "alloc", "--policy", "extent", "--workload", "SC",
            "--scale", "0.03", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        assert "1 executed, 0 cached" in capsys.readouterr().err
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "0 executed, 1 cached" in captured.err
        assert "Internal fragmentation" in captured.out


class TestBisectCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bisect"])
        assert args.vary == "engine"
        assert args.seed_b is None
        assert args.cadence == 10_000
        assert args.fine_limit == 1_024

    def test_perf_audit_flag(self):
        assert build_parser().parse_args(["perf"]).audit is False
        assert build_parser().parse_args(["perf", "--audit"]).audit is True

    def test_engine_variants_are_identical(self, capsys):
        code = main(
            [
                "bisect", "--vary", "engine", "--scale", "0.005",
                "--cap-ms", "300", "--cadence", "2000",
            ]
        )
        assert code == 0
        assert "no divergence" in capsys.readouterr().out

    def test_seed_variants_diverge(self, capsys):
        code = main(
            [
                "bisect", "--vary", "seed", "--scale", "0.005",
                "--cap-ms", "300", "--cadence", "200", "--fine-limit", "64",
            ]
        )
        assert code == 3
        out = capsys.readouterr().out
        assert "first diverging event" in out


class TestExitCodes:
    """The docstring contract: library errors → stderr + exit 2."""

    def test_configuration_error_exits_2(self, capsys):
        # grow factor 0 passes argparse but fails policy validation
        # inside the experiment; main() must catch the ReproError.
        code = main(
            [
                "alloc", "--policy", "restricted", "--grow-factor", "0",
                "--scale", "0.03", "--no-cache",
            ]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "repro: error:" in captured.err
        assert "grow factor" in captured.err

    def test_stderr_not_stdout_carries_the_error(self, capsys):
        main(
            [
                "alloc", "--policy", "restricted", "--grow-factor", "0",
                "--scale", "0.03", "--no-cache",
            ]
        )
        assert "error" not in capsys.readouterr().out

    def test_interrupted_sweep_exits_130(self, capsys, monkeypatch):
        from repro.core.runner import ExperimentRunner
        from repro.errors import SweepInterrupted

        def interrupted(self, tasks):
            raise SweepInterrupted("/tmp/ckpt", 1, 3)

        monkeypatch.setattr(ExperimentRunner, "run", interrupted)
        code = main(["alloc", "--scale", "0.03", "--no-cache"])
        assert code == 130
        err = capsys.readouterr().err
        assert "1/3 points done" in err
        assert "partial results flushed to /tmp/ckpt" in err

    def test_bare_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        from repro.core.runner import ExperimentRunner

        def interrupted(self, tasks):
            raise KeyboardInterrupt

        monkeypatch.setattr(ExperimentRunner, "run", interrupted)
        code = main(["alloc", "--scale", "0.03", "--no-cache"])
        assert code == 130
        assert "repro: interrupted" in capsys.readouterr().err


class TestTraceCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.format == "chrome"
        assert args.cap_ms == 8_000.0
        assert args.organization == "striped"
        assert not args.metrics and not args.json

    def test_live_flag_available_on_runner_commands(self):
        assert build_parser().parse_args(["perf", "--live"]).live
        assert build_parser().parse_args(["trace"]).live is False

    def test_chrome_document_on_stdout(self, capsys):
        import json

        code = main(
            ["trace", "--scale", "0.02", "--cap-ms", "1500", "--no-cache"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["traceEvents"]
        assert document["otherData"]["span_count"] > 0

    def test_jsonl_format(self, capsys):
        import json

        code = main(
            [
                "trace", "--scale", "0.02", "--cap-ms", "1500",
                "--no-cache", "--format", "jsonl",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        assert json.loads(lines[0])["type"] == "meta"
        assert {json.loads(line)["type"] for line in lines[1:]} == {"span"}

    def test_trace_out_writes_file_and_reports_metrics(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace.json"
        code = main(
            [
                "trace", "--scale", "0.02", "--cap-ms", "1500",
                "--no-cache", "--trace-out", str(out), "--metrics",
            ]
        )
        assert code == 0
        assert json.loads(out.read_text())["traceEvents"]
        captured = capsys.readouterr()
        assert "spans" in captured.err
        assert "Metrics" in captured.out  # snapshot table, not the trace

    def test_json_summary(self, capsys):
        import json

        code = main(
            [
                "trace", "--scale", "0.02", "--cap-ms", "1500",
                "--no-cache", "--metrics", "--json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["span_count"] > 0
        assert "disk.service_ms" in document["metrics"]["histograms"]

    def test_traces_are_cached_separately_from_plain_runs(self, tmp_path):
        argv = [
            "trace", "--scale", "0.02", "--cap-ms", "1500",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cached = list(tmp_path.glob("*.pkl"))
        assert len(cached) == 1
        assert main(argv) == 0  # second run replays the cache
        assert list(tmp_path.glob("*.pkl")) == cached


class TestProfileJson:
    def test_profile_json_document(self, capsys):
        import json

        code = main(
            [
                "profile", "--scale", "0.03", "--cap-ms", "4000", "--json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["events_executed"] > 0
        assert "repro.disk.queue" in document["subsystems"]
        assert "cProfile" not in capsys.readouterr().out
