"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, make_policy
from repro.core.configs import (
    BuddyPolicy,
    ExtentPolicy,
    RestrictedPolicy,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_alloc_defaults(self):
        args = build_parser().parse_args(["alloc"])
        assert args.policy == "restricted"
        assert args.workload == "SC"
        assert args.scale == 0.1

    def test_perf_cap(self):
        args = build_parser().parse_args(["perf", "--cap-ms", "1000"])
        assert args.cap_ms == 1000.0

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["alloc", "--policy", "zfs"])

    def test_runner_flags(self):
        args = build_parser().parse_args(
            ["compare", "--jobs", "4", "--cache-dir", "/tmp/x", "--no-cache"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/x"
        assert args.no_cache


class TestMakePolicy:
    def args(self, **overrides):
        defaults = dict(
            grow_factor=1, unclustered=False, extent_ranges=3, fit="first"
        )
        defaults.update(overrides)
        return type("Args", (), defaults)

    def test_buddy(self):
        assert isinstance(make_policy("buddy", "SC", self.args()), BuddyPolicy)

    def test_restricted_options(self):
        policy = make_policy(
            "restricted", "SC", self.args(grow_factor=2, unclustered=True)
        )
        assert isinstance(policy, RestrictedPolicy)
        assert policy.grow_factor == 2
        assert not policy.clustered

    def test_extent_workload_ranges(self):
        policy = make_policy("extent", "TS", self.args(extent_ranges=2))
        assert isinstance(policy, ExtentPolicy)
        assert policy.range_means == ("1K", "8K")

    def test_fixed_workload_block_size(self):
        assert make_policy("fixed", "TS", self.args()).block_size == "4K"
        assert make_policy("fixed", "TP", self.args()).block_size == "16K"


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Wren IV" in out
        assert "2.83" in out

    def test_alloc_runs(self, capsys):
        code = main(
            ["alloc", "--policy", "extent", "--workload", "SC", "--scale", "0.03"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Internal fragmentation" in out

    def test_perf_runs(self, capsys):
        code = main(
            [
                "perf",
                "--policy",
                "extent",
                "--workload",
                "SC",
                "--scale",
                "0.03",
                "--cap-ms",
                "15000",
                "--no-cache",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sequential" in out

    def test_profile_runs(self, capsys):
        code = main(
            [
                "profile",
                "--policy",
                "extent",
                "--workload",
                "SC",
                "--scale",
                "0.03",
                "--cap-ms",
                "8000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "events/sec" in out
        assert "per-subsystem event/time breakdown" in out
        assert "repro.disk.queue" in out
        assert "cProfile" in out

    def test_alloc_warm_cache_executes_nothing(self, capsys, tmp_path):
        argv = [
            "alloc", "--policy", "extent", "--workload", "SC",
            "--scale", "0.03", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        assert "1 executed, 0 cached" in capsys.readouterr().err
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "0 executed, 1 cached" in captured.err
        assert "Internal fragmentation" in captured.out


class TestExitCodes:
    """The docstring contract: library errors → stderr + exit 2."""

    def test_configuration_error_exits_2(self, capsys):
        # grow factor 0 passes argparse but fails policy validation
        # inside the experiment; main() must catch the ReproError.
        code = main(
            [
                "alloc", "--policy", "restricted", "--grow-factor", "0",
                "--scale", "0.03", "--no-cache",
            ]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "repro: error:" in captured.err
        assert "grow factor" in captured.err

    def test_stderr_not_stdout_carries_the_error(self, capsys):
        main(
            [
                "alloc", "--policy", "restricted", "--grow-factor", "0",
                "--scale", "0.03", "--no-cache",
            ]
        )
        assert "error" not in capsys.readouterr().out
