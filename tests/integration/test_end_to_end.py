"""End-to-end integration tests: whole experiments, paper-shape assertions.

These run at small scale (a few percent of the paper's disk) but assert
the *relationships* the paper reports, which is what reproduction means
here: who wins, in which direction, on which workload.
"""

import pytest

from repro.core.comparison import selected_policies
from repro.core.configs import (
    BuddyPolicy,
    ExperimentConfig,
    ExtentPolicy,
    RestrictedPolicy,
    SystemConfig,
)
from repro.core.experiments import (
    run_allocation_experiment,
    run_performance_experiment,
)

SMALL = SystemConfig(scale=0.04)
CAPS = dict(app_cap_ms=50_000, seq_cap_ms=50_000)


@pytest.fixture(scope="module")
def sc_results():
    """Run the four selected policies on SC once, reuse across asserts."""
    results = {}
    for policy in selected_policies("SC"):
        config = ExperimentConfig(policy=policy, workload="SC", system=SMALL, seed=9)
        results[policy.label] = run_performance_experiment(config, **CAPS)
    return results


class TestFigure6Shapes:
    def test_multiblock_policies_beat_fixed_sequentially(self, sc_results):
        fixed = sc_results["fixed[16K]"].sequential.utilization
        for label, result in sc_results.items():
            if label.startswith("fixed"):
                continue
            assert result.sequential.utilization > fixed, label

    def test_sc_sequential_near_max_for_multiblock(self, sc_results):
        for label, result in sc_results.items():
            if label.startswith("fixed"):
                continue
            assert result.sequential.utilization > 0.6, label

    def test_application_below_sequential_on_sc(self, sc_results):
        for label, result in sc_results.items():
            assert (
                result.application.utilization <= result.sequential.utilization + 0.05
            ), label


class TestTable3Shapes:
    def test_buddy_internal_fragmentation_is_severe_on_sc(self):
        result = run_allocation_experiment(
            ExperimentConfig(policy=BuddyPolicy(), workload="SC", system=SMALL)
        )
        assert result.fragmentation.internal_fraction > 0.20

    def test_restricted_external_fragmentation_is_small(self):
        result = run_allocation_experiment(
            ExperimentConfig(policy=RestrictedPolicy(), workload="TP", system=SMALL)
        )
        assert result.fragmentation.external_fraction < 0.10


class TestGrowFactorShape:
    def test_grow_two_reduces_ts_internal_fragmentation(self):
        """Figure 1f: grow factor 2 cuts TS internal frag vs grow factor 1."""
        outcomes = {}
        for grow in (1, 2):
            policy = RestrictedPolicy(
                block_sizes=("1K", "8K", "64K"), grow_factor=grow
            )
            config = ExperimentConfig(
                policy=policy, workload="TS", system=SMALL, seed=13
            )
            outcomes[grow] = run_allocation_experiment(
                config
            ).fragmentation.internal_fraction
        assert outcomes[2] < outcomes[1]


class TestDeterminism:
    def test_full_performance_run_is_reproducible(self):
        config = ExperimentConfig(
            policy=ExtentPolicy(), workload="SC", system=SMALL, seed=21
        )
        first = run_performance_experiment(config, app_cap_ms=30_000, seq_cap_ms=20_000)
        second = run_performance_experiment(config, app_cap_ms=30_000, seq_cap_ms=20_000)
        assert first.application.utilization == second.application.utilization
        assert first.sequential.utilization == second.sequential.utilization
        assert first.operation_counts == second.operation_counts

    def test_different_seeds_differ(self):
        results = []
        for seed in (1, 2):
            config = ExperimentConfig(
                policy=ExtentPolicy(), workload="SC", system=SMALL, seed=seed
            )
            results.append(
                run_performance_experiment(
                    config, app_cap_ms=20_000, seq_cap_ms=10_000
                ).operation_counts
            )
        assert results[0] != results[1]


class TestInvariantsUnderFullWorkload:
    def test_no_overlap_after_performance_run(self):
        """Re-run the core of an experiment and check allocator health."""
        from repro.fs.filesystem import FileSystem
        from repro.sim.engine import Simulator
        from repro.sim.rng import RandomStream
        from repro.workload.driver import WorkloadDriver
        from repro.workload.profiles import supercomputer

        sim = Simulator()
        array = SMALL.build_array(sim)
        allocator = RestrictedPolicy().build(
            array.capacity_units, SMALL.disk_unit_bytes, RandomStream(5)
        )
        fs = FileSystem(sim, array, allocator)
        driver = WorkloadDriver(sim, fs, supercomputer(scale=SMALL.scale), seed=5)
        driver.populate()
        driver.start_users()
        sim.run(until=30_000)
        allocator.check_no_overlap()
        allocator.check_free_space()
        # Transient allocation failures are logged-and-rescheduled, not
        # fatal; the system must still be heavily utilized and healthy.
        assert fs.utilization > 0.5
        assert driver.disk_full_events < 100
