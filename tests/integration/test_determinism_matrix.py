"""Determinism matrix: every policy × workload replays exactly per seed.

Reproducibility is a deliverable of a simulation study: the same seed
must give bit-identical fragmentation AND throughput numbers for every
(policy, workload) combination, and different seeds must actually change
the stochastic stream.
"""

import pytest

from repro.core.configs import (
    BuddyPolicy,
    ExperimentConfig,
    ExtentPolicy,
    FixedPolicy,
    RestrictedPolicy,
    SystemConfig,
)
from repro.core.experiments import (
    run_allocation_experiment,
    run_performance_experiment,
)

TINY = SystemConfig(scale=0.03)

POLICIES = [
    BuddyPolicy(),
    RestrictedPolicy(block_sizes=("1K", "8K", "64K")),
    ExtentPolicy(range_means=("64K", "1M")),
    FixedPolicy("4K"),
]


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.label)
@pytest.mark.parametrize("workload", ["SC", "TS"])
def test_allocation_replay(policy, workload):
    config = ExperimentConfig(
        policy=policy, workload=workload, system=TINY, seed=99
    )
    first = run_allocation_experiment(config, max_operations=300_000)
    second = run_allocation_experiment(config, max_operations=300_000)
    assert first.fragmentation == second.fragmentation
    assert first.operations == second.operations
    assert first.average_extents_per_file == second.average_extents_per_file


@pytest.mark.parametrize("policy", POLICIES[:2], ids=lambda p: p.label)
def test_performance_replay(policy):
    config = ExperimentConfig(policy=policy, workload="SC", system=TINY, seed=5)
    runs = [
        run_performance_experiment(config, app_cap_ms=15_000, seq_cap_ms=15_000)
        for _ in range(2)
    ]
    assert runs[0].application.utilization == runs[1].application.utilization
    assert runs[0].sequential.utilization == runs[1].sequential.utilization
    assert runs[0].operation_counts == runs[1].operation_counts
