"""Integration: the FFS extension exhibits its textbook properties.

§1's description of BSD FFS makes two promises — tiny files avoid the
fixed-block system's internal fragmentation (fragments), and most data
still moves in large blocks.  These tests check both against the plain
fixed-block baseline under the TS workload.
"""

from repro.core.configs import ExperimentConfig, FfsPolicy, FixedPolicy, SystemConfig
from repro.core.experiments import run_allocation_experiment

SMALL = SystemConfig(scale=0.04)


class TestFfsVsFixedBlock:
    def test_ffs_beats_8k_fixed_on_small_file_fragmentation(self):
        """8K fixed blocks waste most of every 8K-mean file's last block;
        FFS's 1K fragments avoid that — the policy's founding claim."""
        ffs = run_allocation_experiment(
            ExperimentConfig(policy=FfsPolicy("8K"), workload="TS", system=SMALL)
        )
        fixed = run_allocation_experiment(
            ExperimentConfig(policy=FixedPolicy("8K"), workload="TS", system=SMALL)
        )
        assert (
            ffs.fragmentation.internal_fraction
            < fixed.fragmentation.internal_fraction
        )

    def test_ffs_internal_fragmentation_is_small(self):
        result = run_allocation_experiment(
            ExperimentConfig(policy=FfsPolicy("8K"), workload="TS", system=SMALL)
        )
        assert result.fragmentation.internal_percent < 10.0

    def test_ffs_mostly_allocates_whole_blocks(self):
        """"a few smaller fragments": block-sized extents dominate."""
        from repro.fs.filesystem import FileSystem
        from repro.sim.engine import Simulator
        from repro.sim.rng import RandomStream
        from repro.workload.driver import WorkloadDriver
        from repro.workload.profiles import time_sharing

        sim = Simulator()
        array = SMALL.build_array(sim)
        allocator = FfsPolicy("8K").build(
            array.capacity_units, SMALL.disk_unit_bytes, RandomStream(1)
        )
        fs = FileSystem(sim, array, allocator)
        profile = time_sharing(SMALL.capacity_bytes, fill_fraction=0.5)
        driver = WorkloadDriver(sim, fs, profile, seed=1)
        driver.populate()
        block_units = allocator.block_units
        fragment_extents = 0
        total_extents = 0
        for handle in allocator.files.values():
            for extent in handle.extents:
                total_extents += 1
                if extent.length % block_units:
                    fragment_extents += 1
        assert total_extents > 0
        # At most one fragment tail per file, so well under half of all
        # extents are sub-block.
        assert fragment_extents <= len(allocator.files)
        allocator.check_no_overlap()
        allocator.check_free_space()
