"""Golden-trace determinism: the observability layer's core guarantees.

A fixed ``(config, seed)`` must produce a *byte-identical* Chrome trace
(a) across repeated runs, (b) on both event-engine variants, and
(c) whether the experiment runs inline or across spawn workers.  And
collecting a trace must not perturb the science: results and engine
event counts are identical with tracing on, off, or absent.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.core.configs import (
    ExperimentConfig,
    FixedPolicy,
    RestrictedPolicy,
    SystemConfig,
)
from repro.core.experiments import run_performance_experiment
from repro.core.runner import ExperimentRunner, ExperimentTask
from repro.fault.plan import parse_fault_spec
from repro.obs.export import trace_to_chrome, trace_to_jsonl
from repro.sim.engine import Simulator

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

from check_trace import TraceError, validate_trace  # noqa: E402

#: Short but non-trivial: thousands of spans across every subsystem.
CAP_MS = 1_500.0


def config(seed: int = 3, organization: str = "striped") -> ExperimentConfig:
    return ExperimentConfig(
        policy=RestrictedPolicy(),
        workload="TS",
        system=SystemConfig(scale=0.02, organization=organization),
        seed=seed,
    )


def run(cfg: ExperimentConfig, **kwargs):
    return run_performance_experiment(
        cfg, app_cap_ms=CAP_MS, seq_cap_ms=CAP_MS, **kwargs
    )


class TestGoldenTrace:
    def test_same_seed_yields_byte_identical_chrome_trace(self):
        first = run(config(), collect_trace=True)
        second = run(config(), collect_trace=True)
        assert trace_to_chrome(first.trace) == trace_to_chrome(second.trace)
        assert trace_to_jsonl(first.trace) == trace_to_jsonl(second.trace)
        assert first.trace.span_count > 1_000

    def test_both_engine_variants_yield_the_same_trace(self):
        fast = run(config(), collect_trace=True)
        reference = run(
            config(),
            collect_trace=True,
            simulator_factory=lambda: Simulator(immediate_queue=False),
        )
        assert trace_to_chrome(fast.trace) == trace_to_chrome(reference.trace)

    def test_metrics_snapshot_is_deterministic(self):
        first = run(config(), collect_metrics=True)
        second = run(config(), collect_metrics=True)
        assert first.metrics == second.metrics
        assert first.metrics["counters"]["sim.events_executed"] > 0

    def test_trace_validates_structurally(self):
        result = run(config(), collect_trace=True)
        document = json.loads(trace_to_chrome(result.trace))
        counts = validate_trace(document)
        assert counts["spans"] == result.trace.span_count
        assert counts["lanes"] >= 3  # workload, fs, >= 1 drive

    def test_faulted_trace_carries_instants_and_validates(self):
        cfg = ExperimentConfig(
            policy=FixedPolicy(),
            workload="TS",
            system=SystemConfig(scale=0.02, organization="raid5"),
            seed=7,
            faults=parse_fault_spec("fail:drive=1,at=500,repair=400"),
        )
        result = run(cfg, collect_trace=True)
        assert result.trace.instants  # fault flips became instant events
        validate_trace(json.loads(trace_to_chrome(result.trace)))

    def test_validator_rejects_broken_nesting(self):
        result = run(config(), collect_trace=True)
        document = json.loads(trace_to_chrome(result.trace))
        parented = next(
            e
            for e in document["traceEvents"]
            if e["ph"] == "X" and e["args"].get("parent")
        )
        parented["ts"] = parented["ts"] + 1e9  # escape the parent interval
        with pytest.raises(TraceError):
            validate_trace(document)


class TestTracingDoesNotPerturb:
    @pytest.mark.parametrize("immediate_queue", [True, False])
    def test_results_identical_with_and_without_tracing(self, immediate_queue):
        def factory():
            return Simulator(immediate_queue=immediate_queue)

        plain = run(config(), simulator_factory=factory)
        traced = run(
            config(),
            collect_trace=True,
            collect_metrics=True,
            simulator_factory=factory,
        )
        assert plain.application == traced.application
        assert plain.sequential == traced.sequential
        assert plain.final_utilization == traced.final_utilization
        assert plain.operation_latency_ms == traced.operation_latency_ms
        assert plain.trace is None and plain.metrics is None

    def test_event_count_identical_with_and_without_tracing(self):
        plain = run(config(), collect_metrics=True)
        traced = run(config(), collect_trace=True, collect_metrics=True)
        assert (
            plain.metrics["counters"]["sim.events_executed"]
            == traced.metrics["counters"]["sim.events_executed"]
        )


class TestWorkerCountInvariance:
    def test_jobs_1_and_jobs_4_yield_identical_traces(self):
        tasks = [
            ExperimentTask.performance(
                config(seed),
                app_cap_ms=CAP_MS,
                seq_cap_ms=CAP_MS,
                collect_trace=True,
            )
            for seed in (3, 4)
        ]
        serial = ExperimentRunner(jobs=1, cache_dir=None).results(tasks)
        parallel = ExperimentRunner(jobs=4, cache_dir=None).results(tasks)
        for left, right in zip(serial, parallel):
            assert trace_to_chrome(left.trace) == trace_to_chrome(right.trace)
