"""Unit + property tests for the coalescing free-extent map."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.structures.intervals import FreeExtentMap


class TestAllocation:
    def test_initially_one_interval(self):
        fmap = FreeExtentMap(100)
        assert list(fmap.intervals()) == [(0, 100)]
        assert fmap.free_units == 100

    def test_first_fit_takes_lowest(self):
        fmap = FreeExtentMap(100)
        assert fmap.take_first_fit(10) == 0
        assert fmap.take_first_fit(10) == 10

    def test_first_fit_skips_small_holes(self):
        fmap = FreeExtentMap(100)
        fmap.take_at(0, 100)
        fmap.release(0, 5)       # small hole at 0
        fmap.release(20, 50)     # big hole at 20
        assert fmap.take_first_fit(10) == 20

    def test_best_fit_takes_smallest_adequate(self):
        fmap = FreeExtentMap(100)
        fmap.take_at(0, 100)
        fmap.release(0, 30)
        fmap.release(50, 12)
        assert fmap.take_best_fit(10) == 50
        fmap.check_invariants()

    def test_best_fit_tie_lowest_address(self):
        fmap = FreeExtentMap(100)
        fmap.take_at(0, 100)
        fmap.release(60, 10)
        fmap.release(20, 10)
        assert fmap.take_best_fit(10) == 20

    def test_allocation_failure_returns_none(self):
        fmap = FreeExtentMap(10)
        assert fmap.take_first_fit(11) is None
        assert fmap.take_best_fit(11) is None

    def test_take_at_exact(self):
        fmap = FreeExtentMap(100)
        assert fmap.take_at(40, 20)
        assert not fmap.is_free(40, 1)
        assert fmap.is_free(39, 1)
        assert fmap.is_free(60, 1)
        fmap.check_invariants()

    def test_take_at_occupied_fails(self):
        fmap = FreeExtentMap(100)
        fmap.take_at(40, 20)
        assert not fmap.take_at(45, 5)

    def test_non_positive_requests_raise(self):
        fmap = FreeExtentMap(10)
        with pytest.raises(SimulationError):
            fmap.take_first_fit(0)
        with pytest.raises(SimulationError):
            fmap.take_best_fit(-1)


class TestRelease:
    def test_release_coalesces_both_sides(self):
        fmap = FreeExtentMap(100)
        fmap.take_at(0, 100)
        fmap.release(0, 10)
        fmap.release(20, 10)
        fmap.release(10, 10)  # bridges the two
        assert list(fmap.intervals()) == [(0, 30)]
        fmap.check_invariants()

    def test_release_everything_restores_full(self):
        fmap = FreeExtentMap(100)
        starts = [fmap.take_first_fit(10) for _ in range(10)]
        for start in reversed(starts):
            fmap.release(start, 10)
        assert list(fmap.intervals()) == [(0, 100)]

    def test_double_free_raises(self):
        fmap = FreeExtentMap(100)
        fmap.take_at(10, 10)
        fmap.release(10, 10)
        with pytest.raises(SimulationError):
            fmap.release(10, 10)

    def test_overlapping_free_raises(self):
        fmap = FreeExtentMap(100)
        fmap.take_at(10, 20)
        fmap.release(10, 10)
        with pytest.raises(SimulationError):
            fmap.release(15, 10)

    def test_release_outside_capacity_raises(self):
        fmap = FreeExtentMap(100)
        with pytest.raises(SimulationError):
            fmap.release(95, 10)

    def test_fragment_count_and_largest(self):
        fmap = FreeExtentMap(100)
        fmap.take_at(0, 100)
        fmap.release(0, 5)
        fmap.release(50, 30)
        assert fmap.fragment_count == 2
        assert fmap.largest_free() == 30


@st.composite
def alloc_free_script(draw):
    """A random, always-valid sequence of first/best-fit allocs and frees."""
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["first", "best", "free"]),
                st.integers(min_value=1, max_value=40),
            ),
            max_size=60,
        )
    )


@given(script=alloc_free_script())
@settings(max_examples=120)
def test_property_invariants_hold_through_any_script(script):
    fmap = FreeExtentMap(500)
    live: list[tuple[int, int]] = []
    for action, size in script:
        if action == "free" and live:
            start, length = live.pop(len(live) // 2)
            fmap.release(start, length)
        elif action in ("first", "best"):
            taker = fmap.take_first_fit if action == "first" else fmap.take_best_fit
            start = taker(size)
            if start is not None:
                live.append((start, size))
        fmap.check_invariants()
    # Conservation: free + live allocations == capacity.
    assert fmap.free_units + sum(length for _, length in live) == 500
    # No two live allocations overlap.
    live.sort()
    for (a_start, a_len), (b_start, _) in zip(live, live[1:]):
        assert a_start + a_len <= b_start


class TestTakeUpToFrom:
    """The log-head allocation primitive used by the LFS extension."""

    def test_takes_from_position_inside_interval(self):
        fmap = FreeExtentMap(100)
        start, taken = fmap.take_up_to_from(40, 10)
        assert (start, taken) == (40, 10)
        assert fmap.is_free(0, 40)
        assert not fmap.is_free(40, 10)

    def test_clamps_to_interval_end(self):
        fmap = FreeExtentMap(100)
        fmap.take_at(50, 50)
        start, taken = fmap.take_up_to_from(45, 20)
        assert (start, taken) == (45, 5)  # only 5 free before the wall

    def test_skips_to_next_interval(self):
        fmap = FreeExtentMap(100)
        fmap.take_at(10, 20)  # hole-free zone 10..30 allocated
        start, taken = fmap.take_up_to_from(10, 5)
        assert start == 30

    def test_wraps_to_zero(self):
        fmap = FreeExtentMap(100)
        fmap.take_at(50, 50)
        start, taken = fmap.take_up_to_from(80, 10)
        assert start == 0  # nothing at/after 80: wrap

    def test_none_when_nothing_free(self):
        fmap = FreeExtentMap(10)
        fmap.take_at(0, 10)
        assert fmap.take_up_to_from(0, 1) is None

    def test_invalid_length_raises(self):
        with pytest.raises(SimulationError):
            FreeExtentMap(10).take_up_to_from(0, 0)

    def test_invariants_after_partial_takes(self):
        fmap = FreeExtentMap(200)
        position = 0
        for _ in range(20):
            piece = fmap.take_up_to_from(position, 7)
            if piece is None:
                break
            position = piece[0] + piece[1]
            fmap.check_invariants()
