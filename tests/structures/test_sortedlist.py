"""Unit + property tests for the bisect-backed ordered containers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.structures.sortedlist import SortedAddresses, SortedPairs


class TestSortedAddresses:
    def test_add_and_contains(self):
        s = SortedAddresses()
        s.add(5)
        s.add(1)
        assert 5 in s
        assert 1 in s
        assert 3 not in s

    def test_iteration_sorted(self):
        s = SortedAddresses([9, 2, 7])
        assert list(s) == [2, 7, 9]

    def test_duplicate_add_raises(self):
        s = SortedAddresses([1])
        with pytest.raises(SimulationError):
            s.add(1)

    def test_remove_missing_raises(self):
        s = SortedAddresses([1])
        with pytest.raises(SimulationError):
            s.remove(2)

    def test_successor(self):
        s = SortedAddresses([10, 20])
        assert s.successor(5) == 10
        assert s.successor(10) == 10
        assert s.successor(11) == 20
        assert s.successor(21) is None

    def test_predecessor(self):
        s = SortedAddresses([10, 20])
        assert s.predecessor(10) is None
        assert s.predecessor(11) == 10
        assert s.predecessor(25) == 20

    def test_first(self):
        assert SortedAddresses().first() is None
        assert SortedAddresses([4, 2]).first() == 2

    def test_range(self):
        s = SortedAddresses([1, 3, 5, 7])
        assert s.range(3, 7) == [3, 5]
        assert s.range(0, 100) == [1, 3, 5, 7]
        assert s.range(8, 9) == []


@given(st.sets(st.integers(min_value=0, max_value=10_000), max_size=100))
@settings(max_examples=100)
def test_property_successor_matches_naive(values):
    s = SortedAddresses(list(values))
    ordered = sorted(values)
    for probe in list(values)[:10] + [0, 5000, 10_001]:
        expected = next((v for v in ordered if v >= probe), None)
        assert s.successor(probe) == expected


class TestSortedPairs:
    def test_first_with_primary_at_least(self):
        pairs = SortedPairs()
        pairs.add(10, 100)
        pairs.add(10, 50)
        pairs.add(20, 10)
        assert pairs.first_with_primary_at_least(5) == (10, 50)
        assert pairs.first_with_primary_at_least(11) == (20, 10)
        assert pairs.first_with_primary_at_least(21) is None

    def test_remove(self):
        pairs = SortedPairs()
        pairs.add(10, 50)
        pairs.remove(10, 50)
        assert len(pairs) == 0

    def test_remove_missing_raises(self):
        pairs = SortedPairs()
        with pytest.raises(SimulationError):
            pairs.remove(1, 1)

    def test_ties_broken_by_lowest_secondary(self):
        pairs = SortedPairs()
        pairs.add(8, 300)
        pairs.add(8, 100)
        pairs.add(8, 200)
        assert pairs.first_with_primary_at_least(8) == (8, 100)
