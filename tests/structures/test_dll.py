"""Unit tests for the circular doubly-linked free list."""

import pytest

from repro.errors import SimulationError
from repro.structures.dll import CircularDll, DllNode


def build(keys):
    dll = CircularDll()
    for key in keys:
        dll.insert(DllNode(key))
    return dll


class TestInsertion:
    def test_insert_keeps_sorted_order(self):
        dll = build([5, 1, 9, 3])
        assert dll.keys() == [1, 3, 5, 9]

    def test_head_is_smallest(self):
        dll = build([5, 1])
        assert dll.head.key == 1

    def test_circularity(self):
        dll = build([1, 2, 3])
        assert dll.head.prev.key == 3
        assert dll.head.prev.next is dll.head

    def test_insert_duplicate_key_allowed_adjacent(self):
        dll = build([2, 2, 1])
        assert dll.keys() == [1, 2, 2]

    def test_insert_node_twice_raises(self):
        dll = CircularDll()
        node = DllNode(1)
        dll.insert(node)
        with pytest.raises(SimulationError):
            dll.insert(node)

    def test_insert_after_o1_path(self):
        dll = build([1, 5])
        anchor = dll.find(1)
        dll.insert_after(anchor, DllNode(3))
        assert dll.keys() == [1, 3, 5]

    def test_insert_after_foreign_anchor_raises(self):
        dll = build([1])
        other = CircularDll()
        node = DllNode(2)
        other.insert(node)
        with pytest.raises(SimulationError):
            dll.insert_after(node, DllNode(3))


class TestRemoval:
    def test_remove_middle(self):
        dll = build([1, 2, 3])
        dll.remove(dll.find(2))
        assert dll.keys() == [1, 3]

    def test_remove_head_advances_head(self):
        dll = build([1, 2, 3])
        dll.remove(dll.head)
        assert dll.head.key == 2

    def test_remove_last_empties(self):
        dll = build([7])
        dll.remove(dll.head)
        assert len(dll) == 0
        assert dll.head is None

    def test_remove_foreign_node_raises(self):
        dll = build([1])
        with pytest.raises(SimulationError):
            dll.remove(DllNode(1))

    def test_pop_head(self):
        dll = build([4, 2, 8])
        assert dll.pop_head().key == 2
        assert dll.keys() == [4, 8]

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            CircularDll().pop_head()

    def test_removed_node_reinsertable(self):
        dll = build([1, 2])
        node = dll.find(1)
        dll.remove(node)
        dll.insert(node)
        assert dll.keys() == [1, 2]


class TestQueries:
    def test_first_at_or_after(self):
        dll = build([10, 20, 30])
        assert dll.first_at_or_after(15).key == 20
        assert dll.first_at_or_after(20).key == 20
        assert dll.first_at_or_after(31) is None

    def test_find_missing_returns_none(self):
        dll = build([10, 20])
        assert dll.find(15) is None

    def test_iteration_visits_each_once(self):
        dll = build(list(range(10)))
        assert [n.key for n in dll] == list(range(10))
