"""Unit + property tests for the max-block bitmap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.structures.bitmap import Bitmap


class TestBasics:
    def test_all_set_construction(self):
        bitmap = Bitmap(8, all_set=True)
        assert bitmap.set_count == 8
        assert bitmap.set_bits() == list(range(8))

    def test_all_clear_construction(self):
        bitmap = Bitmap(8)
        assert bitmap.set_count == 0
        assert bitmap.set_bits() == []

    def test_set_then_test(self):
        bitmap = Bitmap(16)
        bitmap.set(3)
        assert bitmap.test(3)
        assert not bitmap.test(4)

    def test_double_set_raises(self):
        bitmap = Bitmap(4)
        bitmap.set(1)
        with pytest.raises(SimulationError):
            bitmap.set(1)

    def test_double_clear_raises(self):
        bitmap = Bitmap(4)
        with pytest.raises(SimulationError):
            bitmap.clear(1)

    def test_out_of_range_raises(self):
        bitmap = Bitmap(4)
        with pytest.raises(SimulationError):
            bitmap.test(4)
        with pytest.raises(SimulationError):
            bitmap.set(-1)

    def test_negative_size_raises(self):
        with pytest.raises(SimulationError):
            Bitmap(-1)


class TestScans:
    def test_first_set_at_or_after(self):
        bitmap = Bitmap(64)
        bitmap.set(10)
        bitmap.set(40)
        assert bitmap.first_set_at_or_after(0) == 10
        assert bitmap.first_set_at_or_after(10) == 10
        assert bitmap.first_set_at_or_after(11) == 40
        assert bitmap.first_set_at_or_after(41) is None

    def test_first_set_in_range(self):
        bitmap = Bitmap(64)
        bitmap.set(10)
        assert bitmap.first_set_in_range(0, 10) is None
        assert bitmap.first_set_in_range(0, 11) == 10
        assert bitmap.first_set_in_range(10, 64) == 10

    def test_beyond_size_returns_none(self):
        bitmap = Bitmap(4, all_set=True)
        assert bitmap.first_set_at_or_after(4) is None


@given(st.sets(st.integers(min_value=0, max_value=255), max_size=64))
@settings(max_examples=100)
def test_property_set_bits_roundtrip(bits):
    bitmap = Bitmap(256)
    for bit in bits:
        bitmap.set(bit)
    assert bitmap.set_bits() == sorted(bits)
    assert bitmap.set_count == len(bits)
    for probe in range(0, 256, 17):
        expected = next((b for b in sorted(bits) if b >= probe), None)
        assert bitmap.first_set_at_or_after(probe) == expected
