"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AllocationError,
    ConfigurationError,
    DiskFullError,
    FileSystemError,
    InvalidRequestError,
    ReproError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            ConfigurationError,
            SimulationError,
            AllocationError,
            FileSystemError,
            InvalidRequestError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_disk_full_is_allocation_error(self):
        assert issubclass(DiskFullError, AllocationError)

    def test_disk_full_carries_context(self):
        error = DiskFullError(requested_units=100, free_units=42)
        assert error.requested_units == 100
        assert error.free_units == 42
        assert "100" in str(error)
        assert "42" in str(error)

    def test_catching_base_catches_everything(self):
        with pytest.raises(ReproError):
            raise DiskFullError(1, 0)
