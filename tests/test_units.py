"""Unit tests for size parsing/formatting helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.units import (
    GIB,
    KIB,
    MIB,
    ceil_div,
    format_size,
    is_power_of_two,
    next_power_of_two,
    parse_size,
)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("8K", 8 * KIB),
            ("1M", MIB),
            ("2.8G", int(2.8 * GIB)),
            ("512", 512),
            ("512B", 512),
            ("16m", 16 * MIB),
            ("1kb", KIB),
            ("1KiB", KIB),
            (" 24 K ", 24 * KIB),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    def test_numbers_pass_through(self):
        assert parse_size(4096) == 4096
        assert parse_size(4096.4) == 4096

    def test_bad_suffix_raises(self):
        with pytest.raises(ConfigurationError):
            parse_size("8Q")

    def test_bad_number_raises(self):
        with pytest.raises(ConfigurationError):
            parse_size("K")


class TestFormatSize:
    def test_clean_units(self):
        assert format_size(8 * KIB) == "8K"
        assert format_size(16 * MIB) == "16M"
        assert format_size(512) == "512B"

    def test_fractional(self):
        assert format_size(int(2.7 * GIB)) == "2.7G"

    def test_roundtrip(self):
        for value in (KIB, 24 * KIB, 512 * KIB, 16 * MIB, GIB):
            assert parse_size(format_size(value)) == value


class TestMath:
    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(0, 5) == 0

    def test_ceil_div_bad_denominator(self):
        with pytest.raises(ConfigurationError):
            ceil_div(1, 0)

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-4)

    def test_next_power_of_two(self):
        assert next_power_of_two(0) == 1
        assert next_power_of_two(1) == 1
        assert next_power_of_two(5) == 8
        assert next_power_of_two(8) == 8
        assert next_power_of_two(4097) == 8192
