"""Unit tests for the span tracer (repro.obs.tracer)."""

import pytest

from repro.obs.tracer import (
    TID_DRIVE_BASE,
    TID_FS,
    TID_WORKLOAD,
    Span,
    Tracer,
    drive_lane,
)
from repro.sim.engine import FaultEvent, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestSpanLifecycle:
    def test_begin_assigns_sequential_ids(self, sim):
        tracer = Tracer(sim)
        first = tracer.begin("a", "cat", 0, TID_WORKLOAD)
        second = tracer.begin("b", "cat", first.span_id, TID_FS)
        assert (first.span_id, second.span_id) == (1, 2)
        assert second.parent_id == first.span_id

    def test_end_stamps_current_time(self, sim):
        tracer = Tracer(sim)
        span = tracer.begin("op", "workload", 0, TID_WORKLOAD)
        sim.schedule(5.0, lambda _sim: tracer.end(span))
        sim.run()
        assert span.start_ms == 0.0
        assert span.end_ms == 5.0

    def test_complete_records_past_interval(self, sim):
        tracer = Tracer(sim)
        span = tracer.complete(
            "disk.service", "disk", 0, drive_lane(2), 3.0, 7.5, {"bytes": 8192}
        )
        assert (span.start_ms, span.end_ms) == (3.0, 7.5)
        assert span.args == {"bytes": 8192}

    def test_context_defaults_to_root(self, sim):
        assert Tracer(sim).context == 0


class TestFreeze:
    def test_freeze_produces_plain_tuples(self, sim):
        tracer = Tracer(sim)
        span = tracer.begin("op", "workload", 0, TID_WORKLOAD, {"n": 1})
        tracer.end(span)
        data = tracer.freeze()
        assert data.spans == [
            (1, 0, "op", "workload", TID_WORKLOAD, 0.0, 0.0, {"n": 1})
        ]
        assert data.span_count == 1
        assert data.frozen_at_ms == 0.0

    def test_freeze_truncates_open_spans(self, sim):
        tracer = Tracer(sim)
        tracer.begin("op", "workload", 0, TID_WORKLOAD)
        sim.schedule(4.0, lambda _sim: None)
        sim.run()
        data = tracer.freeze()
        (_, _, _, _, _, start, end, args) = data.spans[0]
        assert (start, end) == (0.0, 4.0)
        assert args == {"truncated": True}

    def test_freeze_never_extends_before_start(self, sim):
        tracer = Tracer(sim)
        # An open span "started" ahead of now=0 must not get a negative
        # duration when truncated.
        tracer.spans.append(Span(9, 0, "late", "c", 1, 10.0))
        (_, _, _, _, _, start, end, _) = tracer.freeze().spans[0]
        assert (start, end) == (10.0, 10.0)

    def test_default_lanes_are_named(self, sim):
        data = Tracer(sim).freeze()
        assert data.lanes[TID_WORKLOAD] == "workload"
        assert data.lanes[TID_FS] == "filesystem"

    def test_name_lane(self, sim):
        tracer = Tracer(sim)
        tracer.name_lane(drive_lane(0), "drive 0 (wren-iv)")
        assert tracer.freeze().lanes[TID_DRIVE_BASE] == "drive 0 (wren-iv)"


class TestFaultInstants:
    def test_fault_events_become_instants(self, sim):
        tracer = Tracer(sim)
        tracer.observe_faults()
        sim.schedule(
            2.0,
            lambda s: s.emit_fault(FaultEvent("disk-failure", 3, s.now)),
        )
        sim.run()
        assert tracer.freeze().instants == [
            ("disk-failure", "fault", drive_lane(3), 2.0, None)
        ]

    def test_unsubscribed_tracer_records_nothing(self, sim):
        tracer = Tracer(sim)
        sim.emit_fault(FaultEvent("disk-failure", 0, 0.0))
        assert tracer.instants == []


def test_drive_lane_is_injective_and_offset():
    lanes = [drive_lane(i) for i in range(8)]
    assert lanes == sorted(set(lanes))
    assert lanes[0] == TID_DRIVE_BASE
    assert TID_WORKLOAD not in lanes
    assert TID_FS not in lanes
