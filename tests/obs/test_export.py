"""Exporter tests: Chrome trace_event and JSONL rendering, determinism."""

import json

from repro.obs.export import trace_to_chrome, trace_to_jsonl
from repro.obs.tracer import TID_FS, TID_WORKLOAD, TraceData, drive_lane


def sample_trace() -> TraceData:
    return TraceData(
        spans=[
            (1, 0, "op.read", "workload", TID_WORKLOAD, 0.0, 12.5, {"bytes": 8192}),
            (2, 1, "fs.read", "fs", TID_FS, 0.0, 12.5, None),
            (3, 2, "disk.service", "disk", drive_lane(0), 2.0, 10.0, None),
        ],
        instants=[("disk-failure", "fault", drive_lane(1), 5.0, None)],
        lanes={TID_WORKLOAD: "workload", TID_FS: "filesystem",
               drive_lane(0): "drive 0", drive_lane(1): "drive 1"},
        frozen_at_ms=12.5,
    )


class TestChromeExport:
    def test_document_shape(self):
        doc = json.loads(trace_to_chrome(sample_trace()))
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["span_count"] == 3
        assert doc["otherData"]["frozen_at_ms"] == 12.5
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases.count("M") == 4
        assert phases.count("X") == 3
        assert phases.count("i") == 1

    def test_timestamps_are_microseconds(self):
        doc = json.loads(trace_to_chrome(sample_trace()))
        service = next(
            e for e in doc["traceEvents"] if e.get("name") == "disk.service"
        )
        assert service["ts"] == 2000.0
        assert service["dur"] == 8000.0

    def test_span_args_carry_id_and_parent(self):
        doc = json.loads(trace_to_chrome(sample_trace()))
        read = next(e for e in doc["traceEvents"] if e.get("name") == "op.read")
        assert read["args"] == {"id": 1, "parent": 0, "bytes": 8192}

    def test_thread_names_exported_for_every_lane(self):
        doc = json.loads(trace_to_chrome(sample_trace()))
        names = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names[TID_WORKLOAD] == "workload"
        assert names[drive_lane(0)] == "drive 0"

    def test_rendering_is_byte_deterministic(self):
        assert trace_to_chrome(sample_trace()) == trace_to_chrome(sample_trace())

    def test_canonical_json_no_spaces(self):
        text = trace_to_chrome(sample_trace())
        assert ": " not in text and ", " not in text
        assert text.endswith("\n")


class TestJsonlExport:
    def test_one_object_per_line_with_meta_header(self):
        lines = trace_to_jsonl(sample_trace()).splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        assert records[0]["span_count"] == 3
        assert [r["type"] for r in records[1:]] == [
            "span", "span", "span", "instant",
        ]

    def test_span_lines_carry_full_interval(self):
        records = [
            json.loads(line)
            for line in trace_to_jsonl(sample_trace()).splitlines()
        ]
        service = next(r for r in records if r.get("name") == "disk.service")
        assert service["start_ms"] == 2.0
        assert service["end_ms"] == 10.0
        assert service["parent"] == 2

    def test_rendering_is_byte_deterministic(self):
        assert trace_to_jsonl(sample_trace()) == trace_to_jsonl(sample_trace())
