"""Unit tests for the metrics registry and its fixed-bucket histograms."""

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_EDGES,
    SEEK_DISTANCE_EDGES,
    MetricsRegistry,
)
from repro.sim.engine import FaultEvent, Simulator
from repro.sim.stats import FixedHistogram


class TestFixedHistogramBuckets:
    """Bucket-edge semantics: bucket i counts edges[i-1] < v <= edges[i]."""

    def test_value_exactly_on_edge_lands_in_le_bucket(self):
        hist = FixedHistogram([1.0, 2.0, 4.0])
        for value in (1.0, 2.0, 4.0):
            hist.add(value)
        assert hist.counts == [1, 1, 1, 0]

    def test_value_just_above_edge_lands_in_next_bucket(self):
        hist = FixedHistogram([1.0, 2.0, 4.0])
        hist.add(1.0000001)
        assert hist.counts == [0, 1, 0, 0]

    def test_below_first_edge_lands_in_first_bucket(self):
        hist = FixedHistogram([1.0, 2.0])
        hist.add(0.0)
        hist.add(-3.0)
        assert hist.counts == [2, 0, 0]

    def test_overflow_bucket_catches_everything_above_last_edge(self):
        hist = FixedHistogram([1.0, 2.0])
        hist.add(2.5)
        hist.add(1e9)
        assert hist.counts == [0, 0, 2]

    def test_tally_rides_along(self):
        hist = FixedHistogram([10.0])
        hist.add(4.0)
        hist.add(6.0)
        assert hist.count == 2
        snap = hist.as_dict()
        assert snap["mean"] == pytest.approx(5.0)
        assert (snap["min"], snap["max"]) == (4.0, 6.0)

    def test_empty_histogram_snapshot_has_null_extrema(self):
        snap = FixedHistogram([1.0]).as_dict()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None

    def test_merge_requires_identical_edges(self):
        left = FixedHistogram([1.0, 2.0])
        right = FixedHistogram([1.0, 3.0])
        with pytest.raises(ValueError):
            left.merge(right)

    def test_merge_sums_buckets_and_tally(self):
        left = FixedHistogram([1.0, 2.0])
        right = FixedHistogram([1.0, 2.0])
        left.add(0.5)
        right.add(1.5)
        right.add(9.0)
        left.merge(right)
        assert left.counts == [1, 1, 1]
        assert left.count == 3

    def test_edges_must_be_ascending_and_nonempty(self):
        with pytest.raises(ValueError):
            FixedHistogram([])
        with pytest.raises(ValueError):
            FixedHistogram([2.0, 1.0])

    def test_default_edge_tables_are_strictly_ascending(self):
        for edges in (DEFAULT_LATENCY_EDGES, SEEK_DISTANCE_EDGES):
            assert edges == sorted(edges)
            assert len(set(edges)) == len(edges)


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        metrics = MetricsRegistry()
        metrics.incr("disk.retries")
        metrics.incr("disk.retries", 3)
        assert metrics.counters["disk.retries"] == 4

    def test_totals_accumulate_floats(self):
        metrics = MetricsRegistry()
        metrics.add("disk.busy_ms", 1.5)
        metrics.add("disk.busy_ms", 2.25)
        assert metrics.totals["disk.busy_ms"] == pytest.approx(3.75)

    def test_gauge_keeps_latest_and_gauge_max_keeps_peak(self):
        metrics = MetricsRegistry()
        metrics.gauge("queue.depth", 5.0)
        metrics.gauge("queue.depth", 2.0)
        assert metrics.gauges["queue.depth"] == 2.0
        metrics.gauge_max("queue.peak", 5.0)
        metrics.gauge_max("queue.peak", 2.0)
        assert metrics.gauges["queue.peak"] == 5.0

    def test_observe_creates_histogram_with_requested_edges(self):
        metrics = MetricsRegistry()
        metrics.observe("disk.seek_distance_cyl", 3.0, SEEK_DISTANCE_EDGES)
        metrics.observe("disk.service_ms", 12.0)
        assert metrics.histograms["disk.seek_distance_cyl"].edges == list(
            SEEK_DISTANCE_EDGES
        )
        assert metrics.histograms["disk.service_ms"].edges == list(
            DEFAULT_LATENCY_EDGES
        )

    def test_snapshot_is_sorted_and_json_safe(self):
        import json

        metrics = MetricsRegistry()
        metrics.incr("b")
        metrics.incr("a")
        metrics.observe("lat", 1.0)
        snap = metrics.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        json.dumps(snap)  # must not raise

    def test_observe_faults_counts_transitions(self):
        sim = Simulator()
        metrics = MetricsRegistry()
        metrics.observe_faults(sim)
        sim.emit_fault(FaultEvent("disk-failure", 0, 0.0))
        sim.emit_fault(FaultEvent("rebuild-start", 0, 1.0))
        sim.emit_fault(FaultEvent("disk-failure", 1, 2.0))
        assert metrics.counters["fault.disk-failure"] == 2
        assert metrics.counters["fault.rebuild-start"] == 1
