"""Telemetry tests: emitter hook, progress frames, stderr renderer."""

import io

import pytest

from repro.obs.telemetry import (
    SweepTelemetry,
    emit,
    install_emitter,
    progress_frame,
    telemetry_enabled,
    uninstall_emitter,
)


@pytest.fixture(autouse=True)
def clean_emitter():
    uninstall_emitter()
    yield
    uninstall_emitter()


class TestEmitterHook:
    def test_emit_is_noop_without_emitter(self):
        assert not telemetry_enabled()
        emit({"stage": "x"})  # must not raise

    def test_installed_emitter_receives_frames(self):
        seen = []
        install_emitter(seen.append)
        assert telemetry_enabled()
        emit({"stage": "measure"})
        assert seen == [{"stage": "measure"}]

    def test_uninstall_stops_delivery(self):
        seen = []
        install_emitter(seen.append)
        uninstall_emitter()
        emit({"stage": "measure"})
        assert seen == []
        assert not telemetry_enabled()

    def test_emitter_exceptions_propagate(self):
        def broken(frame):
            raise BrokenPipeError("parent gone")

        install_emitter(broken)
        with pytest.raises(BrokenPipeError):
            emit({"stage": "measure"})


class TestProgressFrame:
    def test_minimal_frame(self):
        assert progress_frame("warmup", 10.0) == {
            "stage": "warmup",
            "sim_ms": 10.0,
        }

    def test_optional_fields_and_extras(self):
        frame = progress_frame(
            "application", 500.0, cap_ms=1000.0, events=42, operations=7
        )
        assert frame == {
            "stage": "application",
            "sim_ms": 500.0,
            "cap_ms": 1000.0,
            "events": 42,
            "operations": 7,
        }


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestSweepTelemetry:
    def make(self, min_interval_s=0.0):
        stream = io.StringIO()
        clock = FakeClock()
        view = SweepTelemetry(stream, min_interval_s=min_interval_s, clock=clock)
        return view, stream, clock

    def test_idle_line(self):
        view, _, _ = self.make()
        assert view.render_line() == "telemetry: idle"

    def test_frame_renders_stage_and_percent(self):
        view, stream, clock = self.make()
        clock.now = 1.0
        view.on_frame(3, progress_frame("application", 250.0, cap_ms=1000.0))
        line = view.render_line()
        assert "t3 application 25%" in line
        assert stream.getvalue().count("telemetry:") == 1

    def test_frame_without_cap_shows_sim_seconds(self):
        view, _, _ = self.make()
        view.on_frame(0, progress_frame("populate", 1500.0))
        assert "t0 populate 1.5s sim" in view.render_line()

    def test_operations_rendered_with_thousands_separator(self):
        view, _, _ = self.make()
        view.on_frame(
            0, progress_frame("allocation", 0.0, operations=65536)
        )
        assert "65,536 ops" in view.render_line()

    def test_point_done_clears_in_flight_frame(self):
        view, _, _ = self.make()
        view.on_frame(2, progress_frame("application", 100.0, cap_ms=200.0))
        view.note_point_done(1, 4, index=2)
        line = view.render_line()
        assert "1/4 done" in line
        assert "t2" not in line

    def test_eta_combines_done_points_and_in_flight_fractions(self):
        view, _, clock = self.make()
        view.note_point_done(1, 4)
        view.on_frame(0, progress_frame("application", 500.0, cap_ms=1000.0))
        clock.now = 30.0
        # 1.5 of 4 points in 30 s -> 2.5 remaining ~ 50 s.
        assert view.eta_seconds() == pytest.approx(50.0)

    def test_eta_none_before_any_progress(self):
        view, _, clock = self.make()
        clock.now = 5.0
        assert view.eta_seconds() is None
        view.note_point_done(0, 4)
        assert view.eta_seconds() is None

    def test_rendering_is_wall_clock_throttled(self):
        view, stream, clock = self.make(min_interval_s=1.0)
        clock.now = 1.0
        view.on_frame(0, progress_frame("a", 1.0))
        view.on_frame(0, progress_frame("a", 2.0))
        assert stream.getvalue().count("telemetry:") == 1
        clock.now = 2.5
        view.on_frame(0, progress_frame("a", 3.0))
        assert stream.getvalue().count("telemetry:") == 2

    def test_frames_seen_counts_every_frame(self):
        view, _, _ = self.make(min_interval_s=100.0)
        for i in range(5):
            view.on_frame(0, progress_frame("a", float(i)))
        assert view.frames_seen == 5
