"""Unit + property tests for the seeded random streams."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStream


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomStream(7, "x")
        b = RandomStream(7, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_differ(self):
        a = RandomStream(7, "x")
        b = RandomStream(7, "y")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_fork_is_deterministic(self):
        a = RandomStream(7).fork("child")
        b = RandomStream(7).fork("child")
        assert a.random() == b.random()

    def test_fork_independent_of_parent_consumption(self):
        parent_a = RandomStream(7)
        parent_a.random()  # consume some of the parent
        parent_b = RandomStream(7)
        assert parent_a.fork("c").random() == parent_b.fork("c").random()


class TestDistributions:
    def test_uniform_bounds(self):
        rng = RandomStream(1)
        for _ in range(100):
            value = rng.uniform(2.0, 5.0)
            assert 2.0 <= value <= 5.0

    def test_uniform_inverted_raises(self):
        with pytest.raises(ConfigurationError):
            RandomStream(1).uniform(5.0, 2.0)

    def test_uniform_int_bounds(self):
        rng = RandomStream(1)
        values = {rng.uniform_int(0, 3) for _ in range(200)}
        assert values == {0, 1, 2, 3}

    def test_uniform_around_never_negative(self):
        rng = RandomStream(1)
        for _ in range(200):
            assert rng.uniform_around(1.0, 10.0) >= 0.0

    def test_normal_clamped_at_minimum(self):
        rng = RandomStream(1)
        for _ in range(200):
            assert rng.normal(1.0, 100.0, minimum=0.5) >= 0.5

    def test_normal_negative_deviation_raises(self):
        with pytest.raises(ConfigurationError):
            RandomStream(1).normal(1.0, -1.0)

    def test_normal_mean_roughly_correct(self):
        rng = RandomStream(3)
        samples = [rng.normal(100.0, 10.0) for _ in range(5000)]
        assert 98.0 < sum(samples) / len(samples) < 102.0

    def test_exponential_mean_roughly_correct(self):
        rng = RandomStream(4)
        samples = [rng.exponential(20.0) for _ in range(20000)]
        assert 19.0 < sum(samples) / len(samples) < 21.0

    def test_exponential_zero_mean(self):
        assert RandomStream(1).exponential(0.0) == 0.0

    def test_exponential_negative_raises(self):
        with pytest.raises(ConfigurationError):
            RandomStream(1).exponential(-1.0)


class TestChoices:
    def test_choice_empty_raises(self):
        with pytest.raises(ConfigurationError):
            RandomStream(1).choice([])

    def test_weighted_choice_respects_zero_weight(self):
        rng = RandomStream(2)
        picks = {
            rng.weighted_choice(["a", "b", "c"], [1.0, 0.0, 1.0])
            for _ in range(300)
        }
        assert "b" not in picks
        assert picks == {"a", "c"}

    def test_weighted_choice_proportions(self):
        rng = RandomStream(5)
        counts = {"a": 0, "b": 0}
        for _ in range(10000):
            counts[rng.weighted_choice(["a", "b"], [3.0, 1.0])] += 1
        ratio = counts["a"] / counts["b"]
        assert 2.5 < ratio < 3.6

    def test_weighted_choice_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            RandomStream(1).weighted_choice(["a"], [1.0, 2.0])

    def test_weighted_choice_zero_total_raises(self):
        with pytest.raises(ConfigurationError):
            RandomStream(1).weighted_choice(["a", "b"], [0.0, 0.0])

    def test_weighted_choice_negative_weight_always_raises(self):
        # The negative weight sits last, where the sampling loop would
        # almost never reach it (pick lands inside the earlier weights);
        # validation must be up-front, not dependent on the draw.
        rng = RandomStream(1)
        for _ in range(100):
            with pytest.raises(ConfigurationError):
                rng.weighted_choice(["a", "b", "c"], [5.0, 5.0, -1.0])

    def test_shuffle_is_permutation(self):
        rng = RandomStream(6)
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items


@given(seed=st.integers(min_value=0, max_value=2**31), name=st.text(max_size=20))
@settings(max_examples=50)
def test_property_stream_reproducible(seed, name):
    """Any (seed, name) pair yields an identical stream on reconstruction."""
    a = RandomStream(seed, name or "root")
    b = RandomStream(seed, name or "root")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


@given(
    low=st.integers(min_value=-1000, max_value=1000),
    span=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=50)
def test_property_uniform_int_in_bounds(low, span):
    rng = RandomStream(0)
    value = rng.uniform_int(low, low + span)
    assert low <= value <= low + span
