"""Determinism guarantees of the engine's zero-delay fast path.

The engine routes zero-delay events through a FIFO immediate queue instead
of the heap (``Simulator(immediate_queue=True)``, the default).  These
tests pin the contract from docs/MODEL.md: the fast path fires *exactly*
the events the reference pure-heap scheduler would fire, in exactly the
same ``(time, seq)`` order — including under interleaved zero-delay
chains, same-timestamp timer ties, cancellations, and a full figure-2
performance point.
"""

from __future__ import annotations

import pytest

from repro.core.configs import ExperimentConfig, RestrictedPolicy, SystemConfig
from repro.core.experiments import run_performance_experiment
from repro.sim.engine import Simulator, Waitable
from repro.sim.rng import RandomStream


def _run_reference_and_fast(build):
    """Run ``build(sim, log)`` under both engines; return the two logs."""
    logs = []
    for immediate_queue in (True, False):
        sim = Simulator(immediate_queue=immediate_queue)
        log: list = []
        build(sim, log)
        sim.run()
        logs.append(log)
    return logs


class TestImmediateQueueOrdering:
    def test_zero_delay_after_same_timestamp_timer_fires_second(self):
        """A timer already queued at time T fires before a zero-delay event
        created at T by an earlier callback: (T, seq) order, not LIFO."""

        def build(sim, log):
            def first(s):
                log.append("first")
                s.schedule(0.0, lambda s2: log.append("immediate"))

            sim.schedule(5.0, first)
            sim.schedule(5.0, lambda s: log.append("second-timer"))

        fast, reference = _run_reference_and_fast(build)
        assert fast == ["first", "second-timer", "immediate"]
        assert reference == fast

    def test_interleaved_zero_delay_chains_match_reference(self):
        """Randomized mix of quantized timers, zero-delay cascades,
        waitable resumptions, and cancellations fires identically under
        both engines."""

        def build(sim, log):
            rng = RandomStream(2024, "determinism")
            waitables = [Waitable() for _ in range(40)]
            cancellable = []

            def fire(tag, depth):
                def callback(s):
                    log.append((s.now, tag))
                    if depth > 0:
                        s.schedule(0.0, fire((tag, "z"), depth - 1))
                    if isinstance(tag, int):
                        # Only root events spawn followers, so the
                        # cascade terminates.
                        if tag % 5 == 0:
                            s.schedule(
                                0.25 * rng.uniform_int(0, 8),
                                fire((tag, "t"), 0),
                            )
                        if tag % 7 == 0:
                            index = rng.uniform_int(0, len(waitables) - 1)
                            if not waitables[index].done:
                                waitables[index].succeed(s, tag)
                        if tag % 11 == 0 and cancellable:
                            s.cancel(cancellable.pop())

                return callback

            def waiter(index):
                value = yield waitables[index]
                log.append(("waiter", index, value))

            for index in range(len(waitables)):
                sim.process(waiter(index))
            for tag in range(120):
                event = sim.schedule(
                    0.25 * rng.uniform_int(0, 40), fire(tag, tag % 3)
                )
                if tag % 13 == 0:
                    cancellable.append(event)
            # Waitables that never succeed leave their waiters pending;
            # that is fine — both engines must agree on everything fired.

        fast, reference = _run_reference_and_fast(build)
        assert fast == reference
        assert len(fast) > 150

    def test_already_done_waitable_yield_order_matches_reference(self):
        def build(sim, log):
            done = Waitable()

            def early(s):
                done.succeed(s, "v")

            def late():
                yield 2.0
                value = yield done  # already complete: immediate resume
                log.append(("late", sim_now(), value))

            def tied():
                yield 2.0
                log.append(("tied", sim_now()))

            sim_now = lambda: sim.now  # noqa: E731
            sim.schedule(1.0, early)
            sim.process(late())
            sim.process(tied())

        fast, reference = _run_reference_and_fast(build)
        assert fast == reference
        # The already-done resume gets a fresh seq at t=2, so it must not
        # overtake the tied sleeper whose timer was queued at t=0.
        assert fast == [("tied", 2.0), ("late", 2.0, "v")]

    def test_events_executed_identical_on_random_workload(self):
        def build(sim, log):
            rng = RandomStream(7, "count")

            def tick(s):
                log.append(s.now)
                if len(log) < 500:
                    s.schedule(0.0 if len(log) % 3 == 0 else rng.uniform(0.0, 2.0), tick)

            sim.schedule(0.0, tick)

        counts = []
        for immediate_queue in (True, False):
            sim = Simulator(immediate_queue=immediate_queue)
            log: list = []
            build(sim, log)
            sim.run()
            counts.append((sim.events_executed, log))
        assert counts[0] == counts[1]


class TestFigure2PointParity:
    """A full figure-2 sweep point must be invariant to the fast path."""

    @pytest.fixture(scope="class")
    def results(self):
        config = ExperimentConfig(
            policy=RestrictedPolicy(),
            workload="TS",
            system=SystemConfig(scale=0.02),
            seed=1991,
        )
        out = {}
        for label, immediate_queue in (("fast", True), ("reference", False)):
            sims = []

            def factory(flag=immediate_queue):
                sim = Simulator(immediate_queue=flag)
                sims.append(sim)
                return sim

            result = run_performance_experiment(
                config,
                app_cap_ms=15_000.0,
                seq_cap_ms=15_000.0,
                simulator_factory=factory,
            )
            out[label] = (result, sims[0].events_executed)
        return out

    def test_events_executed_parity(self, results):
        assert results["fast"][1] == results["reference"][1]
        assert results["fast"][1] > 1000

    def test_performance_result_parity(self, results):
        assert results["fast"][0] == results["reference"][0]
