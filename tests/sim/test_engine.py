"""Unit tests for the simulation engine: scheduling, processes, waitables."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import AllOf, Simulator, Waitable


class TestScheduling:
    def test_callbacks_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda s: log.append("late"))
        sim.schedule(1.0, lambda s: log.append("early"))
        sim.run()
        assert log == ["early", "late"]
        assert sim.now == 5.0

    def test_schedule_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda s: None)

    def test_schedule_at_past_raises(self):
        sim = Simulator()
        sim.schedule(10.0, lambda s: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda s: None)

    def test_run_until_stops_clock_exactly(self):
        sim = Simulator()
        log = []
        sim.schedule(100.0, lambda s: log.append("too late"))
        sim.run(until=50.0)
        assert log == []
        assert sim.now == 50.0

    def test_run_until_then_resume(self):
        sim = Simulator()
        log = []
        sim.schedule(100.0, lambda s: log.append("fired"))
        sim.run(until=50.0)
        sim.run()
        assert log == ["fired"]

    def test_cancel_prevents_callback(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, lambda s: log.append("x"))
        sim.cancel(event)
        sim.run()
        assert log == []
        assert sim.pending_events == 0

    def test_stop_ends_run_early(self):
        sim = Simulator()
        log = []

        def stopper(s):
            log.append("stop")
            s.stop()

        sim.schedule(1.0, stopper)
        sim.schedule(2.0, lambda s: log.append("after"))
        sim.run()
        assert log == ["stop"]
        assert sim.pending_events == 1

    def test_stop_when_predicate(self):
        sim = Simulator()
        log = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda s: log.append(s.now))
        sim.run(stop_when=lambda: len(log) >= 2)
        assert log == [1.0, 2.0]

    def test_events_executed_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule(float(t), lambda s: None)
        sim.run()
        assert sim.events_executed == 5


class TestProcesses:
    def test_float_yield_sleeps(self):
        sim = Simulator()
        ticks = []

        def worker():
            yield 2.0
            ticks.append(sim.now)
            yield 3.0
            ticks.append(sim.now)

        sim.process(worker())
        sim.run()
        assert ticks == [2.0, 5.0]

    def test_process_return_value(self):
        sim = Simulator()

        def worker():
            yield 1.0
            return 42

        process = sim.process(worker())
        sim.run()
        assert process.done
        assert process.value == 42

    def test_process_join(self):
        sim = Simulator()
        results = []

        def child():
            yield 4.0
            return "child-result"

        def parent():
            value = yield sim.process(child())
            results.append((sim.now, value))

        sim.process(parent())
        sim.run()
        assert results == [(4.0, "child-result")]

    def test_waiting_on_completed_waitable_resumes_immediately(self):
        sim = Simulator()
        waitable = Waitable()
        log = []

        def early():
            yield 1.0
            waitable.succeed(sim, "v")

        def late():
            yield 2.0
            value = yield waitable
            log.append((sim.now, value))

        sim.process(early())
        sim.process(late())
        sim.run()
        assert log == [(2.0, "v")]

    def test_yielding_garbage_raises(self):
        sim = Simulator()

        def bad():
            yield "not a waitable"

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_timeout_waitable(self):
        sim = Simulator()
        log = []

        def worker():
            yield sim.timeout(7.5)
            log.append(sim.now)

        sim.process(worker())
        sim.run()
        assert log == [7.5]


class TestWaitable:
    def test_double_succeed_raises(self):
        sim = Simulator()
        waitable = Waitable()
        waitable.succeed(sim)
        with pytest.raises(SimulationError):
            waitable.succeed(sim)

    def test_on_success_after_done_raises(self):
        sim = Simulator()
        waitable = Waitable()
        waitable.succeed(sim)
        with pytest.raises(SimulationError):
            waitable.on_success(lambda s, v: None)

    def test_multiple_waiters_all_resume(self):
        sim = Simulator()
        waitable = Waitable()
        log = []

        def waiter(tag):
            value = yield waitable
            log.append((tag, value))

        sim.process(waiter("a"))
        sim.process(waiter("b"))
        sim.schedule(3.0, lambda s: waitable.succeed(s, 99))
        sim.run()
        assert sorted(log) == [("a", 99), ("b", 99)]


class TestAllOf:
    def test_waits_for_slowest(self):
        sim = Simulator()
        log = []
        children = [Waitable(), Waitable()]

        def waiter():
            values = yield AllOf(children)
            log.append((sim.now, values))

        sim.process(waiter())
        sim.schedule(2.0, lambda s: children[0].succeed(s, "fast"))
        sim.schedule(8.0, lambda s: children[1].succeed(s, "slow"))
        sim.run()
        assert log == [(8.0, ["fast", "slow"])]

    def test_empty_all_of_is_done(self):
        assert AllOf([]).done

    def test_pre_completed_children(self):
        sim = Simulator()
        child = Waitable()
        child.succeed(sim, 1)
        combined = AllOf([child])
        assert combined.done
        assert combined.value == [1]

    def test_mixed_done_and_pending(self):
        sim = Simulator()
        done_child = Waitable()
        done_child.succeed(sim, "x")
        pending = Waitable()
        combined = AllOf([done_child, pending])
        assert not combined.done
        log = []

        def waiter():
            values = yield combined
            log.append(values)

        sim.process(waiter())
        sim.schedule(1.0, lambda s: pending.succeed(s, "y"))
        sim.run()
        assert log == [["x", "y"]]


class TestOrderingProperty:
    def test_random_schedule_executes_in_time_order(self):
        """Property: arbitrary interleaved scheduling still fires events in
        global nondecreasing time order with FIFO tie-breaks."""
        from repro.sim.rng import RandomStream

        rng = RandomStream(123)
        sim = Simulator()
        fired = []

        def callback(tag):
            def run(s):
                fired.append((s.now, tag))
                # Events may schedule more events, including at "now".
                if tag % 7 == 0:
                    s.schedule(0.0, callback(tag + 1000))
                if tag % 11 == 0:
                    s.schedule(rng.uniform(0.0, 5.0), callback(tag + 2000))

            return run

        for tag in range(200):
            sim.schedule(rng.uniform(0.0, 100.0), callback(tag))
        sim.run()
        times = [t for t, _ in fired]
        assert times == sorted(times)
        assert len(fired) >= 200

    def test_nested_processes_interleave_correctly(self):
        sim = Simulator()
        log = []

        def child(name, delay):
            yield delay
            log.append((sim.now, name))
            return name

        def parent():
            first = sim.process(child("fast", 1.0))
            second = sim.process(child("slow", 5.0))
            results = []
            results.append((yield first))
            log.append((sim.now, "joined-fast"))
            results.append((yield second))
            log.append((sim.now, "joined-slow"))
            assert results == ["fast", "slow"]

        sim.process(parent())
        sim.run()
        assert [entry[1] for entry in log] == [
            "fast", "joined-fast", "slow", "joined-slow",
        ]


class TestProfiling:
    def test_profile_attributes_events_to_callback_modules(self):
        sim = Simulator()
        sim.enable_profiling()

        def tick(s):
            if s.now < 10.0:
                s.schedule(1.0, tick)

        def chain():
            for _ in range(4):
                yield 0.5

        sim.schedule(0.0, tick)
        sim.process(chain())
        sim.run()
        profile = sim.profile
        assert profile is not None
        assert profile.total_events == sim.events_executed
        assert profile.total_seconds >= 0.0
        modules = {name for name, _, _ in profile.rows()}
        # tick lives here; the process trampoline lives in the engine.
        assert __name__ in modules
        assert "repro.sim.engine" in modules
        rendered = profile.render()
        assert "subsystem" in rendered
        assert "total" in rendered

    def test_profiled_run_matches_unprofiled_results(self):
        logs = []
        for profiled in (False, True):
            sim = Simulator()
            if profiled:
                sim.enable_profiling()
            log = []

            def pinger(s, n=0):
                log.append((s.now, n))
                if n < 50:
                    s.schedule(0.25 if n % 3 else 0.0, pinger, n + 1)

            sim.schedule(0.0, pinger)
            sim.run()
            logs.append((log, sim.events_executed, sim.now))
        assert logs[0] == logs[1]
