"""Unit + property tests for Tally, Counter, and histogram."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import Counter, Tally, histogram


class TestTally:
    def test_empty_tally(self):
        tally = Tally()
        assert tally.count == 0
        assert tally.mean == 0.0
        assert tally.variance == 0.0
        assert tally.total == 0.0

    def test_mean_min_max(self):
        tally = Tally()
        for value in (1.0, 2.0, 3.0, 4.0):
            tally.add(value)
        assert tally.mean == pytest.approx(2.5)
        assert tally.minimum == 1.0
        assert tally.maximum == 4.0
        assert tally.total == pytest.approx(10.0)

    def test_variance_matches_definition(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        tally = Tally()
        for value in values:
            tally.add(value)
        assert tally.variance == pytest.approx(4.0)
        assert tally.stddev == pytest.approx(2.0)

    def test_merge_equals_combined(self):
        left, right, combined = Tally(), Tally(), Tally()
        for index in range(10):
            left.add(float(index))
            combined.add(float(index))
        for index in range(10, 25):
            right.add(float(index) * 2)
            combined.add(float(index) * 2)
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)
        assert left.minimum == combined.minimum
        assert left.maximum == combined.maximum

    def test_merge_into_empty(self):
        left, right = Tally(), Tally()
        right.add(5.0)
        left.merge(right)
        assert left.count == 1
        assert left.mean == 5.0

    def test_merge_empty_is_noop(self):
        left = Tally()
        left.add(5.0)
        left.merge(Tally())
        assert left.count == 1


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
@settings(max_examples=100)
def test_property_tally_matches_naive(values):
    tally = Tally()
    for value in values:
        tally.add(value)
    mean = sum(values) / len(values)
    assert math.isclose(tally.mean, mean, rel_tol=1e-9, abs_tol=1e-6)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    assert math.isclose(tally.variance, variance, rel_tol=1e-6, abs_tol=1e-3)


class TestCounter:
    def test_incr_and_get(self):
        counter = Counter()
        counter.incr("reads")
        counter.incr("reads", 4)
        assert counter.get("reads") == 5
        assert counter.get("missing") == 0

    def test_as_dict_snapshot(self):
        counter = Counter()
        counter.incr("a")
        snapshot = counter.as_dict()
        counter.incr("a")
        assert snapshot == {"a": 1}


class TestHistogram:
    def test_empty(self):
        assert histogram([], 4) == []

    def test_degenerate_single_value(self):
        assert histogram([3.0, 3.0], 4) == [(3.0, 3.0, 2)]

    def test_counts_sum_to_n(self):
        values = [float(v) for v in range(100)]
        bins = histogram(values, 7)
        assert sum(count for _, _, count in bins) == 100

    def test_max_value_lands_in_last_bin(self):
        bins = histogram([0.0, 10.0], 5)
        assert bins[-1][2] == 1
        assert bins[0][2] == 1
