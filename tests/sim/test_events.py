"""Unit tests for the event heap."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventHeap


def make_callback(log, tag):
    def callback(sim):
        log.append(tag)

    return callback


class TestEventHeap:
    def test_pop_orders_by_time(self):
        heap = EventHeap()
        log = []
        heap.push(5.0, make_callback(log, "b"))
        heap.push(1.0, make_callback(log, "a"))
        heap.push(9.0, make_callback(log, "c"))
        times = [heap.pop().time for _ in range(3)]
        assert times == [1.0, 5.0, 9.0]

    def test_ties_break_fifo(self):
        heap = EventHeap()
        first = heap.push(3.0, lambda sim: None)
        second = heap.push(3.0, lambda sim: None)
        assert heap.pop() is first
        assert heap.pop() is second

    def test_len_counts_live_events(self):
        heap = EventHeap()
        heap.push(1.0, lambda sim: None)
        event = heap.push(2.0, lambda sim: None)
        assert len(heap) == 2
        event.cancel()
        heap.note_cancelled()
        assert len(heap) == 1

    def test_cancelled_events_are_skipped(self):
        heap = EventHeap()
        first = heap.push(1.0, lambda sim: None)
        second = heap.push(2.0, lambda sim: None)
        first.cancel()
        heap.note_cancelled()
        assert heap.pop() is second

    def test_pop_empty_raises(self):
        heap = EventHeap()
        with pytest.raises(SimulationError):
            heap.pop()

    def test_peek_time_skips_cancelled(self):
        heap = EventHeap()
        first = heap.push(1.0, lambda sim: None)
        heap.push(4.0, lambda sim: None)
        first.cancel()
        heap.note_cancelled()
        assert heap.peek_time() == 4.0

    def test_peek_time_empty_is_none(self):
        assert EventHeap().peek_time() is None

    def test_cancel_bookkeeping_underflow_raises(self):
        heap = EventHeap()
        with pytest.raises(SimulationError):
            heap.note_cancelled()
