"""Unit tests for the event heap."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import COMPACTION_MIN_GARBAGE, EventHeap


def make_callback(log, tag):
    def callback(sim):
        log.append(tag)

    return callback


class TestEventHeap:
    def test_pop_orders_by_time(self):
        heap = EventHeap()
        log = []
        heap.push(5.0, make_callback(log, "b"))
        heap.push(1.0, make_callback(log, "a"))
        heap.push(9.0, make_callback(log, "c"))
        times = [heap.pop().time for _ in range(3)]
        assert times == [1.0, 5.0, 9.0]

    def test_ties_break_fifo(self):
        heap = EventHeap()
        first = heap.push(3.0, lambda sim: None)
        second = heap.push(3.0, lambda sim: None)
        assert heap.pop() is first
        assert heap.pop() is second

    def test_len_counts_live_events(self):
        heap = EventHeap()
        heap.push(1.0, lambda sim: None)
        event = heap.push(2.0, lambda sim: None)
        assert len(heap) == 2
        event.cancel()
        heap.note_cancelled()
        assert len(heap) == 1

    def test_cancelled_events_are_skipped(self):
        heap = EventHeap()
        first = heap.push(1.0, lambda sim: None)
        second = heap.push(2.0, lambda sim: None)
        first.cancel()
        heap.note_cancelled()
        assert heap.pop() is second

    def test_pop_empty_raises(self):
        heap = EventHeap()
        with pytest.raises(SimulationError):
            heap.pop()

    def test_peek_time_skips_cancelled(self):
        heap = EventHeap()
        first = heap.push(1.0, lambda sim: None)
        heap.push(4.0, lambda sim: None)
        first.cancel()
        heap.note_cancelled()
        assert heap.peek_time() == 4.0

    def test_peek_time_empty_is_none(self):
        assert EventHeap().peek_time() is None

    def test_cancel_bookkeeping_underflow_raises(self):
        heap = EventHeap()
        with pytest.raises(SimulationError):
            heap.note_cancelled()


class TestLazyCompaction:
    def test_cancel_heavy_workload_triggers_compaction(self):
        heap = EventHeap()
        events = [heap.push(float(i % 17), lambda sim: None) for i in range(400)]
        survivors = []
        for index, event in enumerate(events):
            if index % 8 == 0:
                survivors.append(event)
            else:
                event.cancel()
                heap.note_cancelled(event)
        assert heap.compactions >= 1
        assert len(heap) == len(survivors)
        # The physical heap has actually shed its garbage.
        assert len(heap._heap) < COMPACTION_MIN_GARBAGE + len(survivors)

    def test_compaction_preserves_pop_order(self):
        heap = EventHeap()
        events = [heap.push(float(i % 13), lambda sim: None) for i in range(300)]
        expected = []
        for index, event in enumerate(events):
            if index % 10 == 3:
                expected.append(event)
            else:
                event.cancel()
                heap.note_cancelled(event)
        assert heap.compactions >= 1
        popped = [heap.pop() for _ in range(len(heap))]
        assert popped == sorted(expected, key=lambda e: (e.time, e.seq))
        assert heap.peek_time() is None

    def test_immediate_cancellations_are_not_heap_garbage(self):
        heap = EventHeap()
        for _ in range(5 * COMPACTION_MIN_GARBAGE):
            event = heap.push_immediate(0.0, lambda sim: None)
            event.cancel()
            heap.note_cancelled(event)
        assert heap.compactions == 0
        assert len(heap) == 0

    def test_below_threshold_never_compacts(self):
        heap = EventHeap()
        events = [
            heap.push(float(i), lambda sim: None)
            for i in range(COMPACTION_MIN_GARBAGE)
        ]
        for event in events[:-1]:
            event.cancel()
            heap.note_cancelled(event)
        assert heap.compactions == 0

    def test_simulator_exposes_compaction_counter(self):
        sim = Simulator()
        fired = []
        keep = []
        for i in range(400):
            event = sim.schedule(float(i % 29), lambda s, i=i: fired.append(i))
            if i % 9 == 0:
                keep.append(i)
            else:
                sim.cancel(event)
        assert sim.compactions >= 1
        sim.run()
        assert sorted(fired) == keep
