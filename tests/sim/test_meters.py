"""Unit tests for the throughput meter and the stabilization rule."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.meters import ThroughputMeter


def make_meter(max_rate=100.0, interval=10.0, start=0.0):
    return ThroughputMeter(max_rate, interval_ms=interval, start_time=start)


class TestRecording:
    def test_bytes_bucket_into_intervals(self):
        meter = make_meter()
        meter.record(1.0, 500)
        meter.record(9.9, 500)
        meter.record(10.1, 300)
        assert meter.interval_utilizations(20.0) == [1.0, 0.3]

    def test_records_before_start_ignored(self):
        meter = make_meter(start=100.0)
        meter.record(50.0, 999)
        assert meter.total_bytes == 0

    def test_negative_bytes_raises(self):
        with pytest.raises(ConfigurationError):
            make_meter().record(1.0, -1)

    def test_bad_construction_raises(self):
        with pytest.raises(ConfigurationError):
            ThroughputMeter(0.0)
        with pytest.raises(ConfigurationError):
            ThroughputMeter(1.0, interval_ms=0.0)

    def test_partial_interval_excluded(self):
        meter = make_meter()
        meter.record(5.0, 1000)
        assert meter.interval_utilizations(5.0) == []
        assert meter.interval_utilizations(10.0) == [1.0]

    def test_cumulative_utilization(self):
        meter = make_meter()
        meter.record(5.0, 500)
        assert meter.cumulative_utilization(10.0) == pytest.approx(0.5)

    def test_cumulative_before_start_is_zero(self):
        meter = make_meter(start=10.0)
        assert meter.cumulative_utilization(5.0) == 0.0


class TestStabilization:
    def test_needs_full_window(self):
        meter = make_meter()
        meter.record(5.0, 500)
        meter.record(15.0, 500)
        assert not meter.stabilized(20.0)  # only two complete intervals

    def test_fires_when_flat(self):
        meter = make_meter()
        for interval in range(3):
            meter.record(interval * 10.0 + 5.0, 500)
        assert meter.stabilized(30.0)

    def test_rejects_drift_beyond_tolerance(self):
        meter = make_meter()
        meter.record(5.0, 500)
        meter.record(15.0, 500)
        meter.record(25.0, 530)  # 3 percentage points off
        assert not meter.stabilized(30.0)

    def test_accepts_drift_within_tolerance(self):
        meter = make_meter()
        meter.record(5.0, 5000)
        meter.record(15.0, 5000)
        meter.record(25.0, 5000)
        # 0.1% of capacity per interval = 1 byte at rate 100 B/ms * 10 ms...
        assert meter.stabilized(30.0, tolerance=0.001)

    def test_stable_utilization_is_window_mean(self):
        meter = make_meter()
        for interval, amount in enumerate((100, 400, 500, 600)):
            meter.record(interval * 10.0 + 5.0, amount)
        assert meter.stable_utilization(40.0) == pytest.approx(0.5)

    def test_stable_utilization_falls_back_to_cumulative(self):
        meter = make_meter()
        meter.record(5.0, 500)
        assert meter.stable_utilization(10.0) == pytest.approx(0.5)

    def test_empty_intervals_count_as_zero_throughput(self):
        meter = make_meter()
        meter.record(35.0, 100)
        assert meter.interval_utilizations(40.0) == [0.0, 0.0, 0.0, 0.1]


class TestRecordSpan:
    def test_span_spreads_over_intervals(self):
        meter = make_meter()
        meter.record_span(0.0, 20.0, 1000)  # two intervals, 500 each
        assert meter.interval_utilizations(20.0) == [0.5, 0.5]
        assert meter.total_bytes == pytest.approx(1000)

    def test_span_partial_intervals(self):
        meter = make_meter()
        meter.record_span(5.0, 15.0, 1000)  # half in each interval
        utils = meter.interval_utilizations(20.0)
        assert utils[0] == pytest.approx(0.5)
        assert utils[1] == pytest.approx(0.5)

    def test_span_before_start_clipped(self):
        meter = make_meter(start=10.0)
        meter.record_span(0.0, 20.0, 1000)  # only the second half counts
        assert meter.total_bytes == pytest.approx(500)
        assert meter.interval_utilizations(20.0) == [pytest.approx(0.5)]

    def test_span_entirely_before_start_ignored(self):
        meter = make_meter(start=100.0)
        meter.record_span(0.0, 50.0, 999)
        assert meter.total_bytes == 0

    def test_zero_length_span_counts_as_point(self):
        meter = make_meter()
        meter.record_span(5.0, 5.0, 100)
        assert meter.total_bytes == 100

    def test_inverted_span_raises(self):
        with pytest.raises(ConfigurationError):
            make_meter().record_span(10.0, 5.0, 100)

    def test_span_ending_exactly_on_interval_boundary(self):
        meter = make_meter()
        meter.record_span(0.0, 10.0, 500)
        # All 500 bytes land in interval 0; no phantom empty interval is
        # created after the boundary.
        assert meter.interval_utilizations(10.0) == [pytest.approx(0.5)]
        assert meter.interval_utilizations(20.0) == [pytest.approx(0.5)]
        assert meter.total_bytes == pytest.approx(500)

    def test_span_straddling_boundary_splits_exactly(self):
        meter = make_meter()
        meter.record_span(8.0, 12.0, 400)  # 100 B/ms: 200 each side
        utils = meter.interval_utilizations(20.0)
        assert utils[0] == pytest.approx(0.2)
        assert utils[1] == pytest.approx(0.2)

    def test_span_straddling_start_time_mid_interval(self):
        # start_time inside the span and off the interval grid: only the
        # post-warm-up portion is credited, at the span's uniform rate.
        meter = make_meter(start=15.0)
        meter.record_span(5.0, 35.0, 3000)  # rate 100 B/ms; 20 ms counted
        assert meter.total_bytes == pytest.approx(2000)
        assert meter.interval_utilizations(35.0) == [
            pytest.approx(1.0),
            pytest.approx(1.0),
        ]

    def test_span_ending_exactly_at_start_time_is_warmup(self):
        meter = make_meter(start=10.0)
        meter.record_span(0.0, 10.0, 999)
        assert meter.total_bytes == 0
        assert meter.interval_utilizations(30.0) == []

    def test_zero_length_span_before_start_ignored(self):
        meter = make_meter(start=10.0)
        meter.record_span(4.0, 4.0, 999)
        assert meter.total_bytes == 0

    def test_zero_length_span_on_boundary_credits_next_interval(self):
        # A point event exactly on the boundary belongs to the interval
        # it opens, matching record()'s floor-division bucketing.
        meter = make_meter()
        meter.record_span(10.0, 10.0, 300)
        assert meter.interval_utilizations(20.0) == [0.0, pytest.approx(0.3)]

    def test_long_span_never_exceeds_capacity_per_interval(self):
        meter = make_meter(max_rate=100.0)
        # 100 B/ms for 50 ms = exactly the capacity in each interval.
        meter.record_span(0.0, 50.0, 5000)
        for utilization in meter.interval_utilizations(50.0):
            assert utilization <= 1.0 + 1e-9
