"""Fault-injection determinism: the tentpole reproducibility guarantees.

A fixed ``(FaultSpec, seed)`` must produce bit-identical degraded-mode
results (a) whether the sweep runs inline or across worker processes at
any ``--jobs`` count, and (b) on both event-engine variants (the
zero-delay fast path and the pure-heap reference engine).  Transient
faults draw from the per-drive RNG in request-service order, so any
divergence in event ordering shows up immediately as a different
:class:`~repro.fault.injector.FaultSummary`.
"""

import pytest

from repro.core.configs import ExperimentConfig, FixedPolicy, SystemConfig
from repro.core.experiments import run_performance_experiment
from repro.core.runner import ExperimentRunner, ExperimentTask
from repro.fault.plan import parse_fault_spec
from repro.sim.engine import Simulator

#: Small but non-trivial: one failure with rebuild, one slowdown, and a
#: transient stream, on a redundant organization.
SPEC = parse_fault_spec(
    "fail:drive=1,at=8000,repair=15000;slow:drive=0,at=0,factor=2,for=10000;"
    "transient:rate=0.002"
)


def faulted_config(seed: int, organization: str = "raid5") -> ExperimentConfig:
    return ExperimentConfig(
        policy=FixedPolicy(),
        workload="TS",
        system=SystemConfig(scale=0.02, organization=organization),
        seed=seed,
        faults=SPEC,
    )


def tasks(seeds):
    return [
        ExperimentTask.performance(
            faulted_config(seed), app_cap_ms=20_000.0, seq_cap_ms=10_000.0
        )
        for seed in seeds
    ]


class TestEngineEquivalence:
    @pytest.mark.parametrize("organization", ["raid5", "mirrored"])
    def test_fast_and_reference_engines_agree(self, organization):
        results = {}
        for label, immediate_queue in (("fast", True), ("reference", False)):

            def factory(flag=immediate_queue):
                return Simulator(immediate_queue=flag)

            results[label] = run_performance_experiment(
                faulted_config(7, organization),
                app_cap_ms=20_000.0,
                seq_cap_ms=10_000.0,
                simulator_factory=factory,
            )
        assert results["fast"] == results["reference"]
        assert results["fast"].faults is not None
        assert results["fast"].faults.disk_failures == 1

    def test_same_seed_is_bit_identical(self):
        first = run_performance_experiment(
            faulted_config(7), app_cap_ms=20_000.0, seq_cap_ms=10_000.0
        )
        second = run_performance_experiment(
            faulted_config(7), app_cap_ms=20_000.0, seq_cap_ms=10_000.0
        )
        assert first == second

    def test_different_seed_differs(self):
        a = run_performance_experiment(
            faulted_config(7), app_cap_ms=20_000.0, seq_cap_ms=10_000.0
        )
        b = run_performance_experiment(
            faulted_config(8), app_cap_ms=20_000.0, seq_cap_ms=10_000.0
        )
        assert a != b


class TestJobCountEquivalence:
    def test_jobs_1_and_jobs_4_bit_identical(self):
        sweep = tasks(seeds=(7, 8, 9, 10))
        serial = ExperimentRunner(jobs=1).results(sweep)
        parallel = ExperimentRunner(jobs=4).results(tasks(seeds=(7, 8, 9, 10)))
        assert serial == parallel
        assert all(r.faults is not None for r in serial)
        assert all(r.faults.disk_failures == 1 for r in serial)
