"""Unit tests for the declarative fault plan and its mini-grammar."""

import math

import pytest

from repro.errors import FaultError
from repro.fault.plan import (
    ALL_DRIVES,
    DiskFailure,
    FaultSpec,
    SlowDisk,
    TransientFaults,
    parse_fault_spec,
)


class TestValidation:
    def test_failure_rejects_negative_time(self):
        with pytest.raises(FaultError):
            DiskFailure(at_ms=-1.0, drive=0)

    def test_failure_rejects_negative_drive(self):
        with pytest.raises(FaultError):
            DiskFailure(at_ms=0.0, drive=-2)

    def test_failure_rejects_negative_repair(self):
        with pytest.raises(FaultError):
            DiskFailure(at_ms=0.0, drive=0, repair_after_ms=-1.0)

    def test_slow_disk_rejects_speedup(self):
        with pytest.raises(FaultError):
            SlowDisk(at_ms=0.0, drive=0, factor=0.5)

    def test_slow_disk_rejects_nonpositive_duration(self):
        with pytest.raises(FaultError):
            SlowDisk(at_ms=0.0, drive=0, factor=2.0, duration_ms=0.0)

    def test_transient_rate_bounds(self):
        with pytest.raises(FaultError):
            TransientFaults(rate=-0.1)
        with pytest.raises(FaultError):
            TransientFaults(rate=1.5)
        with pytest.raises(FaultError):
            TransientFaults(rate=0.1, start_ms=10.0, end_ms=5.0)


class TestSpec:
    def test_empty(self):
        assert FaultSpec().empty
        assert not FaultSpec(failures=(DiskFailure(0.0, 0),)).empty

    def test_hashable_and_stable(self):
        a = FaultSpec(failures=(DiskFailure(5.0, 1, 10.0),))
        b = FaultSpec(failures=(DiskFailure(5.0, 1, 10.0),))
        assert a == b
        assert hash(a) == hash(b)

    def test_describe_mentions_every_clause(self):
        spec = FaultSpec(
            failures=(DiskFailure(5.0, 1),),
            slowdowns=(SlowDisk(0.0, 0, 4.0),),
            transients=(TransientFaults(0.01),),
        )
        text = spec.describe()
        assert "fail" in text and "slow" in text and "transient" in text


class TestGrammar:
    def test_parse_failure(self):
        spec = parse_fault_spec("fail:drive=2,at=5000,repair=20000")
        assert spec.failures == (DiskFailure(5000.0, 2, 20000.0),)

    def test_parse_failure_without_repair(self):
        spec = parse_fault_spec("fail:drive=2,at=5000")
        assert spec.failures[0].repair_after_ms is None

    def test_parse_slow(self):
        spec = parse_fault_spec("slow:drive=1,at=0,factor=4,for=30000")
        assert spec.slowdowns == (SlowDisk(0.0, 1, 4.0, 30000.0),)

    def test_parse_slow_defaults_to_forever(self):
        spec = parse_fault_spec("slow:drive=1,at=0,factor=4")
        assert spec.slowdowns[0].duration_ms == math.inf

    def test_parse_transient_defaults_to_all_drives(self):
        spec = parse_fault_spec("transient:rate=0.001")
        assert spec.transients == (TransientFaults(0.001, ALL_DRIVES),)

    def test_parse_multiple_clauses(self):
        spec = parse_fault_spec(
            "fail:drive=0,at=100;slow:drive=1,at=0,factor=2;transient:rate=0.5"
        )
        assert len(spec.failures) == 1
        assert len(spec.slowdowns) == 1
        assert len(spec.transients) == 1

    def test_parse_roundtrips_through_equality(self):
        text = "fail:drive=2,at=5000,repair=20000;transient:rate=0.001,drive=2"
        assert parse_fault_spec(text) == parse_fault_spec(text)

    def test_parse_rejects_unknown_clause(self):
        with pytest.raises(FaultError):
            parse_fault_spec("explode:drive=0")

    def test_parse_rejects_unknown_field(self):
        with pytest.raises(FaultError):
            parse_fault_spec("fail:drive=0,at=0,color=red")

    def test_parse_rejects_missing_required_field(self):
        with pytest.raises(FaultError):
            parse_fault_spec("fail:at=5000")

    def test_parse_rejects_bad_number(self):
        with pytest.raises(FaultError):
            parse_fault_spec("fail:drive=zero,at=5000")

    def test_parse_empty_text(self):
        assert parse_fault_spec("").empty
        assert parse_fault_spec("  ").empty
