"""Behavioral tests for fault injection and degraded-mode organizations."""

import pytest

from repro.disk.array import StripedArray
from repro.disk.geometry import TINY_DISK
from repro.disk.raid import MirroredArray, Raid5Array
from repro.disk.request import IoKind
from repro.errors import DataUnavailableError, FaultError
from repro.fault import DiskFailure, FaultInjector, FaultSpec, parse_fault_spec
from repro.fault.plan import SlowDisk, TransientFaults
from repro.sim.engine import Simulator

STRIPE = 8192
UNIT = 4096


def build(cls, sim, n_disks=4):
    return cls(sim, TINY_DISK, n_disks, STRIPE, UNIT)


def fail_at(drive, at_ms, repair_after_ms=None):
    return FaultSpec(failures=(DiskFailure(at_ms, drive, repair_after_ms),))


def run_ops(sim, system, n_ops=60, kind=IoKind.READ):
    """Drive a steady request stream; return per-op completion times."""
    done = []

    def proc():
        for i in range(n_ops):
            waitable = system.transfer(kind, (i * 4) % (system.capacity_units - 8), 4)
            yield waitable
            done.append(sim.now)

    sim.process(proc())
    sim.run()
    return done


class TestValidation:
    def test_rejects_out_of_range_drive(self):
        sim = Simulator()
        array = build(StripedArray, sim)
        with pytest.raises(FaultError):
            FaultInjector(sim, array, fail_at(9, 10.0))

    def test_rejects_double_failure_of_same_drive(self):
        sim = Simulator()
        array = build(StripedArray, sim)
        spec = FaultSpec(
            failures=(DiskFailure(10.0, 1), DiskFailure(20.0, 1))
        )
        with pytest.raises(FaultError):
            FaultInjector(sim, array, spec)

    def test_attaches_state_to_every_drive(self):
        sim = Simulator()
        array = build(StripedArray, sim)
        FaultInjector(sim, array, fail_at(0, 10.0))
        assert all(d.fault_state is not None for d in array.drives)


class TestStripedFailure:
    def test_failed_drive_makes_data_unavailable(self):
        sim = Simulator()
        array = build(StripedArray, sim)
        FaultInjector(sim, array, fail_at(1, 0.0))
        sim.run(until=1.0)
        with pytest.raises(DataUnavailableError):
            # A span wide enough to touch every drive.
            array.transfer(IoKind.READ, 0, 4 * (STRIPE // UNIT))
        assert array.degraded

    def test_unrepaired_drive_stays_offline(self):
        sim = Simulator()
        array = build(StripedArray, sim)
        injector = FaultInjector(sim, array, fail_at(1, 5.0))
        run_ops(sim, array, n_ops=1)
        sim.run()
        assert not array.drives[1].fault_state.available
        assert injector.summary().disk_failures == 1


class TestMirroredDegradedMode:
    def test_reads_survive_single_failure(self):
        sim = Simulator()
        array = build(MirroredArray, sim)
        FaultInjector(sim, array, fail_at(0, 0.0))
        done = run_ops(sim, array, n_ops=20)
        assert len(done) == 20

    def test_writes_survive_single_failure(self):
        sim = Simulator()
        array = build(MirroredArray, sim)
        FaultInjector(sim, array, fail_at(0, 0.0))
        done = run_ops(sim, array, n_ops=20, kind=IoKind.WRITE)
        assert len(done) == 20

    def test_both_copies_failed_raises(self):
        sim = Simulator()
        array = build(MirroredArray, sim)
        n = len(array.primary.drives)
        spec = FaultSpec(
            failures=(DiskFailure(0.0, 0), DiskFailure(0.0, n))
        )
        FaultInjector(sim, array, spec)
        sim.run(until=1.0)
        with pytest.raises(DataUnavailableError):
            array.transfer(IoKind.READ, 0, 4 * (STRIPE // UNIT))

    def test_rebuild_completes_and_restores(self):
        sim = Simulator()
        array = build(MirroredArray, sim)
        injector = FaultInjector(sim, array, fail_at(0, 10.0, repair_after_ms=50.0))
        run_ops(sim, array, n_ops=40)
        sim.run()
        summary = injector.summary()
        assert summary.rebuilds_completed == 1
        assert summary.rebuild_bytes > 0
        assert array.drives[0].fault_state.available
        assert not array.degraded


class TestRaid5DegradedMode:
    def test_reads_reconstruct_around_failure(self):
        sim = Simulator()
        array = build(Raid5Array, sim)
        FaultInjector(sim, array, fail_at(2, 0.0))
        done = run_ops(sim, array, n_ops=20)
        assert len(done) == 20

    def test_degraded_read_costs_extra_drive_requests(self):
        # Reconstruction reads every surviving drive in the row, so a
        # degraded read issues more per-drive requests than a healthy one.
        healthy_sim = Simulator()
        healthy = build(Raid5Array, healthy_sim)
        run_ops(healthy_sim, healthy, n_ops=20)
        healthy_requests = sum(d.requests_served for d in healthy.drives)

        degraded_sim = Simulator()
        degraded = build(Raid5Array, degraded_sim)
        FaultInjector(degraded_sim, degraded, fail_at(2, 0.0))
        run_ops(degraded_sim, degraded, n_ops=20)
        degraded_requests = sum(d.requests_served for d in degraded.drives)
        assert degraded_requests > healthy_requests

    def test_writes_survive_single_failure(self):
        sim = Simulator()
        array = build(Raid5Array, sim)
        FaultInjector(sim, array, fail_at(1, 0.0))
        done = run_ops(sim, array, n_ops=20, kind=IoKind.WRITE)
        assert len(done) == 20

    def test_double_failure_raises(self):
        sim = Simulator()
        array = build(Raid5Array, sim)
        spec = FaultSpec(
            failures=(DiskFailure(0.0, 0), DiskFailure(0.0, 1))
        )
        FaultInjector(sim, array, spec)
        sim.run(until=1.0)
        with pytest.raises(DataUnavailableError):
            array.transfer(IoKind.READ, 0, 4 * (STRIPE // UNIT))

    def test_rebuild_completes_and_restores(self):
        sim = Simulator()
        array = build(Raid5Array, sim)
        injector = FaultInjector(sim, array, fail_at(1, 10.0, repair_after_ms=50.0))
        run_ops(sim, array, n_ops=40)
        sim.run()
        summary = injector.summary()
        assert summary.rebuilds_completed == 1
        assert summary.rebuild_bytes > 0
        assert not array.degraded

    def test_degraded_windows_are_metered(self):
        sim = Simulator()
        array = build(Raid5Array, sim)
        injector = FaultInjector(sim, array, fail_at(1, 50.0, repair_after_ms=100.0))
        run_ops(sim, array, n_ops=60)
        sim.run()
        summary = injector.summary()
        assert summary.healthy_ms > 0
        assert summary.degraded_ms > 0
        assert summary.healthy_bytes > 0
        assert summary.degraded_bytes > 0
        assert 0 < summary.degraded_percent_of_healthy


class TestTransientsAndSlowdowns:
    def test_transient_errors_slow_reads_down(self):
        clean_sim = Simulator()
        clean = build(StripedArray, clean_sim)
        clean_done = run_ops(clean_sim, clean, n_ops=40)

        faulty_sim = Simulator()
        faulty = build(StripedArray, faulty_sim)
        spec = FaultSpec(transients=(TransientFaults(rate=0.5),))
        injector = FaultInjector(faulty_sim, faulty, spec, seed=3)
        faulty_done = run_ops(faulty_sim, faulty, n_ops=40)

        assert injector.summary().transient_errors > 0
        assert faulty_done[-1] > clean_done[-1]

    def test_transients_do_not_affect_writes(self):
        sim = Simulator()
        array = build(StripedArray, sim)
        spec = FaultSpec(transients=(TransientFaults(rate=1.0),))
        injector = FaultInjector(sim, array, spec, seed=3)
        run_ops(sim, array, n_ops=10, kind=IoKind.WRITE)
        assert injector.summary().transient_errors == 0

    def test_slow_disk_stretches_service(self):
        clean_sim = Simulator()
        clean = build(StripedArray, clean_sim)
        clean_done = run_ops(clean_sim, clean, n_ops=40)

        slow_sim = Simulator()
        slow = build(StripedArray, slow_sim)
        spec = FaultSpec(slowdowns=(SlowDisk(0.0, 0, 4.0),))
        FaultInjector(slow_sim, slow, spec)
        slow_done = run_ops(slow_sim, slow, n_ops=40)
        assert slow_done[-1] > clean_done[-1]

    def test_slow_window_ends(self):
        sim = Simulator()
        array = build(StripedArray, sim)
        spec = FaultSpec(slowdowns=(SlowDisk(0.0, 0, 4.0, duration_ms=100.0),))
        FaultInjector(sim, array, spec)
        sim.run()
        assert array.drives[0].fault_state.slow_factor == 1.0

    def test_parse_then_inject_roundtrip(self):
        sim = Simulator()
        array = build(Raid5Array, sim)
        spec = parse_fault_spec(
            "fail:drive=1,at=20,repair=80;slow:drive=0,at=0,factor=2,for=50;"
            "transient:rate=0.1"
        )
        injector = FaultInjector(sim, array, spec, seed=11)
        run_ops(sim, array, n_ops=40)
        sim.run()
        summary = injector.summary()
        assert summary.disk_failures == 1
        assert summary.slowdowns == 1
        assert summary.rebuilds_completed == 1
