"""The divergence bisector: timeline comparison and exact-event localization."""

import pytest

from repro import (
    ExperimentConfig,
    Fingerprint,
    RestrictedPolicy,
    SystemConfig,
    bisect_divergence,
)
from repro.audit.bisect import DivergenceReport, compare_timelines
from repro.audit.replay import performance_replay
from repro.errors import ReproError

CAPS = dict(app_cap_ms=600.0, seq_cap_ms=600.0)


def small_config(seed=11):
    return ExperimentConfig(
        policy=RestrictedPolicy(),
        workload="TS",
        system=SystemConfig(scale=0.01),
        seed=seed,
    )


class TestCompareTimelines:
    def samples(self, *digests):
        return [
            Fingerprint(1000 * (i + 1), float(i), digest)
            for i, digest in enumerate(digests)
        ]

    def test_identical(self):
        a = self.samples("x", "y")
        assert compare_timelines(a, self.samples("x", "y")) is None

    def test_first_differing_digest(self):
        a = self.samples("x", "y", "z")
        b = self.samples("x", "q", "z")
        assert compare_timelines(a, b) == 1

    def test_length_mismatch_differs_at_first_missing(self):
        a = self.samples("x", "y")
        assert compare_timelines(a, self.samples("x")) == 1

    def test_time_mismatch_counts(self):
        a = self.samples("x")
        b = [Fingerprint(1000, 99.0, "x")]
        assert compare_timelines(a, b) == 0


class TestDivergenceReport:
    def test_render_no_divergence(self):
        text = DivergenceReport(diverged=False, probes=1).render()
        assert "no divergence" in text

    def test_cadence_validation(self):
        with pytest.raises(ReproError, match="cadence"):
            bisect_divergence(lambda a: None, lambda a: None, cadence=0)


class TestEndToEnd:
    def test_identical_replays_do_not_diverge(self):
        replay_a = performance_replay(small_config(), **CAPS)
        replay_b = performance_replay(small_config(), **CAPS)
        report = bisect_divergence(replay_a, replay_b, cadence=5_000)
        assert not report.diverged
        assert report.probes == 1

    def test_localizes_seeded_perturbation_exactly(self):
        # Run B silently burns one extra RNG draw just before event 2500;
        # the bisector must name that exact event and the rng section.
        def burn_one_draw(sim):
            busiest = max(
                (s for _, s in sim.auditor.ledger.items()),
                key=lambda s: s.draws,
            )
            busiest.uniform(0.0, 1.0)

        replay_a = performance_replay(small_config(), **CAPS)
        replay_b = performance_replay(
            small_config(), perturb_at=2_500, perturb=burn_one_draw, **CAPS
        )
        report = bisect_divergence(
            replay_a, replay_b, cadence=1_000, fine_limit=32
        )
        assert report.diverged
        assert report.first_event == 2_500
        assert "rng" in report.differing_sections
        assert report.bracket[0] < 2_500 <= report.bracket[1]
        assert report.state_a is not None and report.state_b is not None
        rendered = report.render()
        assert "#2500" in rendered and "rng" in rendered
