"""Canonical fingerprints: deterministic across runs, workers, engines."""

import pytest

from repro import (
    AuditConfig,
    ExperimentConfig,
    ExperimentRunner,
    ExperimentTask,
    RestrictedPolicy,
    Simulator,
    SystemConfig,
)
from repro.audit.fingerprint import canonical_digest
from repro.audit.replay import performance_replay
from repro.core.experiments import run_performance_experiment

CAPS = dict(app_cap_ms=600.0, seq_cap_ms=600.0)
AUDIT = AuditConfig(fingerprints=True, cadence_events=1_000)


def small_config(seed=11):
    return ExperimentConfig(
        policy=RestrictedPolicy(),
        workload="TS",
        system=SystemConfig(scale=0.01),
        seed=seed,
    )


@pytest.fixture(scope="module")
def baseline():
    return run_performance_experiment(small_config(), audit=AUDIT, **CAPS)


class TestCanonicalDigest:
    def test_key_order_independent(self):
        assert canonical_digest({"a": 1, "b": [2, 3]}) == canonical_digest(
            {"b": [2, 3], "a": 1}
        )

    def test_value_sensitive(self):
        assert canonical_digest({"a": 1}) != canonical_digest({"a": 2})


class TestTimelineIdentity:
    def test_repeated_runs_are_byte_identical(self, baseline):
        again = run_performance_experiment(small_config(), audit=AUDIT, **CAPS)
        assert again.fingerprints == baseline.fingerprints

    def test_fast_and_reference_engines_agree(self, baseline):
        reference = run_performance_experiment(
            small_config(),
            audit=AUDIT,
            simulator_factory=lambda: Simulator(immediate_queue=False),
            **CAPS,
        )
        assert reference.fingerprints == baseline.fingerprints

    def test_one_worker_and_four_agree(self, baseline):
        tasks = [
            ExperimentTask.performance(small_config(), audit=AUDIT, **CAPS)
        ]
        for jobs in (1, 4):
            runner = ExperimentRunner(jobs=jobs, use_cache=False)
            (outcome,) = runner.run(tasks)
            assert outcome.error is None
            assert outcome.result.fingerprints == baseline.fingerprints

    def test_different_seeds_diverge(self, baseline):
        other = run_performance_experiment(
            small_config(seed=12), audit=AUDIT, **CAPS
        )
        assert other.fingerprints != baseline.fingerprints

    def test_timeline_is_monotone_in_event_index(self, baseline):
        indices = [sample.index for sample in baseline.fingerprints]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)


class TestCaptureState:
    def test_payload_digest_matches_fingerprint(self):
        replay = performance_replay(small_config(), **CAPS)
        auditor = replay(
            AuditConfig(
                fingerprints=True, cadence_events=1_000, capture_state=True
            )
        )
        assert len(auditor.states) == len(auditor.fingerprints)
        for sample, state in zip(auditor.fingerprints, auditor.states):
            assert canonical_digest(state) == sample.digest
            assert set(state) == {
                "time_ms", "events_executed", "heap", "rng",
                "alloc", "extents", "queues",
            }
