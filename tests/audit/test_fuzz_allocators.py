"""Config fuzz: every policy, driven to allocation failure, under audit.

54 seeded (policy, workload, seed) combinations run the allocation test
with ``fill_fraction=1.0`` — churn continues until the first allocation
failure — with the invariant auditor sweeping every 100 operations plus
at the end.  A single conservation, extent-map, or ledger violation
anywhere fails the run; the assertion is simply that none occurs.
"""

import pytest

from repro import (
    AuditConfig,
    BuddyPolicy,
    ExperimentConfig,
    ExtentPolicy,
    FfsPolicy,
    FixedPolicy,
    LogStructuredPolicy,
    RestrictedPolicy,
    SystemConfig,
)
from repro.core.experiments import run_allocation_experiment

POLICIES = [
    BuddyPolicy(),
    RestrictedPolicy(),
    ExtentPolicy(),
    FfsPolicy(),
    FixedPolicy(),
    LogStructuredPolicy(),
]
WORKLOADS = ["TS", "TP", "SC"]
SEEDS = [3, 1991, 86_028_121]

CASES = [
    (policy, workload, seed)
    for policy in POLICIES
    for workload in WORKLOADS
    for seed in SEEDS
]
assert len(CASES) >= 50


@pytest.mark.parametrize(
    "policy,workload,seed",
    CASES,
    ids=[f"{p.label}-{w}-{s}" for p, w, s in CASES],
)
def test_allocation_to_failure_is_violation_free(policy, workload, seed):
    config = ExperimentConfig(
        policy=policy,
        workload=workload,
        system=SystemConfig(scale=0.005),
        seed=seed,
    )
    result = run_allocation_experiment(
        config,
        fill_fraction=1.0,
        audit=AuditConfig(cadence_events=100),
    )
    # Reaching here means every sweep passed; sanity-check the run did
    # real work before its first failure.
    assert result.file_count > 0


class TestFailurePathAttribution:
    """When an allocator *does* blow up, the error must name the policy
    and the public operation — a bare "block N already free" surfacing
    from a 54-config grid is unattributable."""

    def _restricted(self):
        from repro.alloc.restricted import (
            RestrictedBuddyAllocator,
            RestrictedBuddyConfig,
        )

        config = RestrictedBuddyConfig(block_sizes_units=(1, 8, 64))
        return RestrictedBuddyAllocator(10_000, config)

    def test_structural_error_carries_policy_and_op(self):
        from repro.errors import AllocatorStateError, SimulationError

        allocator = self._restricted()
        handle = allocator.create()
        allocator.extend(handle, 8)
        # Corrupt the handle: duplicate its extent so delete frees twice.
        handle.extents.append(handle.extents[0])
        with pytest.raises(AllocatorStateError) as excinfo:
            allocator.delete(handle)
        error = excinfo.value
        assert error.policy == "restricted-buddy"
        assert error.op == "delete"
        assert isinstance(error.original, SimulationError)
        assert "double free" in str(error.original)
        assert "[restricted-buddy/delete]" in str(error)

    def test_wrapped_error_not_double_wrapped(self):
        from repro.errors import AllocatorStateError

        allocator = self._restricted()
        handle = allocator.create()
        allocator.extend(handle, 8)
        handle.extents.append(handle.extents[0])
        with pytest.raises(AllocatorStateError) as excinfo:
            allocator.delete(handle)
        assert not isinstance(excinfo.value.original, AllocatorStateError)
        assert str(excinfo.value).count("[restricted-buddy") == 1
