"""Config fuzz: every policy, driven to allocation failure, under audit.

54 seeded (policy, workload, seed) combinations run the allocation test
with ``fill_fraction=1.0`` — churn continues until the first allocation
failure — with the invariant auditor sweeping every 100 operations plus
at the end.  A single conservation, extent-map, or ledger violation
anywhere fails the run; the assertion is simply that none occurs.
"""

import pytest

from repro import (
    AuditConfig,
    BuddyPolicy,
    ExperimentConfig,
    ExtentPolicy,
    FfsPolicy,
    FixedPolicy,
    LogStructuredPolicy,
    RestrictedPolicy,
    SystemConfig,
)
from repro.core.experiments import run_allocation_experiment

POLICIES = [
    BuddyPolicy(),
    RestrictedPolicy(),
    ExtentPolicy(),
    FfsPolicy(),
    FixedPolicy(),
    LogStructuredPolicy(),
]
WORKLOADS = ["TS", "TP", "SC"]
SEEDS = [3, 1991, 86_028_121]

CASES = [
    (policy, workload, seed)
    for policy in POLICIES
    for workload in WORKLOADS
    for seed in SEEDS
]
assert len(CASES) >= 50


@pytest.mark.parametrize(
    "policy,workload,seed",
    CASES,
    ids=[f"{p.label}-{w}-{s}" for p, w, s in CASES],
)
def test_allocation_to_failure_is_violation_free(policy, workload, seed):
    config = ExperimentConfig(
        policy=policy,
        workload=workload,
        system=SystemConfig(scale=0.005),
        seed=seed,
    )
    result = run_allocation_experiment(
        config,
        fill_fraction=1.0,
        audit=AuditConfig(cadence_events=100),
    )
    # Reaching here means every sweep passed; sanity-check the run did
    # real work before its first failure.
    assert result.file_count > 0
