"""The runtime invariant auditor: clean runs pass, corruption is caught."""

import dataclasses
from types import SimpleNamespace

import pytest

from repro import (
    AuditConfig,
    ExperimentConfig,
    InvariantAuditor,
    RestrictedPolicy,
    Simulator,
    SystemConfig,
    parse_fault_spec,
)
from repro.audit.replay import performance_replay
from repro.core.experiments import run_performance_experiment
from repro.errors import InvariantViolation, ReproError

CAPS = dict(app_cap_ms=600.0, seq_cap_ms=600.0)


def small_config(**overrides):
    base = dict(
        policy=RestrictedPolicy(),
        workload="TS",
        system=SystemConfig(scale=0.01),
        seed=11,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestDisabledPath:
    def test_fresh_simulator_has_no_auditor(self):
        assert Simulator().auditor is None

    def test_unaudited_result_has_no_fingerprints(self):
        result = run_performance_experiment(small_config(), **CAPS)
        assert result.fingerprints is None

    def test_auditing_does_not_perturb_the_science(self):
        plain = run_performance_experiment(small_config(), **CAPS)
        audited = run_performance_experiment(
            small_config(),
            audit=AuditConfig(fingerprints=True, cadence_events=2_000),
            **CAPS,
        )
        assert audited.fingerprints
        assert dataclasses.replace(audited, fingerprints=None) == plain


class TestAuditConfig:
    def test_cadence_must_be_positive(self):
        with pytest.raises(ReproError, match="cadence"):
            AuditConfig(cadence_events=0)

    def test_defaults_check_invariants_without_fingerprints(self):
        config = AuditConfig()
        assert config.invariants and not config.fingerprints


class TestCleanRuns:
    def test_zero_violations_on_figure2_point(self):
        result = run_performance_experiment(
            small_config(),
            audit=AuditConfig(fingerprints=True, cadence_events=1_000),
            **CAPS,
        )
        assert result.fingerprints  # run completed, sweeps happened

    def test_zero_violations_on_faulted_raid5(self):
        config = small_config(
            system=SystemConfig(scale=0.01, organization="raid5"),
            faults=parse_fault_spec("fail:drive=0,at=200,repair=500"),
        )
        result = run_performance_experiment(
            config,
            audit=AuditConfig(fingerprints=True, cadence_events=1_000),
            **CAPS,
        )
        assert result.fingerprints
        assert result.faults is not None and result.faults.disk_failures == 1

    def test_zero_violations_on_mirrored(self):
        config = small_config(
            system=SystemConfig(scale=0.01, organization="mirrored"),
            faults=parse_fault_spec("fail:drive=1,at=200,repair=500"),
        )
        result = run_performance_experiment(
            config, audit=AuditConfig(cadence_events=1_000), **CAPS
        )
        assert result.faults is not None


class TestCorruptionDetection:
    """Seed a deliberate mid-run corruption; the next sweep must raise."""

    def corrupt(self, perturb, expected_subsystem):
        replay = performance_replay(
            small_config(), perturb_at=2_000, perturb=perturb, **CAPS
        )
        with pytest.raises(InvariantViolation) as info:
            replay(AuditConfig(cadence_events=500))
        violation = info.value
        assert violation.subsystem == expected_subsystem
        assert violation.time_ms >= 0
        assert violation.excerpt.get("event_index", 0) >= 2_000
        return violation

    def test_leaked_allocator_units(self):
        def leak(sim):
            sim.auditor.allocator._allocated_units += 7

        self.corrupt(leak, "alloc")

    def test_dropped_queue_entry(self):
        def tamper(sim):
            sim.auditor.array.drives[0].requests_enqueued += 1

        violation = self.corrupt(tamper, "disk")
        assert violation.check == "queue-accounting"

    def test_rng_draw_count_regression(self):
        def rewind(sim):
            busiest = max(
                (s for _, s in sim.auditor.ledger.items()),
                key=lambda s: s.draws,
            )
            busiest.draws -= 1

        violation = self.corrupt(rewind, "rng")
        assert violation.check == "draw-ledger"

    def test_truncated_live_file(self):
        def truncate(sim):
            for fs_file in sim.auditor.fs.live_files():
                if fs_file.handle.allocated_units > 0:
                    fs_file.extmap._cumulative.clear()
                    return

        violation = self.corrupt(truncate, "fs")
        assert violation.check == "extmap-consistency"


class TestClockCheck:
    def test_backwards_clock_raises(self):
        auditor = InvariantAuditor(AuditConfig(cadence_events=10**9))
        auditor.after_event(SimpleNamespace(now=5.0))
        with pytest.raises(InvariantViolation, match="backwards"):
            auditor.after_event(SimpleNamespace(now=4.0))

    def test_stalled_clock_is_fine(self):
        auditor = InvariantAuditor(AuditConfig(cadence_events=10**9))
        auditor.after_event(SimpleNamespace(now=5.0))
        auditor.after_event(SimpleNamespace(now=5.0))
        assert auditor.event_index == 2
