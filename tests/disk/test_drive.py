"""Unit tests for the single-drive timing model."""

import pytest

from repro.disk.drive import DiskDrive
from repro.disk.geometry import TINY_DISK, WREN_IV
from repro.disk.request import DiskRequest, IoKind
from repro.errors import InvalidRequestError


def read(start, length):
    return DiskRequest(IoKind.READ, start, length)


class TestAddressing:
    def test_cylinder_major_layout(self):
        drive = DiskDrive(TINY_DISK)
        cylinder_bytes = TINY_DISK.cylinder_bytes
        assert drive.cylinder_of(0) == 0
        assert drive.cylinder_of(cylinder_bytes - 1) == 0
        assert drive.cylinder_of(cylinder_bytes) == 1

    def test_track_of(self):
        drive = DiskDrive(TINY_DISK)
        assert drive.track_of(TINY_DISK.track_bytes) == 1

    def test_start_angle_within_track(self):
        drive = DiskDrive(TINY_DISK)
        quarter = TINY_DISK.track_bytes // 4
        assert drive.start_angle(quarter) == pytest.approx(0.25)

    def test_cylinder_skew_applied(self):
        drive = DiskDrive(TINY_DISK)
        angle0 = drive.start_angle(0)
        angle_next_cyl = drive.start_angle(TINY_DISK.cylinder_bytes)
        expected_skew = (TINY_DISK.seek_time(1) / TINY_DISK.rotation_ms) % 1.0
        assert (angle_next_cyl - angle0) % 1.0 == pytest.approx(expected_skew)


class TestTransferTime:
    def test_partial_track(self):
        drive = DiskDrive(WREN_IV)
        t = drive.transfer_time(0, WREN_IV.track_bytes // 2)
        assert t == pytest.approx(WREN_IV.rotation_ms / 2)

    def test_whole_cylinder_has_no_seek(self):
        drive = DiskDrive(WREN_IV)
        t = drive.transfer_time(0, WREN_IV.cylinder_bytes)
        assert t == pytest.approx(WREN_IV.platters * WREN_IV.rotation_ms)

    def test_cylinder_crossing_adds_track_seek(self):
        drive = DiskDrive(WREN_IV)
        two_cylinders = drive.transfer_time(0, 2 * WREN_IV.cylinder_bytes)
        expected = 2 * WREN_IV.platters * WREN_IV.rotation_ms + WREN_IV.seek_time(1)
        assert two_cylinders == pytest.approx(expected)

    def test_transfer_time_o1_for_large_spans(self):
        drive = DiskDrive(WREN_IV)
        # A quarter of the drive in one call; just verify it computes.
        span = WREN_IV.capacity_bytes // 4
        assert drive.transfer_time(0, span) > 0


class TestService:
    def test_sequential_service_has_no_rotation_loss(self):
        """Two back-to-back sequential reads: the second incurs neither
        seek nor rotational delay (deterministic angular continuity)."""
        drive = DiskDrive(WREN_IV)
        first = drive.service(read(0, 8 * 1024), 0.0)
        t = first.total_ms
        second = drive.service(read(8 * 1024, 8 * 1024), t)
        assert second.seek_ms == 0.0
        assert second.rotation_ms == pytest.approx(0.0, abs=1e-6)

    def test_seek_charged_for_distance(self):
        drive = DiskDrive(WREN_IV)
        drive.head_cylinder = 0
        far = WREN_IV.cylinder_bytes * 100
        breakdown = drive.service(read(far, 1024), 0.0)
        assert breakdown.seek_ms == pytest.approx(WREN_IV.seek_time(100))

    def test_head_moves_to_end_of_transfer(self):
        drive = DiskDrive(WREN_IV)
        drive.service(read(0, 2 * WREN_IV.cylinder_bytes), 0.0)
        assert drive.head_cylinder == 1

    def test_rotation_bounded_by_one_revolution(self):
        drive = DiskDrive(WREN_IV)
        for start_ms in (0.0, 3.3, 7.7, 12.1):
            breakdown = drive.service(read(5 * 1024, 1024), start_ms)
            assert 0.0 <= breakdown.rotation_ms < WREN_IV.rotation_ms

    def test_request_past_capacity_raises(self):
        drive = DiskDrive(TINY_DISK)
        with pytest.raises(InvalidRequestError):
            drive.service(read(TINY_DISK.capacity_bytes - 512, 1024), 0.0)

    def test_breakdown_total(self):
        drive = DiskDrive(WREN_IV)
        breakdown = drive.service(read(123456, 4096), 1.0)
        assert breakdown.total_ms == pytest.approx(
            breakdown.seek_ms + breakdown.rotation_ms + breakdown.transfer_ms
        )


class TestLowerBound:
    def test_transfer_time_negative_start_raises(self):
        drive = DiskDrive(TINY_DISK)
        with pytest.raises(InvalidRequestError):
            drive.transfer_time(-1, 1024)

    def test_transfer_time_zero_length_raises(self):
        # A zero-length span would place its "last byte" before its first
        # and compute negative track crossings; it must be rejected, not
        # silently reported as a (slightly negative) transfer time.
        drive = DiskDrive(TINY_DISK)
        with pytest.raises(InvalidRequestError):
            drive.transfer_time(0, 0)
        with pytest.raises(InvalidRequestError):
            drive.transfer_time(4096, -512)

    def test_service_negative_start_raises_and_leaves_head(self):
        # Bypass DiskRequest's own validation to prove the drive checks
        # the lower bound itself (a negative offset would otherwise yield
        # a negative cylinder and a bogus seek).
        drive = DiskDrive(TINY_DISK)
        broken = object.__new__(DiskRequest)
        object.__setattr__(broken, "kind", IoKind.READ)
        object.__setattr__(broken, "start_byte", -4096)
        object.__setattr__(broken, "n_bytes", 1024)
        with pytest.raises(InvalidRequestError):
            drive.service(broken, 0.0)
        assert drive.head_cylinder == 0


class TestRequestValidation:
    def test_negative_start_raises(self):
        with pytest.raises(InvalidRequestError):
            DiskRequest(IoKind.READ, -1, 10)

    def test_zero_length_raises(self):
        with pytest.raises(InvalidRequestError):
            DiskRequest(IoKind.WRITE, 0, 0)

    def test_end_byte(self):
        assert read(10, 5).end_byte == 15
