"""Unit tests for the striped and concatenated disk organizations."""

import pytest

from repro.disk.array import ConcatArray, StripedArray
from repro.disk.geometry import TINY_DISK, WREN_IV
from repro.disk.request import IoKind
from repro.errors import ConfigurationError, InvalidRequestError
from repro.sim.engine import Simulator
from repro.units import KIB


def make_striped(sim, n_disks=4, stripe=24 * KIB, unit=KIB, geometry=TINY_DISK):
    return StripedArray(sim, geometry, n_disks, stripe, unit)


def run_transfer(sim, array, kind, start, units):
    """Run one transfer to completion; return elapsed simulated ms."""
    done = {}

    def proc():
        yield array.transfer(kind, start, units)
        done["t"] = sim.now

    sim.process(proc())
    sim.run()
    return done["t"]


class TestMapping:
    def test_round_robin_stripes(self):
        sim = Simulator()
        array = make_striped(sim)
        stripe_units = array.stripe_unit_bytes // array.disk_unit_bytes
        for stripe in range(8):
            drive, byte = array.locate_unit(stripe * stripe_units)
            assert drive == stripe % 4
            assert byte == (stripe // 4) * array.stripe_unit_bytes

    def test_offset_within_stripe(self):
        sim = Simulator()
        array = make_striped(sim)
        drive, byte = array.locate_unit(5)  # 5K into stripe 0
        assert drive == 0
        assert byte == 5 * KIB

    def test_capacity_whole_stripes(self):
        sim = Simulator()
        array = make_striped(sim)
        assert array.capacity_bytes % array.stripe_unit_bytes == 0
        assert array.capacity_units == array.capacity_bytes // KIB

    def test_per_drive_runs_merge_rows(self):
        sim = Simulator()
        array = make_striped(sim)
        stripe_units = array.stripe_unit_bytes // array.disk_unit_bytes
        # Two full rounds: each drive should get ONE merged run of 2 stripes.
        runs = array._per_drive_runs(0, 8 * stripe_units)
        for drive_runs in runs:
            assert len(drive_runs) == 1
            assert drive_runs[0][1] == 2 * array.stripe_unit_bytes

    def test_bad_stripe_unit_raises(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            StripedArray(sim, TINY_DISK, 4, 1500, 1024)  # not unit multiple

    def test_zero_disks_raises(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            StripedArray(sim, TINY_DISK, 0, 24 * KIB, KIB)


class TestStripedTransfers:
    def test_transfer_out_of_range_raises(self):
        sim = Simulator()
        array = make_striped(sim)
        with pytest.raises(InvalidRequestError):
            array.transfer(IoKind.READ, array.capacity_units - 1, 2)
        with pytest.raises(InvalidRequestError):
            array.transfer(IoKind.READ, 0, 0)

    def test_small_transfer_touches_one_drive(self):
        sim = Simulator()
        array = make_striped(sim)
        run_transfer(sim, array, IoKind.READ, 0, 8)
        busy_drives = [d for d in array.drives if d.requests_served]
        assert len(busy_drives) == 1

    def test_large_transfer_uses_all_drives(self):
        sim = Simulator()
        array = make_striped(sim)
        stripe_units = array.stripe_unit_bytes // array.disk_unit_bytes
        run_transfer(sim, array, IoKind.READ, 0, 8 * stripe_units)
        assert all(d.requests_served == 1 for d in array.drives)

    def test_parallelism_speedup(self):
        """Reading N stripes striped over N disks beats one disk serially."""
        sim_striped = Simulator()
        array = StripedArray(sim_striped, WREN_IV, 8, 24 * KIB, KIB)
        stripe_units = 24
        t_striped = run_transfer(
            sim_striped, array, IoKind.READ, 0, 8 * stripe_units
        )

        sim_single = Simulator()
        single = StripedArray(sim_single, WREN_IV, 1, 24 * KIB, KIB)
        t_single = run_transfer(
            sim_single, single, IoKind.READ, 0, 8 * stripe_units
        )
        assert t_striped < t_single / 3  # parallel across 8 spindles

    def test_sequential_throughput_near_max(self):
        """A long sequential striped read approaches the rated bandwidth."""
        sim = Simulator()
        array = StripedArray(sim, WREN_IV, 8, 24 * KIB, KIB)
        n_units = 16 * 1024  # 16 MiB
        elapsed = run_transfer(sim, array, IoKind.READ, 0, n_units)
        rate = n_units * KIB / elapsed
        assert rate / array.max_bandwidth_bytes_per_ms > 0.9

    def test_total_bytes_moved(self):
        sim = Simulator()
        array = make_striped(sim)
        run_transfer(sim, array, IoKind.WRITE, 0, 100)
        assert array.total_bytes_moved == 100 * KIB


class TestConcatArray:
    def test_linear_concatenation(self):
        sim = Simulator()
        array = ConcatArray(sim, TINY_DISK, 3, KIB)
        per_drive = TINY_DISK.capacity_bytes
        drive, byte = array.locate_unit(per_drive // KIB)
        assert drive == 1
        assert byte == 0

    def test_single_file_read_stays_on_one_drive(self):
        sim = Simulator()
        array = ConcatArray(sim, TINY_DISK, 3, KIB)
        run_transfer(sim, array, IoKind.READ, 10, 100)
        assert sum(1 for d in array.drives if d.requests_served) == 1

    def test_cross_drive_span_splits(self):
        sim = Simulator()
        array = ConcatArray(sim, TINY_DISK, 2, KIB)
        per_drive_units = TINY_DISK.capacity_bytes // KIB
        run_transfer(sim, array, IoKind.READ, per_drive_units - 4, 8)
        assert all(d.requests_served == 1 for d in array.drives)

    def test_busy_fraction(self):
        sim = Simulator()
        array = ConcatArray(sim, TINY_DISK, 2, KIB)
        assert array.busy_fraction(0.0) == 0.0
        run_transfer(sim, array, IoKind.READ, 0, 8)
        assert 0.0 < array.busy_fraction(sim.now) <= 1.0
