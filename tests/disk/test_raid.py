"""Unit tests for the redundant organizations: mirror, RAID-5, parity stripe."""

import pytest

from repro.disk.geometry import TINY_DISK
from repro.disk.raid import MirroredArray, ParityStripedArray, Raid5Array
from repro.disk.request import IoKind
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.units import KIB


def run_transfer(sim, array, kind, start, units):
    done = {}

    def proc():
        yield array.transfer(kind, start, units)
        done["t"] = sim.now

    sim.process(proc())
    sim.run()
    return done["t"]


class TestMirrored:
    def make(self, sim):
        return MirroredArray(sim, TINY_DISK, 2, 24 * KIB, KIB)

    def test_capacity_is_one_copy(self):
        sim = Simulator()
        mirror = self.make(sim)
        assert mirror.capacity_bytes == mirror.primary.capacity_bytes

    def test_write_goes_to_both_copies(self):
        sim = Simulator()
        mirror = self.make(sim)
        run_transfer(sim, mirror, IoKind.WRITE, 0, 8)
        assert mirror.primary.total_bytes_moved == 8 * KIB
        assert mirror.secondary.total_bytes_moved == 8 * KIB

    def test_reads_alternate_copies(self):
        sim = Simulator()
        mirror = self.make(sim)
        run_transfer(sim, mirror, IoKind.READ, 0, 8)
        run_transfer(sim, mirror, IoKind.READ, 0, 8)
        assert mirror.primary.total_bytes_moved == 8 * KIB
        assert mirror.secondary.total_bytes_moved == 8 * KIB

    def test_read_bandwidth_counts_both_halves(self):
        sim = Simulator()
        mirror = self.make(sim)
        assert mirror.max_bandwidth_bytes_per_ms == pytest.approx(
            2 * mirror.primary.max_bandwidth_bytes_per_ms
        )


class TestRaid5:
    def make(self, sim, n=5):
        return Raid5Array(sim, TINY_DISK, n, 24 * KIB, KIB)

    def test_capacity_excludes_parity(self):
        sim = Simulator()
        raid = self.make(sim, 5)
        per_drive = TINY_DISK.capacity_bytes - (
            TINY_DISK.capacity_bytes % (24 * KIB)
        )
        assert raid.capacity_bytes == per_drive * 4

    def test_too_few_drives_raises(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            Raid5Array(sim, TINY_DISK, 2, 24 * KIB, KIB)

    def test_parity_rotates(self):
        sim = Simulator()
        raid = self.make(sim, 5)
        assert raid._parity_drive_of_row(0) == 0
        assert raid._parity_drive_of_row(1) == 1
        assert raid._parity_drive_of_row(5) == 0

    def test_locate_skips_parity_drive(self):
        sim = Simulator()
        raid = self.make(sim, 5)
        stripe_units = 24  # 24K stripe / 1K unit
        drives = {raid.locate_unit(i * stripe_units)[0] for i in range(4)}
        # Row 0's parity drive is 0, so data occupies drives 1..4.
        assert drives == {1, 2, 3, 4}

    def test_small_write_is_read_modify_write(self):
        """A sub-stripe write costs 4 I/Os (2 reads + 2 writes)."""
        sim = Simulator()
        raid = self.make(sim, 5)
        run_transfer(sim, raid, IoKind.WRITE, 0, 4)
        total_requests = sum(d.requests_served for d in raid.drives)
        assert total_requests == 4

    def test_full_stripe_write_is_n_plus_one(self):
        """A full-row write costs one write per drive (parity for free)."""
        sim = Simulator()
        raid = self.make(sim, 5)
        stripe_units = 24
        run_transfer(sim, raid, IoKind.WRITE, 0, 4 * stripe_units)
        total_requests = sum(d.requests_served for d in raid.drives)
        assert total_requests == 5
        assert all(d.requests_served == 1 for d in raid.drives)

    def test_read_has_no_parity_overhead(self):
        sim = Simulator()
        raid = self.make(sim, 5)
        run_transfer(sim, raid, IoKind.READ, 0, 4)
        total_requests = sum(d.requests_served for d in raid.drives)
        assert total_requests == 1

    def test_small_write_slower_than_read(self):
        """The paper's future-work point: RAID hurts small writes."""
        sim_read = Simulator()
        raid_read = self.make(sim_read, 5)
        t_read = run_transfer(sim_read, raid_read, IoKind.READ, 0, 4)

        sim_write = Simulator()
        raid_write = self.make(sim_write, 5)
        t_write = run_transfer(sim_write, raid_write, IoKind.WRITE, 0, 4)
        assert t_write > t_read


class TestParityStriped:
    def make(self, sim, n=4):
        return ParityStripedArray(sim, TINY_DISK, n, KIB)

    def test_capacity_reserves_parity_share(self):
        sim = Simulator()
        array = self.make(sim, 4)
        assert array.capacity_bytes == int(
            TINY_DISK.capacity_bytes * 4 * (3 / 4)
        )

    def test_read_touches_single_drive(self):
        sim = Simulator()
        array = self.make(sim)
        run_transfer(sim, array, IoKind.READ, 0, 16)
        assert sum(1 for d in array.drives if d.requests_served) == 1

    def test_write_updates_neighbour_parity(self):
        sim = Simulator()
        array = self.make(sim)
        run_transfer(sim, array, IoKind.WRITE, 0, 16)
        touched = [i for i, d in enumerate(array.drives) if d.requests_served]
        assert touched == [0, 1]  # data on 0, parity RMW on 1

    def test_too_few_drives_raises(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            ParityStripedArray(sim, TINY_DISK, 1, KIB)
