"""Analytic validation: the simulated drive matches closed-form models.

A simulation study is only credible if its substrate agrees with first
principles.  These tests drive the disk model with workloads whose
expected behaviour has a closed form, and check agreement:

* random single-sector reads: E[latency] = E[seek] + E[rotation] + transfer,
  with E[seek] = ST + SI·C/3 (mean |distance| of two uniform cylinder
  draws) and E[rotation] = half a revolution;
* sustained sequential throughput = the derived cylinder rate;
* an open queue below saturation stays stable (bounded queue wait), and
  beyond saturation the drive is busy essentially always.
"""

import pytest

from repro.disk.drive import DiskDrive
from repro.disk.geometry import WREN_IV
from repro.disk.queue import QueuedDrive
from repro.disk.request import DiskRequest, IoKind
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStream


def read(start, length=1024):
    return DiskRequest(IoKind.READ, start, length)


class TestRandomAccessLatency:
    def test_mean_latency_matches_first_principles(self):
        """1000 uniform random 1K reads vs the analytic expectation."""
        drive = DiskDrive(WREN_IV)
        rng = RandomStream(7)
        clock = 0.0
        total = 0.0
        n = 1000
        for _ in range(n):
            offset = rng.uniform_int(0, WREN_IV.capacity_bytes - 1024)
            breakdown = drive.service(read(offset), clock)
            total += breakdown.total_ms
            clock += breakdown.total_ms + rng.exponential(3.0)
        measured = total / n

        cylinders = WREN_IV.cylinders
        expected_seek = (
            WREN_IV.single_track_seek_ms
            + WREN_IV.incremental_seek_ms * cylinders / 3
        )
        expected_rotation = WREN_IV.rotation_ms / 2
        expected_transfer = WREN_IV.transfer_ms(1024)
        expected = expected_seek + expected_rotation + expected_transfer
        assert measured == pytest.approx(expected, rel=0.05)

    def test_rotation_uniform(self):
        """Rotational delays of random reads are ~uniform over a turn."""
        drive = DiskDrive(WREN_IV)
        rng = RandomStream(9)
        clock = 0.0
        delays = []
        for _ in range(2000):
            offset = rng.uniform_int(0, WREN_IV.capacity_bytes - 1024)
            breakdown = drive.service(read(offset), clock)
            delays.append(breakdown.rotation_ms)
            clock += breakdown.total_ms + rng.exponential(1.7)
        mean = sum(delays) / len(delays)
        assert mean == pytest.approx(WREN_IV.rotation_ms / 2, rel=0.08)
        assert max(delays) < WREN_IV.rotation_ms


class TestSequentialRate:
    def test_full_surface_scan_at_sustained_rate(self):
        """Reading many consecutive cylinders == the derived bandwidth."""
        drive = DiskDrive(WREN_IV)
        n_bytes = 50 * WREN_IV.cylinder_bytes
        breakdown = drive.service(DiskRequest(IoKind.READ, 0, n_bytes), 0.0)
        rate = n_bytes / breakdown.total_ms
        assert rate == pytest.approx(WREN_IV.sustained_bytes_per_ms, rel=0.01)


class TestQueueingBehaviour:
    def _run_open_queue(self, interarrival_ms, duration_ms=60_000):
        sim = Simulator()
        drive = QueuedDrive(sim, WREN_IV)
        rng = RandomStream(3)

        def arrivals():
            while True:
                offset = rng.uniform_int(0, WREN_IV.capacity_bytes - 8192)
                drive.submit(read(offset, 8192))
                yield rng.exponential(interarrival_ms)

        sim.process(arrivals())
        sim.run(until=duration_ms)
        return sim, drive

    def test_below_saturation_is_stable(self):
        # Service time ~ 33 ms; arrivals every 100 ms -> rho ~ 0.33.
        sim, drive = self._run_open_queue(interarrival_ms=100.0)
        assert drive.utilization(sim.now) == pytest.approx(0.33, abs=0.08)
        assert drive.queue_wait.mean < 40.0  # light queueing only

    def test_beyond_saturation_pins_the_drive(self):
        # Arrivals every 10 ms >> capacity: the drive never goes idle.
        sim, drive = self._run_open_queue(interarrival_ms=10.0)
        assert drive.utilization(sim.now) > 0.95
        assert drive.queue_depth > 100  # unbounded backlog grows
