"""Unit tests for disk geometry: Table 1's drive and derived quantities."""

import pytest

from repro.disk.geometry import TINY_DISK, WREN_IV, DiskGeometry, paper_array_capacity_bytes
from repro.errors import ConfigurationError
from repro.units import KIB, MIB


class TestWrenIV:
    """The simulated CDC Wren IV must match Table 1."""

    def test_layout_parameters(self):
        assert WREN_IV.platters == 9
        assert WREN_IV.cylinders == 1600
        assert WREN_IV.track_bytes == 24 * KIB
        assert WREN_IV.rotation_ms == pytest.approx(16.67)

    def test_paper_capacity_is_2_8_gigabytes(self):
        # Table 1: 8 disks, "Total Capacity 2.8 G" (decimal gigabytes).
        total = paper_array_capacity_bytes(8)
        assert total == 2_831_155_200
        assert 2.8e9 < total < 2.9e9

    def test_paper_max_throughput_near_10_8(self):
        # Table 1: "Maximum Throughput 10.8 M/sec" for the 8-disk system.
        rate_mib_s = 8 * WREN_IV.sustained_bytes_per_ms * 1000 / MIB
        assert rate_mib_s == pytest.approx(10.8, abs=0.2)

    def test_seek_formula(self):
        # "an N track seek takes ST + N*SI ms"
        assert WREN_IV.seek_time(0) == 0.0
        assert WREN_IV.seek_time(1) == pytest.approx(5.5 + 0.032)
        assert WREN_IV.seek_time(100) == pytest.approx(5.5 + 3.2)

    def test_full_stroke_seek_reasonable(self):
        full = WREN_IV.seek_time(WREN_IV.cylinders - 1)
        assert 50.0 < full < 60.0  # 5.5 + 1599*0.032 ≈ 56.7 ms


class TestDerived:
    def test_tracks_and_cylinder_bytes(self):
        assert TINY_DISK.tracks == TINY_DISK.platters * TINY_DISK.cylinders
        assert TINY_DISK.cylinder_bytes == TINY_DISK.platters * TINY_DISK.track_bytes

    def test_transfer_time_proportional(self):
        half_track = WREN_IV.transfer_ms(WREN_IV.track_bytes // 2)
        assert half_track == pytest.approx(WREN_IV.rotation_ms / 2)

    def test_average_rotational_latency(self):
        assert WREN_IV.average_rotational_latency_ms == pytest.approx(16.67 / 2)

    def test_negative_seek_distance_raises(self):
        with pytest.raises(ConfigurationError):
            WREN_IV.seek_time(-1)


class TestScaling:
    def test_scaled_capacity(self):
        half = WREN_IV.scaled(0.5)
        assert half.cylinders == 800
        assert half.capacity_bytes == WREN_IV.capacity_bytes // 2

    def test_scaling_preserves_timing(self):
        small = WREN_IV.scaled(0.1)
        assert small.rotation_ms == WREN_IV.rotation_ms
        assert small.single_track_seek_ms == WREN_IV.single_track_seek_ms
        assert small.sustained_bytes_per_ms == WREN_IV.sustained_bytes_per_ms

    def test_scale_floor_one_cylinder(self):
        assert WREN_IV.scaled(1e-9).cylinders == 1

    def test_bad_scale_raises(self):
        with pytest.raises(ConfigurationError):
            WREN_IV.scaled(0.0)


class TestValidation:
    def test_zero_platters_raises(self):
        with pytest.raises(ConfigurationError):
            DiskGeometry(0, 10, 1024, 5.0, 0.1, 16.0)

    def test_zero_rotation_raises(self):
        with pytest.raises(ConfigurationError):
            DiskGeometry(1, 10, 1024, 5.0, 0.1, 0.0)

    def test_negative_seek_raises(self):
        with pytest.raises(ConfigurationError):
            DiskGeometry(1, 10, 1024, -5.0, 0.1, 16.0)
