"""Unit tests for the per-drive FCFS queue."""

import pytest

from repro.disk.geometry import WREN_IV
from repro.disk.queue import QueuedDrive
from repro.disk.request import DiskRequest, IoKind, ServiceBreakdown
from repro.errors import InvalidRequestError, SimulationError
from repro.sim.engine import Simulator, Waitable


def read(start, length):
    return DiskRequest(IoKind.READ, start, length)


class TestFcfs:
    def test_single_request_completes(self):
        sim = Simulator()
        drive = QueuedDrive(sim, WREN_IV)
        done = {}

        def proc():
            breakdown = yield drive.submit(read(0, 8192))
            done["at"] = sim.now
            done["breakdown"] = breakdown

        sim.process(proc())
        sim.run()
        assert done["at"] == pytest.approx(done["breakdown"].total_ms)
        assert drive.requests_served == 1
        assert drive.bytes_moved == 8192

    def test_requests_serialize_in_order(self):
        sim = Simulator()
        drive = QueuedDrive(sim, WREN_IV)
        finish = {}

        def proc(tag, request):
            yield drive.submit(request)
            finish[tag] = sim.now

        sim.process(proc("a", read(0, 8192)))
        sim.process(proc("b", read(1_000_000, 8192)))
        sim.run()
        assert finish["a"] < finish["b"]
        assert not drive.busy
        assert drive.queue_depth == 0

    def test_busy_time_accumulates(self):
        sim = Simulator()
        drive = QueuedDrive(sim, WREN_IV)

        def proc():
            yield drive.submit(read(0, 8192))
            yield drive.submit(read(8192, 8192))

        sim.process(proc())
        sim.run()
        assert drive.busy_ms == pytest.approx(sim.now)
        assert drive.utilization(sim.now) == pytest.approx(1.0)

    def test_queue_wait_measured(self):
        sim = Simulator()
        drive = QueuedDrive(sim, WREN_IV)

        def proc():
            first = drive.submit(read(0, 24 * 1024))
            second = drive.submit(read(10_000_000, 1024))
            yield first
            yield second

        sim.process(proc())
        sim.run()
        assert drive.queue_wait.count == 2
        assert drive.queue_wait.maximum > 0.0  # second waited behind first

    def test_idle_utilization_zero(self):
        sim = Simulator()
        drive = QueuedDrive(sim, WREN_IV)
        assert drive.utilization(100.0) == 0.0
        assert drive.utilization(0.0) == 0.0

    def test_latency_tally(self):
        sim = Simulator()
        drive = QueuedDrive(sim, WREN_IV)

        def proc():
            yield drive.submit(read(0, 1024))

        sim.process(proc())
        sim.run()
        assert drive.latency.count == 1
        assert drive.latency.mean > 0


class TestDriveMetering:
    def test_owner_meter_credited_per_request(self):
        from repro.sim.meters import ThroughputMeter

        class Owner:
            meter = None

        sim = Simulator()
        owner = Owner()
        owner.meter = ThroughputMeter(1e9, interval_ms=1e6)
        drive = QueuedDrive(sim, WREN_IV, owner=owner)

        def proc():
            yield drive.submit(read(0, 8192))
            yield drive.submit(read(8192, 8192))

        sim.process(proc())
        sim.run()
        assert owner.meter.total_bytes == pytest.approx(16384)

    def test_no_owner_no_crash(self):
        sim = Simulator()
        drive = QueuedDrive(sim, WREN_IV)

        def proc():
            yield drive.submit(read(0, 1024))

        sim.process(proc())
        sim.run()
        assert drive.requests_served == 1


class TestElevator:
    def _submit_spread(self, sim, drive, cylinders):
        """Submit one 1K read per cylinder while the drive is busy."""
        geometry = drive.geometry
        order = []

        def proc(cyl):
            yield drive.submit(read(cyl * geometry.cylinder_bytes, 1024))
            order.append(cyl)

        # First request pins the head at cylinder 0 and occupies the drive
        # while the rest queue up.
        sim.process(proc(0))
        for cyl in cylinders:
            sim.process(proc(cyl))
        sim.run()
        return order

    def test_elevator_serves_by_sweep(self):
        sim = Simulator()
        drive = QueuedDrive(sim, WREN_IV, discipline="elevator")
        order = self._submit_spread(sim, drive, [900, 100, 500])
        # After the pinning request at 0, the sweep ascends: 100, 500, 900.
        assert order == [0, 100, 500, 900]

    def test_fcfs_serves_in_arrival_order(self):
        sim = Simulator()
        drive = QueuedDrive(sim, WREN_IV)  # default fcfs
        order = self._submit_spread(sim, drive, [900, 100, 500])
        assert order == [0, 900, 100, 500]

    def test_elevator_reduces_total_seek_time(self):
        def total_time(discipline):
            sim = Simulator()
            drive = QueuedDrive(sim, WREN_IV, discipline=discipline)

            def proc(cyl):
                yield drive.submit(read(cyl * WREN_IV.cylinder_bytes, 1024))

            for cyl in (0, 1400, 10, 1300, 20, 1200, 30):
                sim.process(proc(cyl))
            sim.run()
            return sim.now

        assert total_time("elevator") < total_time("fcfs")

    def test_unknown_discipline_raises(self):
        with pytest.raises(SimulationError):
            QueuedDrive(Simulator(), WREN_IV, discipline="sstf!")


class TestRequestInvariants:
    """Malformed inputs fail loudly at the boundary, not deep in a
    simulation callback hours later."""

    def test_negative_start_rejected(self):
        with pytest.raises(InvalidRequestError):
            DiskRequest(IoKind.READ, -1, 1024)

    def test_nonpositive_length_rejected(self):
        with pytest.raises(InvalidRequestError):
            DiskRequest(IoKind.READ, 0, 0)
        with pytest.raises(InvalidRequestError):
            DiskRequest(IoKind.READ, 0, -8192)

    def test_out_of_range_span_rejected_at_submit(self):
        sim = Simulator()
        drive = QueuedDrive(sim, WREN_IV)
        capacity = WREN_IV.capacity_bytes
        with pytest.raises(InvalidRequestError):
            drive.submit(read(capacity, 1024))
        with pytest.raises(InvalidRequestError):
            # Starts in range but runs off the end of the platters.
            drive.submit(read(capacity - 512, 1024))
        # The rejected requests left no trace: the drive still works.
        assert drive.queue_depth == 0
        drive.submit(read(capacity - 1024, 1024))
        sim.run()
        assert drive.requests_served == 1

    def test_last_byte_span_accepted(self):
        sim = Simulator()
        drive = QueuedDrive(sim, WREN_IV)
        waitable = drive.submit(read(WREN_IV.capacity_bytes - 8192, 8192))
        sim.run()
        assert waitable.done

    def test_duplicate_completion_rejected(self):
        sim = Simulator()
        waitable = Waitable()
        waitable.succeed(sim)
        with pytest.raises(SimulationError):
            waitable.succeed(sim)

    def test_waiting_on_completed_waitable_rejected(self):
        sim = Simulator()
        waitable = Waitable()
        waitable.succeed(sim)
        with pytest.raises(SimulationError):
            waitable.on_success(lambda _sim, _value: None)

    def test_service_scale_rejects_negative(self):
        breakdown = ServiceBreakdown(1.0, 2.0, 3.0)
        with pytest.raises(InvalidRequestError):
            breakdown.scaled(-1.0)

    def test_service_scale_identity_and_stretch(self):
        breakdown = ServiceBreakdown(1.0, 2.0, 3.0)
        assert breakdown.scaled(1.0) is breakdown
        doubled = breakdown.scaled(2.0)
        assert doubled.total_ms == pytest.approx(12.0)
