"""Unit + property tests for the restricted buddy policy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.restricted import (
    RestrictedBuddyAllocator,
    RestrictedBuddyConfig,
    ladder_from_sizes,
)
from repro.errors import ConfigurationError, DiskFullError
from repro.sim.rng import RandomStream


def make(capacity=200_000, sizes=(1, 8, 64), grow=1, clustered=True, region=32_768):
    config = RestrictedBuddyConfig(
        block_sizes_units=sizes,
        grow_factor=grow,
        clustered=clustered,
        region_units=region,
    )
    return RestrictedBuddyAllocator(capacity, config, RandomStream(1))


class TestConfig:
    def test_bad_ladder_raises(self):
        with pytest.raises(ConfigurationError):
            RestrictedBuddyConfig(block_sizes_units=())
        with pytest.raises(ConfigurationError):
            RestrictedBuddyConfig(block_sizes_units=(8, 1))
        with pytest.raises(ConfigurationError):
            RestrictedBuddyConfig(block_sizes_units=(3, 7))

    def test_bad_grow_raises(self):
        with pytest.raises(ConfigurationError):
            RestrictedBuddyConfig(block_sizes_units=(1, 8), grow_factor=0)

    def test_ladder_from_sizes(self):
        assert ladder_from_sizes(["1K", "8K", "64K"], 1024) == (1, 8, 64)

    def test_ladder_not_unit_multiple_raises(self):
        with pytest.raises(ConfigurationError):
            ladder_from_sizes(["1K", "1.5K"], 1024)

    def test_label(self):
        config = RestrictedBuddyConfig(block_sizes_units=(1, 8), grow_factor=2,
                                       clustered=False)
        assert config.label() == "2 sizes/grow 2/unclustered"


class TestGrowPolicy:
    def test_grow_factor_one_tier_boundaries(self):
        """g=1: eight 1K blocks, then 8K blocks, then 64K at 72K total."""
        allocator = make()
        handle = allocator.create()
        allocator.extend(handle, 72)
        sizes = [extent.length for extent in handle.extents]
        assert sizes == [1] * 8 + [8] * 8
        allocator.extend(handle, 1)
        assert handle.extents[-1].length == 64

    def test_grow_factor_two_defers_tiers(self):
        """g=2: sixteen 1K blocks before the first 8K block (Figure 3)."""
        allocator = make(grow=2)
        handle = allocator.create()
        allocator.extend(handle, 17)
        sizes = [extent.length for extent in handle.extents]
        assert sizes == [1] * 16 + [8]

    def test_block_sizes_monotone_per_file(self):
        allocator = make()
        handle = allocator.create()
        allocator.extend(handle, 200)
        sizes = [extent.length for extent in handle.extents]
        assert sizes == sorted(sizes)

    def test_truncate_retier(self):
        """After truncating back into a lower tier, growth resumes there."""
        allocator = make()
        handle = allocator.create()
        allocator.extend(handle, 80)  # into the 64K tier
        assert handle.extents[-1].length == 64
        allocator.truncate(handle, 64)
        assert handle.policy_state["tier"] == 1  # back to the 8K tier
        allocator.extend(handle, 8)
        assert handle.extents[-1].length == 8

    def test_delete_resets_everything(self):
        allocator = make()
        handle = allocator.create()
        allocator.extend(handle, 100)
        allocator.delete(handle)
        assert allocator.allocated_units == 0


class TestContiguity:
    def test_single_file_mostly_contiguous(self):
        allocator = make()
        handle = allocator.create()
        allocator.extend(handle, 72)
        # All transitions within a tier are contiguous; only tier changes
        # may break (the Figure 3 effect).
        assert allocator.contiguity_fraction() >= 14 / 15

    def test_alignment_invariant(self):
        allocator = make()
        handles = []
        for index in range(10):
            handle = allocator.create()
            allocator.extend(handle, 10 + 17 * index)
            handles.append(handle)
        for handle in handles:
            for extent in handle.extents:
                assert extent.start % extent.length == 0

    def test_interleaved_files_stay_disjoint(self):
        allocator = make()
        a = allocator.create()
        b = allocator.create()
        for _ in range(10):
            allocator.extend(a, 4)
            allocator.extend(b, 4)
        allocator.check_no_overlap()
        allocator.check_free_space()


class TestRegions:
    def test_descriptors_spread_across_regions(self):
        allocator = make(capacity=131_072, region=32_768)  # 4 regions
        regions = set()
        for _ in range(4):
            handle = allocator.create()
            regions.add(handle.descriptor.start // 32_768)
        assert len(regions) > 1  # round-robin placement

    def test_file_blocks_near_descriptor(self):
        allocator = make(capacity=131_072, region=32_768)
        handle = allocator.create()
        allocator.extend(handle, 8)
        descriptor_region = handle.descriptor.start // 32_768
        block_region = handle.extents[0].start // 32_768
        assert block_region == descriptor_region

    def test_unclustered_single_region(self):
        allocator = make(clustered=False)
        assert allocator._n_regions == 1

    def test_spill_to_other_region_when_full(self):
        allocator = make(capacity=131_072, sizes=(1, 8), region=32_768)
        # Fill region 0 nearly solid, then force an allocation that cannot
        # fit there; it must land in another region, not fail.
        big = allocator.create()
        allocator.extend(big, 40_000)
        small = allocator.create()
        allocator.extend(small, 8)
        allocator.check_no_overlap()


class TestFailure:
    def test_disk_full_raises(self):
        allocator = make(capacity=1024, sizes=(1, 8))
        handle = allocator.create()
        with pytest.raises(DiskFullError):
            allocator.extend(handle, 10_000)

    def test_failed_extend_rolls_back(self):
        allocator = make(capacity=1024, sizes=(1, 8))
        handle = allocator.create()
        allocator.extend(handle, 100)
        extents_before = list(handle.extents)
        free_before = allocator.store.free_units
        with pytest.raises(DiskFullError):
            allocator.extend(handle, 10_000)
        assert handle.extents == extents_before
        assert allocator.store.free_units == free_before
        allocator.check_free_space()


@given(
    script=st.lists(
        st.tuples(
            st.sampled_from(["extend", "truncate", "delete", "create"]),
            st.integers(min_value=1, max_value=150),
        ),
        max_size=40,
    ),
    clustered=st.booleans(),
    grow=st.sampled_from([1, 2]),
)
@settings(max_examples=50, deadline=None)
def test_property_restricted_invariants(script, clustered, grow):
    allocator = make(capacity=8192, sizes=(1, 8, 64), grow=grow,
                     clustered=clustered, region=2048)
    live = []
    for action, amount in script:
        try:
            if action == "create" or not live:
                live.append(allocator.create())
            elif action == "extend":
                allocator.extend(live[amount % len(live)], amount)
            elif action == "truncate":
                allocator.truncate(live[amount % len(live)], amount)
            elif action == "delete":
                allocator.delete(live.pop(amount % len(live)))
        except DiskFullError:
            pass
        allocator.check_no_overlap()
        allocator.check_free_space()
    for handle in live:
        allocator.delete(handle)
    assert allocator.allocated_units == 0
    allocator.check_free_space()


class TestRegionSelectionSteps:
    """The paper's three-step region-selection algorithm, step by step."""

    def test_step1_splits_within_optimal_region_first(self):
        """Step 1 includes in-region splitting: "If a request is made to a
        specific region, and there is adequate contiguous space, but no
        block of the appropriate size, then a larger block is split."""
        allocator = make(capacity=131_072, sizes=(1, 8, 64), region=32_768)
        address, found = allocator._find_block(1, 0, None)
        assert found == 64  # a region-0 split, not a hunt elsewhere
        assert address // 32_768 == 0

    def test_step2_exact_block_elsewhere_when_region_exhausted(self):
        """When the optimal region has nothing at all, the hunt moves to
        the next region holding a block of the correct size."""
        allocator = make(capacity=131_072, sizes=(1, 8, 64), region=32_768)
        store = allocator.store
        # Exhaust region 0 completely.
        while True:
            candidate = store.free_exact(64, 0, 32_768)
            if candidate is None:
                break
            store.take(candidate, 64)
        # Seed loose 1K blocks in region 2 by splitting a 64-block there
        # and keeping its first unit allocated (so no re-coalescing).
        split_addr = store.free_exact(64, 65_536, 98_304)
        store.take_split(split_addr, 64, 1)
        address, found = allocator._find_block(1, 0, None)
        # Step 2: the exact-size block in region 2 wins over splitting a
        # larger block in region 1.
        assert found == 1
        assert address // 32_768 == 2

    def test_clustered_allocations_follow_descriptor_region(self):
        allocator = make(capacity=131_072, sizes=(1, 8, 64), region=32_768)
        handles = [allocator.create() for _ in range(6)]
        for handle in handles:
            allocator.extend(handle, 12)
        for handle in handles:
            descriptor_region = handle.descriptor.start // 32_768
            block_regions = {e.start // 32_768 for e in handle.extents}
            assert block_regions == {descriptor_region}
