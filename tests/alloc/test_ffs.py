"""Unit + property tests for the FFS-style blocks+fragments allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.ffs import FfsAllocator
from repro.errors import ConfigurationError, DiskFullError


def make(capacity=4096, block=8, group=None):
    return FfsAllocator(capacity, block, group_units=group)


class TestFragments:
    def test_tiny_file_uses_fragments(self):
        """"tiny files may be composed of fragments" — no whole block."""
        allocator = make()
        whole_before = allocator.free_whole_blocks
        handle = allocator.create()
        allocator.extend(handle, 3)
        assert handle.extents[-1].length == 3
        # Descriptor (1) + tail (3) fit in one broken block.
        assert allocator.free_whole_blocks == whole_before - 1

    def test_tails_share_partial_blocks(self):
        allocator = make()
        first = allocator.create()
        allocator.extend(first, 3)
        second = allocator.create()
        allocator.extend(second, 2)
        # Both descriptors and both tails pack into broken blocks;
        # far fewer blocks consumed than four.
        used_blocks = (4096 // 8) - allocator.free_whole_blocks
        assert used_blocks <= 2
        allocator.check_no_overlap()
        allocator.check_free_space()

    def test_large_file_gets_full_blocks_plus_tail(self):
        allocator = make()
        handle = allocator.create()
        allocator.extend(handle, 21)  # 2 blocks + 5 fragments
        sizes = [extent.length for extent in handle.extents]
        assert sizes == [8, 8, 5]

    def test_exact_multiple_has_no_tail(self):
        allocator = make()
        handle = allocator.create()
        allocator.extend(handle, 16)
        assert all(extent.length == 8 for extent in handle.extents)


class TestTailPromotion:
    def test_growth_promotes_the_tail(self):
        """The FFS fragment copy: growing past the tail re-allocates it."""
        allocator = make()
        handle = allocator.create()
        allocator.extend(handle, 3)
        allocator.extend(handle, 3)  # 3+3 = 6 fragments, still one tail
        assert handle.policy_state.get("remapped") or True  # popped by FS
        sizes = [extent.length for extent in handle.extents]
        assert sizes == [6]
        allocator.check_free_space()

    def test_promotion_to_full_block(self):
        allocator = make()
        handle = allocator.create()
        allocator.extend(handle, 5)
        allocator.extend(handle, 3)  # 5+3 = 8 -> one whole block, no tail
        sizes = [extent.length for extent in handle.extents]
        assert sizes == [8]

    def test_only_one_tail_ever(self):
        allocator = make()
        handle = allocator.create()
        for amount in (3, 4, 9, 2, 7):
            allocator.extend(handle, amount)
            partial = [
                extent for extent in handle.extents if extent.length % 8
            ]
            assert len(partial) <= 1
            if partial:
                assert partial[0] is handle.extents[-1]
        allocator.check_no_overlap()
        allocator.check_free_space()

    def test_accounting_survives_promotion(self):
        allocator = make()
        handle = allocator.create()
        allocator.extend(handle, 3)
        allocator.extend(handle, 3)
        assert handle.allocated_units == 6
        assert allocator.allocated_units == 7  # + descriptor


class TestPlacement:
    def test_descriptors_rotate_groups(self):
        allocator = make(capacity=4096, group=1024)
        groups = {allocator.create().descriptor.start // 1024 for _ in range(4)}
        assert len(groups) == 4

    def test_blocks_prefer_descriptor_group(self):
        allocator = make(capacity=4096, group=1024)
        handle = allocator.create()
        allocator.extend(handle, 16)
        descriptor_group = handle.descriptor.start // 1024
        for extent in handle.extents:
            assert extent.start // 1024 == descriptor_group

    def test_spills_to_other_groups_when_full(self):
        allocator = make(capacity=4096, group=1024)
        big = allocator.create()
        allocator.extend(big, 1500)  # overflows its group
        allocator.check_no_overlap()
        allocator.check_free_space()


class TestFailure:
    def test_disk_full(self):
        allocator = make(capacity=64)
        handle = allocator.create()
        with pytest.raises(DiskFullError):
            allocator.extend(handle, 1000)
        allocator.check_free_space()

    def test_failed_extend_preserves_file_length(self):
        allocator = make(capacity=64)
        handle = allocator.create()
        allocator.extend(handle, 11)  # block + 3-fragment tail
        before = handle.allocated_units
        with pytest.raises(DiskFullError):
            allocator.extend(handle, 1000)
        assert handle.allocated_units == before
        allocator.check_no_overlap()
        allocator.check_free_space()

    def test_bad_construction(self):
        with pytest.raises(ConfigurationError):
            FfsAllocator(100, 1)
        with pytest.raises(ConfigurationError):
            FfsAllocator(4, 8)


@given(
    script=st.lists(
        st.tuples(st.sampled_from(["grow", "truncate", "delete"]),
                  st.integers(min_value=1, max_value=60)),
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_ffs_invariants(script):
    allocator = make(capacity=2048, group=512)
    live = []
    for action, amount in script:
        try:
            if action == "grow":
                if not live or amount % 2:
                    live.append(allocator.create())
                allocator.extend(live[amount % len(live)], amount)
            elif action == "truncate" and live:
                allocator.truncate(live[amount % len(live)], amount)
            elif action == "delete" and live:
                allocator.delete(live.pop(amount % len(live)))
        except DiskFullError:
            pass
        allocator.check_no_overlap()
        allocator.check_free_space()
    for handle in live:
        allocator.delete(handle)
    assert allocator.free_whole_blocks == 2048 // 8
    assert allocator.partial_block_count == 0
