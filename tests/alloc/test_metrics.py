"""Unit tests for the §3 fragmentation metrics."""

import pytest

from repro.alloc.fixed import FixedBlockAllocator
from repro.alloc.metrics import measure_fragmentation


class TestInternalFragmentation:
    def test_paper_example_1k_in_4k(self):
        """"a 1K file stored in a 4K block suffers internal fragmentation
        of 75%" — modulo the (fully used) descriptor block."""
        allocator = FixedBlockAllocator(1000, 4)
        handle = allocator.create()
        allocator.extend(handle, 4)
        report = measure_fragmentation(allocator, {handle.file_id: 1.0})
        # data: 4 allocated 1 used; descriptor: 4 allocated 4 used.
        assert report.internal_fraction == pytest.approx(3 / 8)

    def test_fully_used_file_no_internal(self):
        allocator = FixedBlockAllocator(1000, 4)
        handle = allocator.create()
        allocator.extend(handle, 8)
        report = measure_fragmentation(allocator, {handle.file_id: 8.0})
        assert report.internal_fraction == 0.0

    def test_used_capped_at_allocation(self):
        allocator = FixedBlockAllocator(1000, 4)
        handle = allocator.create()
        allocator.extend(handle, 4)
        report = measure_fragmentation(allocator, {handle.file_id: 999.0})
        assert report.internal_fraction == 0.0

    def test_empty_system(self):
        allocator = FixedBlockAllocator(1000, 4)
        report = measure_fragmentation(allocator, {})
        assert report.internal_fraction == 0.0
        assert report.external_fraction == 1.0


class TestReportSelfConsistency:
    def test_used_units_carries_fraction(self):
        """Fractional fills must survive into ``used_units`` — truncation
        made the reported count disagree with ``internal_fraction``."""
        allocator = FixedBlockAllocator(1000, 4)
        handle = allocator.create()
        allocator.extend(handle, 4)
        report = measure_fragmentation(allocator, {handle.file_id: 2.5})
        # data: 4 allocated, 2.5 used; descriptor: 4 allocated, 4 used.
        assert report.used_units == pytest.approx(6.5)
        assert report.internal_fraction == pytest.approx(
            (report.allocated_units - report.used_units) / report.allocated_units
        )

    def test_internal_fraction_recomputable_from_fields(self):
        allocator = FixedBlockAllocator(1000, 4)
        handles = [allocator.create() for _ in range(3)]
        fills = {}
        for index, handle in enumerate(handles):
            allocator.extend(handle, 4)
            fills[handle.file_id] = 0.3 + index  # 0.3, 1.3, 2.3
        report = measure_fragmentation(allocator, fills)
        recomputed = (
            report.allocated_units - report.used_units
        ) / report.allocated_units
        assert report.internal_fraction == pytest.approx(recomputed, abs=0.0)


class TestExternalFragmentation:
    def test_external_is_free_over_capacity(self):
        allocator = FixedBlockAllocator(1000, 4)
        handle = allocator.create()
        allocator.extend(handle, 496)
        report = measure_fragmentation(allocator, {handle.file_id: 496.0})
        assert report.external_fraction == pytest.approx(0.5)

    def test_percent_properties(self):
        allocator = FixedBlockAllocator(1000, 4)
        handle = allocator.create()
        allocator.extend(handle, 496)
        report = measure_fragmentation(allocator, {handle.file_id: 248.0})
        assert report.external_percent == pytest.approx(50.0)
        assert report.internal_percent == pytest.approx(100 * 248 / 500)
