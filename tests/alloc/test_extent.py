"""Unit + property tests for the extent-based allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.extent import ExtentAllocator, ExtentSizeConfig, FitPolicy
from repro.errors import ConfigurationError, DiskFullError
from repro.sim.rng import RandomStream


def make(capacity=100_000, means=(8, 512), fit=FitPolicy.FIRST_FIT, seed=1):
    return ExtentAllocator(
        capacity, ExtentSizeConfig(range_means_units=means), fit, RandomStream(seed)
    )


class TestSizeConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExtentSizeConfig(range_means_units=())
        with pytest.raises(ConfigurationError):
            ExtentSizeConfig(range_means_units=(8, 4))  # descending
        with pytest.raises(ConfigurationError):
            ExtentSizeConfig(range_means_units=(0,))

    def test_pick_range_log_distance(self):
        config = ExtentSizeConfig(range_means_units=(1, 8, 1024))
        assert config.pick_range_mean(1) == 1
        assert config.pick_range_mean(8) == 8
        assert config.pick_range_mean(24) == 8      # 3x from 8, 42x from 1024
        assert config.pick_range_mean(512) == 1024  # 2x from 1024, 64x from 8
        assert config.pick_range_mean(0) == 1       # no hint -> smallest

    def test_n_ranges(self):
        assert ExtentSizeConfig(range_means_units=(1, 2, 4)).n_ranges == 3


class TestFileExtentSize:
    def test_extent_size_drawn_once_per_file(self):
        allocator = make()
        handle = allocator.create(size_hint_units=512)
        allocator.extend(handle, 2000)
        sizes = {extent.length for extent in handle.extents}
        assert len(sizes) == 1  # every extent of a file is its extent size

    def test_extent_size_near_range_mean(self):
        """sigma = 10% of mean: nearly all draws within ±40%."""
        allocator = make(means=(1000,))
        for _ in range(50):
            handle = allocator.create(size_hint_units=1000)
            size = handle.policy_state["extent_units"]
            assert 600 <= size <= 1400

    def test_growth_in_extent_chunks(self):
        allocator = make(means=(100,), seed=3)
        handle = allocator.create(size_hint_units=100)
        extent_units = handle.policy_state["extent_units"]
        allocator.extend(handle, extent_units * 2 + 1)
        assert handle.extent_count == 3


class TestFitPolicies:
    def test_first_fit_prefers_low_addresses(self):
        allocator = make(fit=FitPolicy.FIRST_FIT, means=(10,))
        first = allocator.create(size_hint_units=10)
        allocator.extend(first, 10)
        second = allocator.create(size_hint_units=10)
        allocator.extend(second, 10)
        assert second.extents[0].start > first.extents[0].start
        # Delete the first; its low hole is reused immediately.
        hole = first.extents[0].start
        allocator.delete(first)
        third = allocator.create(size_hint_units=10)
        allocator.extend(third, 5)
        assert third.extents[0].start <= hole + 2  # descriptor may nibble

    def test_best_fit_leaves_large_holes_intact(self):
        allocator = make(capacity=1000, means=(50,), fit=FitPolicy.BEST_FIT, seed=9)
        a = allocator.create(size_hint_units=50)
        allocator.extend(a, 40)
        b = allocator.create(size_hint_units=50)
        allocator.extend(b, 40)
        size_a = a.extents[0].length
        allocator.delete(a)  # a hole of exactly one extent + descriptor
        c = allocator.create(size_hint_units=50)
        allocator.extend(c, 40)
        # Best fit reuses the freed extent-sized hole rather than the big
        # tail hole.
        assert c.extents[0].start < b.extents[0].start + b.extents[0].length + 4

    def test_disk_full_raises(self):
        allocator = make(capacity=100, means=(30,), seed=2)
        handle = allocator.create(size_hint_units=30)
        with pytest.raises(DiskFullError):
            allocator.extend(handle, 10_000)

    def test_failed_extend_rolls_back_partial(self):
        allocator = make(capacity=100, means=(30,), seed=2)
        handle = allocator.create(size_hint_units=30)
        free_before = allocator.free_units
        with pytest.raises(DiskFullError):
            allocator.extend(handle, 10_000)
        assert allocator.free_units == free_before
        assert handle.extent_count == 0
        allocator.check_free_space()


class TestCoalescing:
    def test_delete_coalesces_adjacent_extents(self):
        allocator = make(capacity=10_000, means=(100,), seed=4)
        handles = [allocator.create(size_hint_units=100) for _ in range(5)]
        for handle in handles:
            allocator.extend(handle, 250)
        for handle in handles:
            allocator.delete(handle)
        assert allocator.free_units == 10_000
        assert allocator.hole_count == 1
        assert allocator.largest_hole_units == 10_000

    def test_truncate_returns_tail_extents(self):
        allocator = make(means=(100,), seed=5)
        handle = allocator.create(size_hint_units=100)
        allocator.extend(handle, 350)
        count = handle.extent_count
        extent_units = handle.policy_state["extent_units"]
        allocator.truncate(handle, extent_units)
        assert handle.extent_count == count - 1
        allocator.check_free_space()

    def test_average_extents_per_file(self):
        allocator = make(means=(100,), seed=6)
        a = allocator.create(size_hint_units=100)
        allocator.extend(a, 100)
        b = allocator.create(size_hint_units=100)
        allocator.extend(b, 300)
        average = allocator.average_extents_per_file()
        assert average == pytest.approx((a.extent_count + b.extent_count) / 2)


@given(
    actions=st.lists(
        st.tuples(st.sampled_from(["grow", "shrink", "delete"]),
                  st.integers(min_value=1, max_value=400)),
        max_size=40,
    ),
    fit=st.sampled_from([FitPolicy.FIRST_FIT, FitPolicy.BEST_FIT]),
)
@settings(max_examples=60, deadline=None)
def test_property_extent_allocator_invariants(actions, fit):
    allocator = make(capacity=20_000, means=(50,), fit=fit, seed=11)
    live = []
    for action, amount in actions:
        try:
            if action == "grow":
                if not live or amount % 3 == 0:
                    live.append(allocator.create(size_hint_units=50))
                allocator.extend(live[-1], amount)
            elif action == "shrink" and live:
                allocator.truncate(live[amount % len(live)], amount)
            elif action == "delete" and live:
                allocator.delete(live.pop(amount % len(live)))
        except DiskFullError:
            pass
        allocator.check_free_space()
        allocator.check_no_overlap()
    for handle in live:
        allocator.delete(handle)
    assert allocator.free_units == 20_000
    assert allocator.hole_count == 1
