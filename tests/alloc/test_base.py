"""Unit tests for the shared Allocator interface and Extent type."""

import pytest

from repro.alloc.base import Extent
from repro.alloc.fixed import FixedBlockAllocator
from repro.errors import FileSystemError


class TestExtent:
    def test_end(self):
        assert Extent(10, 5).end == 15

    def test_invalid_raises(self):
        with pytest.raises(FileSystemError):
            Extent(-1, 5)
        with pytest.raises(FileSystemError):
            Extent(0, 0)

    def test_frozen(self):
        extent = Extent(0, 1)
        with pytest.raises(AttributeError):
            extent.start = 5


class TestAllocatorAccounting:
    def make(self):
        return FixedBlockAllocator(1000, 4)

    def test_capacity_must_be_positive(self):
        with pytest.raises(FileSystemError):
            FixedBlockAllocator(0, 4)

    def test_file_ids_unique(self):
        allocator = self.make()
        ids = {allocator.create().file_id for _ in range(10)}
        assert len(ids) == 10

    def test_utilization(self):
        allocator = self.make()
        handle = allocator.create()
        allocator.extend(handle, 96)
        assert allocator.utilization == pytest.approx(0.1)  # 100 of 1000

    def test_extend_non_positive_raises(self):
        allocator = self.make()
        handle = allocator.create()
        with pytest.raises(FileSystemError):
            allocator.extend(handle, 0)

    def test_truncate_negative_raises(self):
        allocator = self.make()
        handle = allocator.create()
        with pytest.raises(FileSystemError):
            allocator.truncate(handle, -1)

    def test_truncate_more_than_allocated_frees_all(self):
        allocator = self.make()
        handle = allocator.create()
        allocator.extend(handle, 12)
        freed = allocator.truncate(handle, 9999)
        assert freed == 12
        assert handle.extent_count == 0

    def test_allocation_request_counters(self):
        allocator = self.make()
        handle = allocator.create()
        allocator.extend(handle, 4)
        assert allocator.allocation_requests == 1
        assert allocator.failed_requests == 0

    def test_check_no_overlap_detects_corruption(self):
        allocator = self.make()
        a = allocator.create()
        allocator.extend(a, 4)
        a.extents.append(a.extents[0])  # deliberate corruption
        with pytest.raises(FileSystemError):
            allocator.check_no_overlap()
