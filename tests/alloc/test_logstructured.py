"""Unit + property tests for the log-structured extension allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.logstructured import LogStructuredAllocator
from repro.errors import DiskFullError


class TestLogHead:
    def test_allocations_are_sequential(self):
        allocator = LogStructuredAllocator(10_000)
        a = allocator.create()
        allocator.extend(a, 100)
        b = allocator.create()
        allocator.extend(b, 100)
        # b's data begins exactly where a's ended (plus b's descriptor).
        assert b.extents[0].start == a.extents[0].end + 1
        assert allocator.head == b.extents[0].end

    def test_single_contiguous_extent_on_empty_log(self):
        allocator = LogStructuredAllocator(10_000)
        handle = allocator.create()
        allocator.extend(handle, 500)
        assert handle.extent_count == 1

    def test_threads_through_holes(self):
        allocator = LogStructuredAllocator(1_000)
        first = allocator.create()
        allocator.extend(first, 300)
        second = allocator.create()
        allocator.extend(second, 300)
        third = allocator.create()
        allocator.extend(third, 300)
        allocator.delete(second)  # a 301-unit hole mid-log
        # Fill the tail, then the next allocation wraps into the hole.
        fourth = allocator.create()
        allocator.extend(fourth, 300)
        assert fourth.allocated_units == 300
        allocator.check_no_overlap()
        allocator.check_free_space()

    def test_wraps_at_end_of_address_space(self):
        allocator = LogStructuredAllocator(1_000)
        a = allocator.create()
        allocator.extend(a, 600)
        allocator.delete(a)  # free the front again
        b = allocator.create()
        allocator.extend(b, 500)  # head is past 600; fits in tail
        c = allocator.create()
        allocator.extend(c, 300)  # must wrap to reuse the freed front
        assert c.extents[-1].end <= 1_000
        allocator.check_no_overlap()

    def test_disk_full_rolls_back(self):
        allocator = LogStructuredAllocator(100)
        handle = allocator.create()
        free_before = allocator.free_units
        with pytest.raises(DiskFullError):
            allocator.extend(handle, 1_000)
        assert allocator.free_units == free_before
        allocator.check_free_space()

    def test_adjacent_pieces_merge(self):
        allocator = LogStructuredAllocator(1_000)
        handle = allocator.create()
        allocator.extend(handle, 200)
        allocator.extend(handle, 200)  # continues at the head: same run
        assert handle.extent_count == 1 or (
            handle.extents[0].end == handle.extents[1].start
        )


class TestChurnBehaviour:
    def test_full_cycle_restores_space(self):
        allocator = LogStructuredAllocator(5_000)
        handles = []
        for index in range(10):
            handle = allocator.create()
            allocator.extend(handle, 50 + index * 17)
            handles.append(handle)
        for handle in handles:
            allocator.delete(handle)
        assert allocator.free_units == 5_000
        assert allocator.hole_count == 1

    def test_writes_stay_contiguous_under_churn(self):
        """The LFS selling point: new files are contiguous even after
        delete churn has riddled the disk with holes."""
        allocator = LogStructuredAllocator(50_000)
        live = []
        for round_number in range(30):
            handle = allocator.create()
            allocator.extend(handle, 100)
            live.append(handle)
            if round_number % 3 == 2:
                allocator.delete(live.pop(0))
        fresh = allocator.create()
        allocator.extend(fresh, 100)
        assert fresh.extent_count <= 2  # at most one hole boundary


@given(
    script=st.lists(
        st.tuples(st.sampled_from(["grow", "delete"]),
                  st.integers(min_value=1, max_value=200)),
        max_size=50,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_log_invariants(script):
    allocator = LogStructuredAllocator(8_000)
    live = []
    for action, amount in script:
        try:
            if action == "grow":
                handle = allocator.create()
                allocator.extend(handle, amount)
                live.append(handle)
            elif live:
                allocator.delete(live.pop(amount % len(live)))
        except DiskFullError:
            pass
        allocator.check_no_overlap()
        allocator.check_free_space()
        assert 0 <= allocator.head < 8_000
    for handle in live:
        allocator.delete(handle)
    assert allocator.free_units == 8_000
