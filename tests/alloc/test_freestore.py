"""Unit + property tests for the restricted buddy free store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.freestore import FreeBlockList, LadderFreeStore
from repro.errors import SimulationError


class TestFreeBlockList:
    def test_add_remove_contains(self):
        free_list = FreeBlockList()
        free_list.add(10)
        free_list.add(5)
        assert 10 in free_list
        assert 7 not in free_list
        free_list.remove(10)
        assert 10 not in free_list

    def test_double_add_raises(self):
        free_list = FreeBlockList()
        free_list.add(1)
        with pytest.raises(SimulationError):
            free_list.add(1)

    def test_remove_missing_raises(self):
        with pytest.raises(SimulationError):
            FreeBlockList().remove(1)

    def test_ordered_queries(self):
        free_list = FreeBlockList()
        for address in (30, 10, 20):
            free_list.add(address)
        assert free_list.first() == 10
        assert free_list.first_at_or_after(15) == 20
        assert free_list.first_in_range(15, 25) == 20
        assert free_list.first_in_range(15, 20) is None

    def test_structures_stay_consistent(self):
        free_list = FreeBlockList()
        for address in (5, 1, 9, 3, 7):
            free_list.add(address)
        free_list.remove(5)
        free_list.check_consistent()
        assert free_list.addresses() == [1, 3, 7, 9]


class TestLadderConstruction:
    def test_bad_ladders_raise(self):
        with pytest.raises(SimulationError):
            LadderFreeStore(100, ())
        with pytest.raises(SimulationError):
            LadderFreeStore(100, (8, 1))  # descending
        with pytest.raises(SimulationError):
            LadderFreeStore(100, (3, 8))  # 3 does not divide 8

    def test_initial_free_covers_addressable_space(self):
        store = LadderFreeStore(100, (1, 8))
        assert store.free_units == 100

    def test_tail_seeding(self):
        # 100 units with max size 64: one max block + tail of 36 -> 4x8 + 4x1.
        store = LadderFreeStore(100, (1, 8, 64))
        assert store.free_units == 100
        store.check_invariants()

    def test_unaddressable_residue_dropped(self):
        # Smallest block 4: 102 units leaves 2 unaddressable.
        store = LadderFreeStore(102, (4, 16))
        assert store.free_units == 100


class TestTakeAndSplit:
    def test_take_exact_max_block(self):
        store = LadderFreeStore(256, (1, 8, 64))
        address = store.free_exact(64, 0, 256)
        assert address == 0
        store.take(address, 64)
        assert store.free_units == 192
        store.check_invariants()

    def test_take_split_keeps_leading_piece(self):
        store = LadderFreeStore(64, (1, 8, 64))
        address = store.take_split(0, 64, 1)
        assert address == 0
        # Remainder: 7 x 1 and 7 x 8 on the free lists.
        assert store.free_units == 63
        store.check_invariants()

    def test_misaligned_take_raises(self):
        store = LadderFreeStore(64, (1, 8))
        with pytest.raises(SimulationError):
            store.take(3, 8)

    def test_free_exact_prefers_contiguity(self):
        store = LadderFreeStore(64, (1, 8))
        store.take_split(0, 8, 1)  # unit 0 taken; 1..7 free
        found = store.free_exact(1, 0, 64, prefer=1)
        assert found == 1
        # prefer an occupied address -> nearest following free block
        store.take(1, 1)
        found = store.free_exact(1, 0, 64, prefer=1)
        assert found == 2

    def test_free_exact_range_bounds(self):
        store = LadderFreeStore(128, (1, 8, 64))
        assert store.free_exact(64, 0, 64) == 0
        assert store.free_exact(64, 64, 128) == 64
        store.take(0, 64)
        assert store.free_exact(64, 0, 64) is None

    def test_splittable_finds_smallest_adequate(self):
        store = LadderFreeStore(128, (1, 8, 64))
        found = store.splittable(1, 0, 128)
        assert found == (0, 8) or found == (0, 64)
        # After taking all 8s... exercise: split a 64 to get an 8.
        store.take_split(0, 64, 8)
        store.check_invariants()


class TestReleaseCoalescing:
    def test_release_coalesces_to_max_and_bitmap(self):
        store = LadderFreeStore(64, (1, 8, 64))
        store.take_split(0, 64, 1)
        store.release(0, 1)  # the 8 singles coalesce into an 8, then 8s into 64
        assert store.free_units == 64
        store.check_invariants()

    def test_partial_group_does_not_coalesce(self):
        store = LadderFreeStore(64, (1, 8, 64))
        store.take_split(0, 64, 1)  # unit 0 in use
        store.take(1, 1)            # unit 1 in use
        store.release(0, 1)
        # Unit 1 still allocated: no coalescing past the 1-unit level.
        assert store.free_units == 63
        store.check_invariants()
        store.release(1, 1)
        assert store.free_units == 64
        store.check_invariants()

    def test_misaligned_release_raises(self):
        store = LadderFreeStore(64, (1, 8))
        with pytest.raises(SimulationError):
            store.release(3, 8)

    def test_double_release_raises(self):
        store = LadderFreeStore(64, (1, 8, 64))
        store.take_split(0, 64, 8)
        store.release(0, 8)
        with pytest.raises(SimulationError):
            store.release(0, 8)


@given(
    script=st.lists(
        st.tuples(st.sampled_from([1, 8, 64]), st.booleans()),
        max_size=50,
    )
)
@settings(max_examples=80, deadline=None)
def test_property_ladder_conservation(script):
    """Random take/release scripts preserve accounting and invariants."""
    store = LadderFreeStore(512, (1, 8, 64))
    live: list[tuple[int, int]] = []
    for size, release_one in script:
        if release_one and live:
            address, block = live.pop()
            store.release(address, block)
        else:
            found = store.free_exact(size, 0, 512)
            if found is not None:
                store.take(found, size)
                live.append((found, size))
            else:
                split = store.splittable(size, 0, 512)
                if split is not None:
                    address = store.take_split(split[0], split[1], size)
                    live.append((address, size))
        store.check_invariants()
    assert store.free_units + sum(size for _, size in live) == 512


class TestRaggedCapacityTail:
    """``capacity_units`` not a multiple of the largest ladder size.

    The bitmap covers only whole maximum-size blocks; the partial tail is
    seeded onto the free lists as the largest aligned blocks that fit,
    and any residue below the smallest block size is unaddressable.
    These tests pin that representation (the alternative — rejecting the
    config — was considered and not taken: ragged capacities arise from
    real disk geometries and the representation is exact).
    """

    def test_construction_accounts_for_tail(self):
        # capacity 100, ladder (8, 64): one max block (64), tail 64..100
        # seeds four 8-blocks (64, 72, 80, 88, 96 would overrun: 96+8=104)
        # -> 64 + 4*8 = 96 free; residue 100 % 8 = 4 unaddressable.
        store = LadderFreeStore(100, (8, 64))
        assert store.free_units == 96
        snap = store.snapshot()
        assert snap["max_slots"] == [0]
        assert snap["lists"] == {"8": [64, 72, 80, 88]}
        store.check_invariants()

    def test_tail_smaller_than_smallest_block_is_excluded(self):
        # capacity 68, ladder (8, 64): tail of 4 units is unaddressable.
        store = LadderFreeStore(68, (8, 64))
        assert store.free_units == 64
        assert store.snapshot()["lists"] == {}
        store.check_invariants()

    def test_tail_blocks_allocate_and_release(self):
        store = LadderFreeStore(100, (8, 64))
        found = store.free_exact(8, 64, 100)
        assert found == 64
        store.take(found, 8)
        assert store.free_units == 88
        store.check_invariants()
        store.release(found, 8)
        assert store.free_units == 96
        store.check_invariants()

    def test_tail_group_never_coalesces_into_phantom_max_block(self):
        # Free every tail block: they must stay 8-blocks — coalescing to
        # a 64-block at 64 would claim units 64..128 past capacity 100.
        store = LadderFreeStore(100, (8, 64))
        for address in (64, 72, 80, 88):
            store.take(address, 8)
        for address in (64, 72, 80, 88):
            store.release(address, 8)
        snap = store.snapshot()
        assert snap["lists"] == {"8": [64, 72, 80, 88]}
        assert snap["max_slots"] == [0]
        store.check_invariants()

    def test_double_free_detected_in_tail(self):
        store = LadderFreeStore(100, (8, 64))
        with pytest.raises(SimulationError, match="double free"):
            store.release(72, 8)

    def test_matches_reference_on_ragged_capacity(self):
        from repro.alloc.reference import ReferenceLadderFreeStore

        for capacity in (68, 100, 127, 129, 1000):
            store = LadderFreeStore(capacity, (1, 8, 64))
            reference = ReferenceLadderFreeStore(capacity, (1, 8, 64))
            assert store.snapshot() == reference.snapshot(), capacity
            assert store.free_units == capacity  # smallest size is 1
