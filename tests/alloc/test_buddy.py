"""Unit + property tests for Koch's binary buddy allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.buddy import BinaryBuddyAllocator
from repro.errors import DiskFullError
from repro.sim.rng import RandomStream
from repro.units import is_power_of_two


class TestDoubling:
    def test_first_extent_rounds_to_power_of_two(self):
        allocator = BinaryBuddyAllocator(1 << 16)
        handle = allocator.create()
        added = allocator.extend(handle, 5)
        assert [extent.length for extent in added] == [8]

    def test_growth_doubles_file(self):
        """"the extent size is chosen to double the current size of the file"""
        allocator = BinaryBuddyAllocator(1 << 16)
        handle = allocator.create()
        allocator.extend(handle, 8)
        allocator.extend(handle, 1)   # current 8 -> new extent 8
        allocator.extend(handle, 1)   # current 16 -> new extent 16
        allocator.extend(handle, 1)   # current 32 -> new extent 32
        assert [extent.length for extent in handle.extents] == [8, 8, 16, 32]

    def test_large_extend_adds_doubling_chain(self):
        allocator = BinaryBuddyAllocator(1 << 16)
        handle = allocator.create()
        allocator.extend(handle, 8)
        allocator.extend(handle, 100)  # needs 8 -> 16 -> 32 -> 64
        sizes = [extent.length for extent in handle.extents]
        assert sizes == [8, 8, 16, 32, 64]
        assert handle.allocated_units >= 108

    def test_every_extent_is_power_of_two(self):
        allocator = BinaryBuddyAllocator(100_000)
        handle = allocator.create()
        allocator.extend(handle, 77)
        for extent in handle.extents:
            assert is_power_of_two(extent.length)

    def test_alignment_invariant(self):
        """A block of size 2^k starts at a multiple of 2^k."""
        allocator = BinaryBuddyAllocator(1 << 16)
        handles = [allocator.create() for _ in range(5)]
        for index, handle in enumerate(handles):
            allocator.extend(handle, 3 + index * 7)
        for handle in handles:
            for extent in handle.extents:
                assert extent.start % extent.length == 0

    def test_doubling_beyond_capacity_fails_cleanly(self):
        """Doubling past the largest segment raises DiskFullError rather
        than requesting an order that cannot exist."""
        allocator = BinaryBuddyAllocator(64)
        handle = allocator.create()
        allocator.extend(handle, 32)
        with pytest.raises(DiskFullError):
            allocator.extend(handle, 31)  # doubling wants another 32+
        assert max(e.length for e in handle.extents) <= 64
        allocator.check_free_space()


class TestFreeSpace:
    def test_full_cycle_restores_everything(self):
        capacity = 100_000  # non-power-of-two: exercises the segment forest
        allocator = BinaryBuddyAllocator(capacity)
        handles = []
        for index in range(20):
            handle = allocator.create()
            allocator.extend(handle, 50 + index * 13)
            handles.append(handle)
        allocator.check_free_space()
        allocator.check_no_overlap()
        for handle in handles:
            allocator.delete(handle)
        assert allocator.free_units == capacity
        allocator.check_free_space()

    def test_coalescing_rebuilds_large_blocks(self):
        allocator = BinaryBuddyAllocator(1 << 12)
        # Split the whole space into two 2048 halves, then free both:
        # the buddy rule must knit the original 4096 block back together.
        low = allocator._allocate_block(11)
        high = allocator._allocate_block(11)
        assert {low, high} == {0, 2048}
        allocator._free_block(low, 11)
        assert allocator.free_block_counts() == {11: 1}
        allocator._free_block(high, 11)
        assert allocator.free_block_counts() == {12: 1}

    def test_no_coalescing_while_buddy_in_use(self):
        allocator = BinaryBuddyAllocator(1 << 12)
        low = allocator._allocate_block(11)
        high = allocator._allocate_block(11)
        allocator._free_block(high, 11)
        # Low half still allocated: the free half must stay at order 11.
        assert allocator.free_block_counts() == {11: 1}
        allocator._free_block(low, 11)

    def test_disk_full_reports_free(self):
        allocator = BinaryBuddyAllocator(64)
        handle = allocator.create()
        allocator.extend(handle, 32)
        with pytest.raises(DiskFullError) as info:
            allocator.extend(handle, 64)
        assert info.value.free_units == allocator.free_units

    def test_failed_extend_rolls_back(self):
        allocator = BinaryBuddyAllocator(128)
        handle = allocator.create()
        allocator.extend(handle, 16)
        snapshot = list(handle.extents)
        before = allocator.free_units
        with pytest.raises(DiskFullError):
            allocator.extend(handle, 1000)
        assert handle.extents == snapshot
        assert allocator.free_units == before
        allocator.check_free_space()

    def test_buddy_of_respects_segments(self):
        allocator = BinaryBuddyAllocator(96)  # segments: 64@0, 32@64
        # A 32-unit block at 64 is a whole segment: no buddy.
        assert allocator._buddy_of(64, 5) is None
        # A 32-unit block at 0 buddies with 32.
        assert allocator._buddy_of(0, 5) == 32

    def test_free_block_counts(self):
        allocator = BinaryBuddyAllocator(64)
        assert allocator.free_block_counts() == {6: 1}
        handle = allocator.create()
        counts = allocator.free_block_counts()
        assert sum(n << order for order, n in counts.items()) == 63


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=300), min_size=1, max_size=30),
    delete_mask=st.lists(st.booleans(), min_size=30, max_size=30),
)
@settings(max_examples=60)
def test_property_no_overlap_and_conservation(sizes, delete_mask):
    allocator = BinaryBuddyAllocator(8192, RandomStream(0))
    live = []
    for size, delete in zip(sizes, delete_mask):
        try:
            handle = allocator.create()
            allocator.extend(handle, size)
            live.append(handle)
        except DiskFullError:
            break
        if delete and live:
            victim = live.pop(0)
            allocator.delete(victim)
    allocator.check_no_overlap()
    allocator.check_free_space()
    allocated = sum(h.allocated_units + 1 for h in live)  # +1 descriptor
    assert allocated == allocator.allocated_units


class TestDecompose:
    def test_exact_bits(self):
        from repro.alloc.buddy import decompose_power_of_two

        assert decompose_power_of_two(7, 3) == [4, 2, 1]
        assert decompose_power_of_two(8, 3) == [8]
        assert decompose_power_of_two(1, 1) == [1]

    def test_tail_rounds_up(self):
        from repro.alloc.buddy import decompose_power_of_two

        assert decompose_power_of_two(31, 3) == [16, 8, 8]
        assert decompose_power_of_two(100, 2) == [64, 64]
        assert decompose_power_of_two(100, 1) == [128]

    def test_always_covers(self):
        from repro.alloc.buddy import decompose_power_of_two

        for n in range(1, 300):
            for terms in (1, 2, 3, 4):
                sizes = decompose_power_of_two(n, terms)
                assert len(sizes) <= terms
                assert sum(sizes) >= n
                assert sum(sizes) < 2 * n + 2
                assert all(s & (s - 1) == 0 for s in sizes)

    def test_bad_arguments(self):
        from repro.alloc.buddy import decompose_power_of_two
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            decompose_power_of_two(0, 3)
        with pytest.raises(ConfigurationError):
            decompose_power_of_two(5, 0)


class TestReallocator:
    def make_populated(self, n_files=10):
        allocator = BinaryBuddyAllocator(100_000)
        lengths = {}
        for index in range(n_files):
            handle = allocator.create()
            length = 50 + 313 * index
            # Grow in small steps so the doubling chain fragments badly.
            grown = 0
            while grown < length:
                step = min(40, length - grown)
                allocator.extend(handle, step)
                grown = handle.allocated_units
            lengths[handle.file_id] = length
        return allocator, lengths

    def test_reshapes_to_max_extents(self):
        allocator, lengths = self.make_populated()
        allocator.reallocate(lengths, max_extents=3)
        for handle in allocator.files.values():
            assert handle.extent_count <= 3
        allocator.check_no_overlap()
        allocator.check_free_space()

    def test_reduces_internal_fragmentation(self):
        from repro.alloc.metrics import measure_fragmentation

        allocator, lengths = self.make_populated()
        used = {fid: float(n) for fid, n in lengths.items()}
        before = measure_fragmentation(allocator, used).internal_fraction
        allocator.reallocate(lengths)
        after = measure_fragmentation(allocator, used).internal_fraction
        assert after < before
        assert after < 0.10  # Koch: "average under 4%" at scale

    def test_idempotent_second_run(self):
        allocator, lengths = self.make_populated()
        allocator.reallocate(lengths)
        assert allocator.reallocate(lengths) == 0  # already minimal

    def test_skips_unplaceable_files_without_corruption(self):
        allocator = BinaryBuddyAllocator(128)
        big = allocator.create()
        allocator.extend(big, 33)     # one 64-unit extent
        small = allocator.create()
        allocator.extend(small, 20)   # one 32-unit extent
        # big wants [32, 1] but no free 32-block exists (31 units remain,
        # fragmented smaller): it must be skipped, untouched, uncorrupted.
        before_big = list(big.extents)
        allocator.reallocate({big.file_id: 33, small.file_id: 20})
        assert big.extents == before_big
        assert small.extent_count <= 3
        allocator.check_no_overlap()
        allocator.check_free_space()
