"""Unit tests for the fixed-block baseline allocator."""

import pytest

from repro.alloc.fixed import FixedBlockAllocator
from repro.errors import ConfigurationError, DiskFullError, FileSystemError


def make(capacity=1000, block=4, aged=False):
    # Most structural tests use a fresh (sequential) free list so block
    # addresses are predictable; aging is covered explicitly below.
    return FixedBlockAllocator(capacity, block, aged=aged)


class TestAllocation:
    def test_blocks_are_block_sized(self):
        allocator = make()
        handle = allocator.create()
        added = allocator.extend(handle, 10)
        assert all(extent.length == 4 for extent in added)
        assert sum(extent.length for extent in added) == 12  # rounded up

    def test_initial_allocation_is_sequential(self):
        allocator = make()
        handle = allocator.create()  # descriptor takes block 0
        added = allocator.extend(handle, 12)
        starts = [extent.start for extent in added]
        assert starts == [4, 8, 12]

    def test_descriptor_costs_whole_block(self):
        allocator = make()
        handle = allocator.create()
        assert handle.descriptor.length == 4
        assert allocator.allocated_units == 4

    def test_freed_blocks_reused_lifo(self):
        """Churn scatters the free list — the aging the paper describes."""
        allocator = make()
        first = allocator.create()
        allocator.extend(first, 8)
        block_addresses = [extent.start for extent in first.extents]
        allocator.delete(first)
        second = allocator.create()
        added = allocator.extend(second, 4)
        # LIFO: the most recently freed block comes back first.
        assert added[0].start == block_addresses[0]

    def test_disk_full(self):
        allocator = make(capacity=20, block=4)  # 5 blocks
        handle = allocator.create()  # 1 block
        allocator.extend(handle, 16)  # 4 blocks
        with pytest.raises(DiskFullError) as info:
            allocator.extend(handle, 1)
        assert info.value.free_units == 0

    def test_failed_extend_leaves_state_clean(self):
        allocator = make(capacity=20, block=4)
        handle = allocator.create()
        allocator.extend(handle, 8)
        before = allocator.allocated_units
        with pytest.raises(DiskFullError):
            allocator.extend(handle, 100)
        assert allocator.allocated_units == before
        allocator.check_no_overlap()

    def test_truncate_frees_whole_blocks(self):
        allocator = make()
        handle = allocator.create()
        allocator.extend(handle, 16)
        freed = allocator.truncate(handle, 6)
        assert freed == 4  # one whole block; 6 units spans only 1.5 blocks
        assert handle.allocated_units == 12

    def test_delete_restores_free_space(self):
        allocator = make()
        handle = allocator.create()
        allocator.extend(handle, 40)
        allocator.delete(handle)
        assert allocator.allocated_units == 0
        assert allocator.free_blocks == 250

    def test_operations_on_deleted_file_raise(self):
        allocator = make()
        handle = allocator.create()
        allocator.delete(handle)
        with pytest.raises(FileSystemError):
            allocator.extend(handle, 4)
        with pytest.raises(FileSystemError):
            allocator.delete(handle)

    def test_foreign_extent_release_raises(self):
        from repro.alloc.base import Extent

        allocator = make()
        handle = allocator.create()
        allocator.extend(handle, 4)
        handle.extents.append(Extent(17, 3))  # misaligned garbage
        with pytest.raises(ConfigurationError):
            allocator.truncate(handle, 3)


class TestConstruction:
    def test_zero_block_raises(self):
        with pytest.raises(ConfigurationError):
            FixedBlockAllocator(100, 0)

    def test_capacity_smaller_than_block_raises(self):
        with pytest.raises(ConfigurationError):
            FixedBlockAllocator(3, 4)

    def test_usable_units_excludes_sliver(self):
        allocator = FixedBlockAllocator(1002, 4)
        assert allocator.usable_units == 1000

    def test_aged_free_list_is_scrambled(self):
        from repro.sim.rng import RandomStream

        aged = FixedBlockAllocator(10_000, 4, RandomStream(1), aged=True)
        handle = aged.create()
        added = aged.extend(handle, 40)
        starts = [extent.start for extent in added]
        assert starts != sorted(starts)  # not sequential

    def test_aged_is_deterministic_per_seed(self):
        from repro.sim.rng import RandomStream

        runs = []
        for _ in range(2):
            allocator = FixedBlockAllocator(10_000, 4, RandomStream(9), aged=True)
            handle = allocator.create()
            runs.append([e.start for e in allocator.extend(handle, 40)])
        assert runs[0] == runs[1]
