"""Randomized differential tests for the allocator hot-path rewrite.

Three layers of evidence that the optimized free structures make exactly
the decisions the originals made:

1. **Store level** — the production :class:`LadderFreeStore` and the
   retained :class:`ReferenceLadderFreeStore` (the pre-rewrite circular
   DLL + dict + bisect triple, kept verbatim in ``repro.alloc.reference``)
   answer identical queries and produce identical snapshots through long
   randomized alloc/split/release sequences, with ``check_invariants``
   run at every step.

2. **Policy level** — a :class:`RestrictedBuddyAllocator` backed by the
   production store and one backed by the reference store are driven
   through identical create/extend/truncate/delete sequences; their
   ``snapshot_free_state`` fingerprint payloads must match after every
   operation.

3. **All six policies** — every policy runs mixed create/extend/
   truncate/delete churn against an independent per-unit ownership
   model, with the policy's own ``audit_check`` (overlap + conservation)
   after every operation.
"""

import random

import pytest

from repro import (
    BuddyPolicy,
    ExtentPolicy,
    FfsPolicy,
    FixedPolicy,
    LogStructuredPolicy,
    RestrictedPolicy,
)
from repro.alloc.freestore import LadderFreeStore
from repro.alloc.reference import ReferenceLadderFreeStore
from repro.alloc.restricted import (
    RestrictedBuddyAllocator,
    RestrictedBuddyConfig,
)
from repro.errors import DiskFullError
from repro.sim.rng import RandomStream

# ---------------------------------------------------------------------------
# Layer 1: store vs reference store
# ---------------------------------------------------------------------------

STORE_CASES = [
    # (capacity, ladder, region_units)
    (4096, (1, 8, 64, 512), 1024),
    (4096, (1, 8, 64, 512), None),
    (4100, (1, 8, 64, 512), 1000),  # ragged capacity, ragged regions
    (777, (1, 4, 16), 100),
    (100, (8, 64), 64),
    (68, (8, 64), None),  # capacity not a multiple of the largest size
]


@pytest.mark.parametrize("capacity,sizes,region_units", STORE_CASES)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_store_matches_reference(capacity, sizes, region_units, seed):
    rng = random.Random(seed)
    new = LadderFreeStore(capacity, sizes, region_units=region_units)
    ref = ReferenceLadderFreeStore(capacity, sizes)
    assert new.snapshot() == ref.snapshot()
    held: list[tuple[int, int]] = []
    for step in range(1_500):
        size = rng.choice(sizes)
        if rng.random() < 0.55 or not held:
            low = rng.randrange(0, capacity)
            high = rng.randrange(low, capacity + 1)
            prefer = rng.choice([None, rng.randrange(0, capacity)])
            found = new.free_exact(size, low, high, prefer)
            assert found == ref.free_exact(size, low, high, prefer)
            split = new.splittable(size, low, high, prefer)
            assert split == ref.splittable(size, low, high, prefer)
            if found is not None and rng.random() < 0.8:
                new.take(found, size)
                ref.take(found, size)
                held.append((found, size))
            elif split is not None:
                address, block_size = split
                new.take_split(address, block_size, size)
                ref.take_split(address, block_size, size)
                held.append((address, size))
        else:
            address, size = held.pop(rng.randrange(len(held)))
            new.release(address, size)
            ref.release(address, size)
        assert new.free_units == ref.free_units
        if step % 50 == 0:
            assert new.snapshot() == ref.snapshot()
            new.check_invariants()
            ref.check_invariants()
    assert new.snapshot() == ref.snapshot()
    new.check_invariants()
    ref.check_invariants()


def test_store_rejects_double_free_like_reference():
    new = LadderFreeStore(4096, (1, 8, 64))
    ref = ReferenceLadderFreeStore(4096, (1, 8, 64))
    for store in (new, ref):
        store.take_split(0, 64, 8)
    for store in (new, ref):
        store.release(0, 8)
    messages = []
    for store in (new, ref):
        with pytest.raises(Exception) as excinfo:
            store.release(0, 8)
        messages.append(str(excinfo.value))
    assert messages[0] == messages[1]
    assert "double free" in messages[0]


# ---------------------------------------------------------------------------
# Layer 2: restricted allocator, production store vs reference store
# ---------------------------------------------------------------------------


def _paired_allocators(capacity, sizes, region_units, clustered=True):
    config = RestrictedBuddyConfig(
        block_sizes_units=sizes,
        clustered=clustered,
        region_units=region_units,
    )
    production = RestrictedBuddyAllocator(capacity, config, RandomStream(7))
    shadow = RestrictedBuddyAllocator(capacity, config, RandomStream(7))
    shadow.store = ReferenceLadderFreeStore(capacity, sizes)
    return production, shadow


def _outcome(operation):
    """Run an allocator op; normalize disk-full failures for comparison."""
    try:
        return operation()
    except DiskFullError as error:
        return ("disk-full", error.requested_units, error.free_units)


@pytest.mark.parametrize("clustered", [True, False])
@pytest.mark.parametrize("seed", [11, 1991])
def test_restricted_allocator_matches_reference_store(clustered, seed):
    rng = random.Random(seed)
    production, shadow = _paired_allocators(
        50_000, (1, 8, 64, 512), region_units=8_192, clustered=clustered
    )
    live: list[tuple] = []  # (production handle, shadow handle)
    for step in range(600):
        roll = rng.random()
        if roll < 0.35 or not live:
            # Both sides must run every op — a failed create/extend still
            # moves internal cursors, so skipping the shadow would diverge.
            out_a = _outcome(production.create)
            out_b = _outcome(shadow.create)
            if isinstance(out_a, tuple):
                assert out_a == out_b
            else:
                live.append((out_a, out_b))
        elif roll < 0.80:
            pair = rng.choice(live)
            units = rng.randrange(1, 200)
            out_a = _outcome(lambda: production.extend(pair[0], units))
            out_b = _outcome(lambda: shadow.extend(pair[1], units))
            assert out_a == out_b
        elif roll < 0.90:
            pair = rng.choice(live)
            units = rng.randrange(0, 300)
            assert production.truncate(pair[0], units) == shadow.truncate(
                pair[1], units
            )
        else:
            pair = live.pop(rng.randrange(len(live)))
            production.delete(pair[0])
            shadow.delete(pair[1])
        assert production.snapshot_free_state() == shadow.snapshot_free_state()
        if step % 40 == 0:
            production.audit_check()
            shadow.audit_check()
    assert production.snapshot_free_state() == shadow.snapshot_free_state()


# ---------------------------------------------------------------------------
# Layer 3: all six policies, per-unit ownership model + audit every step
# ---------------------------------------------------------------------------

POLICIES = [
    BuddyPolicy(),
    RestrictedPolicy(block_sizes=("1K", "8K", "64K"), region_size="512K"),
    ExtentPolicy(range_means=("16K", "64K")),
    FfsPolicy(),
    FixedPolicy(),
    LogStructuredPolicy(),
]


def _owned_units(handle):
    units = set()
    for extent in handle.extents:
        units.update(range(extent.start, extent.end))
    if handle.descriptor is not None:
        units.update(range(handle.descriptor.start, handle.descriptor.end))
    return units


@pytest.mark.parametrize("policy", POLICIES, ids=[p.label for p in POLICIES])
@pytest.mark.parametrize("seed", [5, 23])
def test_policy_churn_against_unit_model(policy, seed):
    rng = random.Random(seed)
    allocator = policy.build(20_000, 1024, RandomStream(seed))
    model: dict[int, set[int]] = {}  # file_id -> owned units
    live = []
    for step in range(400):
        roll = rng.random()
        try:
            if roll < 0.35 or not live:
                handle = allocator.create(size_hint_units=rng.randrange(1, 64))
                live.append(handle)
            elif roll < 0.80:
                handle = rng.choice(live)
                allocator.extend(handle, rng.randrange(1, 120))
            elif roll < 0.90:
                handle = rng.choice(live)
                allocator.truncate(handle, rng.randrange(0, 200))
            else:
                handle = live.pop(rng.randrange(len(live)))
                allocator.delete(handle)
                model.pop(handle.file_id, None)
        except DiskFullError:
            pass
        # Refresh the model from live handles (FFS may remap tails) and
        # check pairwise disjointness + accounting against it.
        model = {h.file_id: _owned_units(h) for h in live if not h.deleted}
        claimed: set[int] = set()
        total = 0
        for units in model.values():
            assert not units & claimed, "two files own the same unit"
            claimed |= units
            total += len(units)
        assert total == allocator.allocated_units
        assert allocator.free_units == allocator.capacity_units - total
        allocator.audit_check()
    allocator.audit_check()
