"""Run the doctests embedded in public docstrings."""

import doctest

import pytest

import repro.report.figures
import repro.report.tables
import repro.sim.engine
import repro.units

MODULES = [
    repro.units,
    repro.sim.engine,
    repro.report.tables,
    repro.report.figures,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
    assert results.failed == 0, f"{results.failed} doctest failures in {module}"
    assert results.attempted > 0, f"no doctests found in {module}"
