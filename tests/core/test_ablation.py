"""Tests for the Figure 3 grow-factor ablation."""

from repro.core.ablation import grow_factor_ablation
from repro.units import KIB


class TestGrowFactorAblation:
    def test_discontinuity_arrives_at_72k_for_grow_one(self):
        """g=1: the 64K tier (and its misalignment) begins past 72K."""
        points = grow_factor_ablation(
            1, file_sizes_bytes=[64 * KIB, 72 * KIB, 80 * KIB]
        )
        by_size = {p.file_size_bytes // KIB: p for p in points}
        assert by_size[80].discontiguities > by_size[72].discontiguities

    def test_grow_two_defers_the_discontinuity(self):
        """g=2: at 80K the file is still in small blocks — no new break."""
        points = grow_factor_ablation(
            2, file_sizes_bytes=[72 * KIB, 80 * KIB, 136 * KIB, 152 * KIB]
        )
        by_size = {p.file_size_bytes // KIB: p for p in points}
        assert by_size[80].discontiguities == by_size[72].discontiguities
        assert by_size[152].discontiguities > by_size[136].discontiguities

    def test_read_time_monotone_enough(self):
        points = grow_factor_ablation(1, file_sizes_bytes=[8 * KIB, 64 * KIB])
        assert points[1].read_ms > points[0].read_ms
        assert all(p.effective_mbps > 0 for p in points)

    def test_extent_counts_recorded(self):
        points = grow_factor_ablation(1, file_sizes_bytes=[72 * KIB])
        assert points[0].extent_count == 16  # 8x1K + 8x8K
