"""Telemetry frames over the supervision pipes: delivery, interleaving
with results, and robustness when a worker dies mid-stream."""

import os
import signal

from repro.core.pool import SupervisedPool
from repro.core.runner import ExperimentRunner
from repro.obs.telemetry import emit, progress_frame
from tests.core.test_supervision import tiny_task


# -- picklable work functions for the spawn workers -------------------------


def emits_then_returns(x):
    """Stream a few frames, then finish normally."""
    for step in range(3):
        emit(progress_frame("stage", float(step), cap_ms=2.0, task=x))
    return ("ok", x * 10, 0.0)


def emits_then_dies(_):
    """Stream a frame, then die abruptly (SIGKILL, no cleanup)."""
    emit(progress_frame("doomed", 1.0))
    os.kill(os.getpid(), signal.SIGKILL)


def silent(x):
    return ("ok", x, 0.0)


class TestPoolTelemetry:
    def test_frames_are_routed_with_task_index(self):
        frames = []
        pool = SupervisedPool(
            emits_then_returns,
            n_workers=2,
            telemetry=lambda index, frame: frames.append((index, frame)),
        )
        out = sorted(pool.run([(0, 0), (1, 1)]))
        assert [(i, status) for i, _, (status, _, _) in out] == [
            (0, "ok"),
            (1, "ok"),
        ]
        # Every frame arrives tagged with the emitting task's index.
        assert len(frames) == 6
        for index, frame in frames:
            assert frame["task"] == index
            assert frame["stage"] == "stage"

    def test_frames_dropped_silently_without_callback(self):
        pool = SupervisedPool(emits_then_returns, n_workers=1)
        out = list(pool.run([(0, 5)]))
        assert out[0][2] == ("ok", 50, 0.0)

    def test_worker_killed_after_emitting_is_still_a_clean_crash(self):
        frames = []
        pool = SupervisedPool(
            emits_then_dies,
            n_workers=1,
            retries=0,
            telemetry=lambda index, frame: frames.append((index, frame)),
        )
        [(index, _, (status, message, _))] = list(pool.run([(0, None)]))
        assert (index, status) == (0, "error")
        assert "died" in message
        # The frame sent before the kill may or may not have been drained
        # before the pipe broke; what matters is no exception and a
        # structured error (not a hang or a lost task).
        assert all(frame["stage"] == "doomed" for _, frame in frames)
        assert pool.stats.crashes == 1

    def test_mixed_telemetry_and_silent_tasks(self):
        frames = []
        pool = SupervisedPool(
            silent,
            n_workers=2,
            telemetry=lambda index, frame: frames.append((index, frame)),
        )
        out = sorted(pool.run([(i, i) for i in range(4)]))
        assert len(out) == 4
        assert frames == []


class TestRunnerTelemetry:
    def test_inline_runner_delivers_frames_with_index(self):
        frames = []
        runner = ExperimentRunner(
            jobs=1,
            cache_dir=None,
            telemetry=lambda index, frame: frames.append((index, frame)),
        )
        outcomes = runner.run([tiny_task(seed=11)])
        assert outcomes[0].ok
        assert frames, "experiment phases should emit progress frames"
        assert {index for index, _ in frames} == {0}
        stages = {frame["stage"] for _, frame in frames}
        assert stages & {"populate", "warmup", "application", "sequential"}

    def test_inline_runner_uninstalls_emitter_after_each_task(self):
        from repro.obs.telemetry import telemetry_enabled

        runner = ExperimentRunner(
            jobs=1, cache_dir=None, telemetry=lambda index, frame: None
        )
        runner.run([tiny_task(seed=12)])
        assert not telemetry_enabled()

    def test_pooled_runner_delivers_frames(self):
        frames = []
        runner = ExperimentRunner(
            jobs=2,
            cache_dir=None,
            telemetry=lambda index, frame: frames.append((index, frame)),
        )
        outcomes = runner.run([tiny_task(seed=13), tiny_task(seed=14)])
        assert all(o.ok for o in outcomes)
        assert {index for index, _ in frames} <= {0, 1}
        assert frames, "pool workers should stream frames over their pipes"
