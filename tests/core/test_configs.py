"""Unit tests for the canonical experiment configurations."""

import dataclasses

import pytest

from repro.alloc.buddy import BinaryBuddyAllocator
from repro.alloc.extent import ExtentAllocator, FitPolicy
from repro.alloc.fixed import FixedBlockAllocator
from repro.alloc.restricted import RestrictedBuddyAllocator
from repro.core.configs import (
    EXTENT_RANGES_TP_SC,
    EXTENT_RANGES_TS,
    RESTRICTED_LADDERS,
    SELECTED_RESTRICTED,
    BuddyPolicy,
    ExperimentConfig,
    ExtentPolicy,
    FixedPolicy,
    RestrictedPolicy,
    SystemConfig,
    extent_ranges_for,
    selected_extent,
    selected_fixed,
)
from repro.disk.geometry import WREN_IV
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStream
from repro.units import GIB, KIB


class TestSystemConfig:
    def test_paper_defaults(self):
        system = SystemConfig()
        assert system.n_disks == 8
        assert system.stripe_unit_bytes == 24 * KIB
        assert system.disk_unit_bytes == KIB
        assert 2.6 * GIB < system.capacity_bytes < 2.7 * GIB

    def test_scaled_capacity(self):
        half = SystemConfig(scale=0.5)
        assert half.capacity_bytes == pytest.approx(
            SystemConfig().capacity_bytes / 2, rel=0.01
        )

    def test_build_array(self):
        system = SystemConfig(scale=0.05)
        array = system.build_array(Simulator())
        assert len(array.drives) == 8
        assert array.capacity_bytes == system.capacity_bytes


class TestSystemConfigValidation:
    """Degenerate values are rejected at construction, naming the field."""

    def test_zero_disks(self):
        with pytest.raises(ConfigurationError, match="n_disks"):
            SystemConfig(n_disks=0)

    def test_negative_disks(self):
        with pytest.raises(ConfigurationError, match="n_disks"):
            SystemConfig(n_disks=-2)

    def test_non_integer_disks(self):
        with pytest.raises(ConfigurationError, match="n_disks"):
            SystemConfig(n_disks=2.5)

    def test_non_positive_stripe_unit(self):
        with pytest.raises(ConfigurationError, match="stripe_unit"):
            SystemConfig(stripe_unit=0)

    def test_non_positive_disk_unit(self):
        with pytest.raises(ConfigurationError, match="disk_unit"):
            SystemConfig(disk_unit=-1024)

    def test_stripe_not_multiple_of_unit(self):
        with pytest.raises(ConfigurationError, match="stripe_unit"):
            SystemConfig(stripe_unit=3000, disk_unit="1K")

    def test_nan_scale(self):
        with pytest.raises(ConfigurationError, match="scale"):
            SystemConfig(scale=float("nan"))

    def test_non_positive_scale(self):
        with pytest.raises(ConfigurationError, match="scale"):
            SystemConfig(scale=0.0)

    def test_nan_seek_constant(self):
        # NaN passes DiskGeometry's own sign checks (NaN comparisons are
        # False), so the config layer must catch it.
        bad = dataclasses.replace(WREN_IV, single_track_seek_ms=float("nan"))
        with pytest.raises(
            ConfigurationError, match="geometry.single_track_seek_ms"
        ):
            SystemConfig(geometry=bad)

    def test_infinite_rotation(self):
        bad = dataclasses.replace(WREN_IV, rotation_ms=float("inf"))
        with pytest.raises(ConfigurationError, match="geometry.rotation_ms"):
            SystemConfig(geometry=bad)

    def test_bad_queue_discipline(self):
        with pytest.raises(ConfigurationError, match="queue_discipline"):
            SystemConfig(queue_discipline="lifo")


class TestPolicyBuilders:
    def build(self, policy):
        return policy.build(2_000_000, 1024, RandomStream(0))

    def test_buddy(self):
        assert isinstance(self.build(BuddyPolicy()), BinaryBuddyAllocator)

    def test_restricted_default_is_selected_config(self):
        allocator = self.build(SELECTED_RESTRICTED)
        assert isinstance(allocator, RestrictedBuddyAllocator)
        assert allocator.config.block_sizes_units == (1, 8, 64, 1024, 16384)
        assert allocator.config.grow_factor == 1
        assert allocator.config.clustered

    def test_restricted_region_units(self):
        allocator = self.build(RestrictedPolicy(block_sizes=("1K", "8K")))
        assert allocator.config.region_units == 32 * 1024  # 32M / 1K

    def test_extent_policy(self):
        allocator = self.build(ExtentPolicy(range_means=("512K", "16M"), fit="best"))
        assert isinstance(allocator, ExtentAllocator)
        assert allocator.fit is FitPolicy.BEST_FIT
        assert allocator.size_config.range_means_units == (512, 16384)

    def test_fixed_policy(self):
        allocator = self.build(FixedPolicy(block_size="16K"))
        assert isinstance(allocator, FixedBlockAllocator)
        assert allocator.block_units == 16

    def test_labels(self):
        assert "buddy" == BuddyPolicy().label
        assert "restricted[5 sizes, g=1, clustered]" == SELECTED_RESTRICTED.label
        assert "first-fit" in ExtentPolicy().label
        assert "fixed[4K]" == FixedPolicy().label


class TestPaperTables:
    def test_restricted_ladders_match_paper(self):
        assert RESTRICTED_LADDERS[2] == ("1K", "8K")
        assert RESTRICTED_LADDERS[5] == ("1K", "8K", "64K", "1M", "16M")

    def test_extent_ranges_match_paper(self):
        assert EXTENT_RANGES_TS[3] == ("1K", "8K", "1M")
        assert EXTENT_RANGES_TP_SC[5] == ("10K", "512K", "1M", "10M", "16M")

    def test_extent_ranges_for_dispatch(self):
        assert extent_ranges_for("TS", 1) == ("4K",)
        assert extent_ranges_for("TP", 1) == ("512K",)
        assert extent_ranges_for("SC", 2) == ("512K", "16M")
        with pytest.raises(ConfigurationError):
            extent_ranges_for("TS", 6)

    def test_selected_configurations(self):
        assert selected_extent("TP").range_means == ("512K", "1M", "16M")
        assert selected_extent("TS").range_means == ("1K", "8K", "1M")
        assert selected_fixed("TS").block_size == "4K"
        assert selected_fixed("SC").block_size == "16K"

    def test_experiment_config_describe(self):
        config = ExperimentConfig(policy=BuddyPolicy(), workload="SC")
        assert "buddy" in config.describe()
        assert "SC" in config.describe()


class TestQueueDiscipline:
    def test_default_is_fcfs(self):
        from repro.sim.engine import Simulator

        array = SystemConfig(scale=0.02).build_array(Simulator())
        assert all(d.discipline == "fcfs" for d in array.drives)

    def test_elevator_threads_through(self):
        from repro.sim.engine import Simulator

        system = SystemConfig(scale=0.02, queue_discipline="elevator")
        array = system.build_array(Simulator())
        assert all(d.discipline == "elevator" for d in array.drives)
