"""Tests for the figure sweeps (configuration generation + tiny runs)."""

from repro.core.configs import SystemConfig
from repro.core.sweeps import (
    ExtentSweepPoint,
    RestrictedSweepPoint,
    extent_configurations,
    restricted_configurations,
    sweep_extent_fragmentation,
    sweep_restricted_fragmentation,
)

TINY = SystemConfig(scale=0.02)


class TestConfigurationGeneration:
    def test_sixteen_restricted_configurations(self):
        policies = restricted_configurations()
        assert len(policies) == 16
        # 4 ladders x 2 grow x 2 clusterings, grouped by ladder.
        assert len({p.block_sizes for p in policies}) == 4
        assert {p.grow_factor for p in policies} == {1, 2}
        assert {p.clustered for p in policies} == {True, False}

    def test_figure_order_within_group(self):
        policies = restricted_configurations()
        first_group = policies[:4]
        assert [(p.grow_factor, p.clustered) for p in first_group] == [
            (1, True), (2, True), (1, False), (2, False),
        ]

    def test_ten_extent_configurations(self):
        policies = extent_configurations("TP")
        assert len(policies) == 10
        assert {len(p.range_means) for p in policies} == {1, 2, 3, 4, 5}
        assert {p.fit for p in policies} == {"first", "best"}

    def test_ts_uses_ts_ranges(self):
        policies = extent_configurations("TS", fits=("first",))
        assert policies[0].range_means == ("4K",)


class TestSweepLabels:
    def test_restricted_point_labels(self):
        point = RestrictedSweepPoint("TS", 5, 2, False)
        assert point.group_label == "5 sizes"
        assert point.series_label == "g=2 unclustered"

    def test_extent_point_labels(self):
        point = ExtentSweepPoint("TP", 1, "best")
        assert point.group_label == "1 range"
        assert point.series_label == "best-fit"
        assert ExtentSweepPoint("TP", 3, "first").group_label == "3 ranges"


class TestTinySweeps:
    """Run reduced sweeps end to end at minuscule scale."""

    def test_restricted_fragmentation_sweep(self):
        ladders = {2: ("1K", "8K"), 3: ("1K", "8K", "64K")}
        points = sweep_restricted_fragmentation(
            "SC", TINY, seed=2, ladders=ladders
        )
        assert len(points) == 8
        for point in points:
            assert point.allocation is not None
            assert 0.0 <= point.allocation.fragmentation.internal_fraction < 1.0

    def test_extent_fragmentation_sweep_first_fit_only(self):
        points = sweep_extent_fragmentation("SC", TINY, seed=2, fits=("first",))
        assert len(points) == 5
        assert all(p.fit == "first" for p in points)
        # Table 4 statistic is populated.
        assert all(p.allocation.average_extents_per_file > 0 for p in points)
