"""Integration-grade unit tests for the §3 experiment drivers (small scale)."""

import pytest

from repro.core.configs import (
    BuddyPolicy,
    ExperimentConfig,
    ExtentPolicy,
    FixedPolicy,
    RestrictedPolicy,
    SystemConfig,
)
from repro.core.experiments import (
    allocation_fill_for,
    build_profile,
    run_allocation_experiment,
    run_performance_experiment,
)
from repro.errors import ConfigurationError

SMALL = SystemConfig(scale=0.04)


class TestBuildProfile:
    def test_dispatch(self):
        assert build_profile("TS", SMALL, 0.9).name == "TS"
        assert build_profile("tp", SMALL, 0.9).name == "TP"
        assert build_profile("Sc", SMALL, 0.9).name == "SC"

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            build_profile("XX", SMALL, 0.9)

    def test_tp_sizes_scale_with_system(self):
        profile = build_profile("TP", SMALL, 0.9)
        relation = profile.type_named("tp-relation")
        assert relation.initial_size_bytes == pytest.approx(
            210 * 1024 * 1024 * 0.04, rel=0.01
        )

    def test_allocation_fill_defaults(self):
        assert allocation_fill_for("TS") == 0.90
        assert allocation_fill_for("TP") == 0.75
        assert allocation_fill_for("unknown") == 0.85


class TestAllocationExperiment:
    @pytest.mark.parametrize("workload", ["SC", "TP"])
    def test_extent_policy_fills(self, workload):
        config = ExperimentConfig(
            policy=ExtentPolicy(), workload=workload, system=SMALL, seed=3
        )
        result = run_allocation_experiment(config)
        assert result.filled
        frag = result.fragmentation
        assert 0.0 <= frag.internal_fraction < 0.5
        assert 0.0 <= frag.external_fraction < 0.5

    def test_buddy_fragments_worse_than_extent(self):
        """Table 3's headline: buddy internal fragmentation is severe."""
        buddy = run_allocation_experiment(
            ExperimentConfig(policy=BuddyPolicy(), workload="SC", system=SMALL)
        )
        extent = run_allocation_experiment(
            ExperimentConfig(policy=ExtentPolicy(), workload="SC", system=SMALL)
        )
        assert (
            buddy.fragmentation.internal_fraction
            > 2 * extent.fragmentation.internal_fraction
        )

    def test_deterministic(self):
        config = ExperimentConfig(
            policy=RestrictedPolicy(block_sizes=("1K", "8K", "64K")),
            workload="SC",
            system=SMALL,
            seed=11,
        )
        a = run_allocation_experiment(config)
        b = run_allocation_experiment(config)
        assert a.fragmentation == b.fragmentation
        assert a.operations == b.operations


class TestPerformanceExperiment:
    def test_sc_restricted_sequential_dominates_application(self):
        config = ExperimentConfig(
            policy=RestrictedPolicy(), workload="SC", system=SMALL, seed=5
        )
        result = run_performance_experiment(
            config, app_cap_ms=60_000, seq_cap_ms=60_000
        )
        assert 0.0 < result.application.utilization <= 1.0
        assert 0.0 < result.sequential.utilization <= 1.0
        assert result.sequential.utilization > result.application.utilization
        # The governor held utilization in (or near) the window.
        assert result.final_utilization > 0.85

    def test_fixed_block_sequential_is_poor(self):
        """Figure 6a: fixed block cannot exploit the array sequentially."""
        fixed = run_performance_experiment(
            ExperimentConfig(
                policy=FixedPolicy("16K"), workload="SC", system=SMALL, seed=5
            ),
            app_cap_ms=40_000,
            seq_cap_ms=40_000,
        )
        restricted = run_performance_experiment(
            ExperimentConfig(
                policy=RestrictedPolicy(), workload="SC", system=SMALL, seed=5
            ),
            app_cap_ms=40_000,
            seq_cap_ms=40_000,
        )
        # At this tiny scale the fixed-block system is only lightly aged,
        # so the gap is narrower than the paper's full-scale run; direction
        # and a real margin must still hold.
        assert (
            restricted.sequential.utilization
            > 1.05 * fixed.sequential.utilization
        )

    def test_phase_flags_and_counts(self):
        config = ExperimentConfig(
            policy=ExtentPolicy(), workload="TP", system=SMALL, seed=6
        )
        result = run_performance_experiment(
            config, app_cap_ms=50_000, seq_cap_ms=30_000
        )
        assert result.policy_label == config.policy.label
        assert result.workload == "TP"
        assert sum(result.operation_counts.values()) > 50
        assert result.application.simulated_ms <= 50_000 + 10_000
        assert result.application.bytes_moved > 0

    def test_phases_can_be_skipped(self):
        config = ExperimentConfig(
            policy=ExtentPolicy(), workload="SC", system=SMALL, seed=7
        )
        result = run_performance_experiment(
            config, run_application=False, seq_cap_ms=30_000
        )
        assert result.application.utilization == 0.0
        assert result.sequential.utilization > 0.0
