"""Tests for hardened sweep execution: the supervised pool, per-task
timeouts, bounded retries, checkpoint/resume, and graceful interrupts."""

import json
import os
import signal
import time

import pytest

from repro.core.checkpoint import SweepCheckpoint
from repro.core.configs import ExperimentConfig, FixedPolicy, SystemConfig
from repro.core.pool import SupervisedPool
from repro.core.runner import (
    CACHE_FORMAT_VERSION,
    ExperimentRunner,
    ExperimentTask,
    ResultCache,
)
from repro.errors import ConfigurationError, ReproError, SweepInterrupted


# -- picklable work functions for the spawn workers -------------------------


def well_behaved(x):
    return ("ok", x * 2, 0.0)


def crash_once_then_succeed(flag_path):
    """SIGKILL ourselves on the first attempt; succeed on the retry."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as handle:
            handle.write("attempted")
        os.kill(os.getpid(), signal.SIGKILL)
    return ("ok", "recovered", 0.0)


def hang(_):
    time.sleep(300)


def always_raises(_):
    raise ValueError("deterministic divergence")


def tiny_task(seed=7):
    config = ExperimentConfig(
        policy=FixedPolicy(),
        workload="TS",
        system=SystemConfig(scale=0.02),
        seed=seed,
    )
    return ExperimentTask.performance(
        config, app_cap_ms=8_000.0, seq_cap_ms=4_000.0
    )


class TestSupervisedPool:
    def test_results_come_back_for_every_item(self):
        pool = SupervisedPool(well_behaved, n_workers=2)
        out = sorted(pool.run([(i, i) for i in range(5)]))
        assert [(i, payload) for i, payload, _ in out] == [
            (i, i) for i in range(5)
        ]
        assert all(outcome == ("ok", i * 2, 0.0) for i, _, outcome in out)

    def test_crashed_worker_is_replaced_and_task_retried(self, tmp_path):
        pool = SupervisedPool(
            crash_once_then_succeed, n_workers=1, retries=1, backoff_base_s=0.05
        )
        [(index, _, (status, payload, _))] = list(
            pool.run([(0, str(tmp_path / "flag"))])
        )
        assert (index, status, payload) == (0, "ok", "recovered")
        assert pool.stats.crashes == 1
        assert pool.stats.retries == 1
        assert pool.stats.workers_replaced == 1

    def test_crash_without_retries_is_reported_not_lost(self, tmp_path):
        pool = SupervisedPool(crash_once_then_succeed, n_workers=1, retries=0)
        [(index, _, (status, message, _))] = list(
            pool.run([(0, str(tmp_path / "flag"))])
        )
        assert index == 0
        assert status == "error"
        assert "died" in message
        assert "retries exhausted" in message

    def test_timeout_kills_the_worker(self):
        pool = SupervisedPool(hang, n_workers=1, timeout_s=0.3, retries=0)
        [(index, _, (status, message, _))] = list(pool.run([(0, "x")]))
        assert index == 0
        assert status == "error"
        assert "timeout" in message
        assert pool.stats.timeouts == 1

    def test_task_exceptions_are_not_retried(self):
        pool = SupervisedPool(always_raises, n_workers=1, retries=3)
        [(_, _, (status, message, _))] = list(pool.run([(0, "x")]))
        assert status == "error"
        assert "deterministic divergence" in message
        assert pool.stats.retries == 0

    def test_sibling_tasks_survive_a_crash(self, tmp_path):
        # One crashing task among well-behaved ones: everyone completes.
        def run():
            pool = SupervisedPool(
                crash_once_then_succeed,
                n_workers=2,
                retries=1,
                backoff_base_s=0.05,
            )
            flags = [str(tmp_path / f"flag{i}") for i in range(3)]
            return sorted(pool.run(list(enumerate(flags))))

        out = run()
        assert len(out) == 3
        assert all(outcome[0] == "ok" for _, _, outcome in out)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisedPool(well_behaved, n_workers=0)
        with pytest.raises(ConfigurationError):
            SupervisedPool(well_behaved, n_workers=1, timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            SupervisedPool(well_behaved, n_workers=1, retries=-1)


class TestResultCacheIntegrity:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("key", {"value": 41})
        assert cache.load("key") == {"value": 41}

    def test_corrupt_entry_is_a_miss_and_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path("bad").parent.mkdir(parents=True, exist_ok=True)
        cache.path("bad").write_bytes(b"garbage that is not an entry")
        assert cache.load("bad") is None
        assert not cache.path("bad").exists()

    def test_flipped_payload_byte_fails_checksum_and_evicts(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("key", {"value": 41})
        blob = bytearray(cache.path("key").read_bytes())
        blob[-1] ^= 0xFF
        cache.path("key").write_bytes(bytes(blob))
        assert cache.load("key") is None
        assert not cache.path("key").exists()

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("key", list(range(100)))
        blob = cache.path("key").read_bytes()
        cache.path("key").write_bytes(blob[: len(blob) // 2])
        assert cache.load("key") is None


class TestCheckpointResume:
    def seeds(self):
        return (7, 8, 9)

    def sweep(self):
        return [tiny_task(seed) for seed in self.seeds()]

    def test_interrupt_flushes_and_raises_130_material(self, tmp_path):
        """Interrupting mid-sweep raises SweepInterrupted naming the
        partial-results directory; completed points are checkpointed."""
        calls = []

        def interrupt_after_first(outcome, completed, total):
            calls.append(outcome)
            if completed == 1:
                raise KeyboardInterrupt

        runner = ExperimentRunner(
            jobs=1,
            checkpoint_dir=tmp_path / "ckpt",
            progress=interrupt_after_first,
        )
        with pytest.raises(SweepInterrupted) as exc:
            runner.run(self.sweep())
        assert exc.value.completed == 1
        assert exc.value.total == 3
        assert str(tmp_path / "ckpt") in str(exc.value.partial_dir)
        assert "partial results flushed" in str(exc.value)
        assert SweepCheckpoint(tmp_path / "ckpt").completed == 0  # fresh view
        ckpt = SweepCheckpoint(tmp_path / "ckpt")
        ckpt.begin(total=3, resume=True)
        assert ckpt.completed == 1

    def test_resume_is_bit_identical_to_uninterrupted(self, tmp_path):
        reference = ExperimentRunner(jobs=1).results(self.sweep())

        def interrupt_after_first(outcome, completed, total):
            if completed == 1:
                raise KeyboardInterrupt

        interrupted = ExperimentRunner(
            jobs=1,
            checkpoint_dir=tmp_path / "ckpt",
            progress=interrupt_after_first,
        )
        with pytest.raises(SweepInterrupted):
            interrupted.run(self.sweep())

        resumed = ExperimentRunner(
            jobs=1, checkpoint_dir=tmp_path / "ckpt", resume=True
        )
        results = resumed.results(self.sweep())
        assert results == reference
        # The point completed before the interrupt was replayed, not rerun.
        assert resumed.stats.cached == 1
        assert resumed.stats.executed == 2

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(resume=True)

    def test_corrupt_manifest_resumes_nothing(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{ not json")
        ckpt = SweepCheckpoint(tmp_path)
        ckpt.begin(total=2, resume=True)
        assert ckpt.completed == 0

    def test_stale_cache_format_fails_loudly(self, tmp_path):
        # A manifest from an older build holds task keys computed with a
        # different hash recipe; resuming from it must not silently
        # re-run everything while appearing to honor the checkpoint.
        ckpt = SweepCheckpoint(tmp_path)
        ckpt.begin(total=1, resume=False)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["cache_format"] = CACHE_FORMAT_VERSION - 1
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ReproError, match="cache format"):
            SweepCheckpoint(tmp_path).begin(total=1, resume=True)

    def test_versionless_manifest_fails_loudly(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"format": 1, "done": ["abc"]})
        )
        with pytest.raises(ReproError, match="cache format"):
            SweepCheckpoint(tmp_path).begin(total=1, resume=True)

    def test_fresh_start_ignores_stale_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"format": 1, "done": ["abc"]})
        )
        ckpt = SweepCheckpoint(tmp_path)
        ckpt.begin(total=1, resume=False)  # no --resume: no error
        assert ckpt.completed == 0

    def test_checkpoint_results_validate_on_read(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path)
        ckpt.begin(total=1, resume=False)
        ckpt.record("abc", {"x": 1})
        assert ckpt.result_for("abc") == {"x": 1}
        # Corrupt the stored result: the checkpoint treats it as missing.
        path = ckpt.results.path("abc")
        path.write_bytes(b"junk")
        assert ckpt.result_for("abc") is None


class TestRunnerTimeout:
    def test_timeout_surfaces_as_structured_error(self):
        # 50ms of wall clock is never enough to simulate this point, so
        # the supervised pool kills the worker and reports a timeout.
        runner = ExperimentRunner(jobs=1, timeout_s=0.05)
        [outcome] = runner.run([tiny_task()])
        assert not outcome.ok
        assert "timeout" in outcome.error
        assert runner.stats.failed == 1

    def test_timeout_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(timeout_s=-1.0)
        with pytest.raises(ConfigurationError):
            ExperimentRunner(retries=-1)
