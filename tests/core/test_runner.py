"""Tests for the parallel experiment runner and on-disk result cache."""

import pytest

from repro.core.configs import (
    ExperimentConfig,
    ExtentPolicy,
    FixedPolicy,
    SystemConfig,
)
from repro.core.runner import (
    ExperimentRunner,
    ExperimentTask,
    ResultCache,
    execute_all,
)
from repro.core.sweeps import sweep_extent_fragmentation
from repro.errors import ConfigurationError, ExperimentError

TINY = SystemConfig(scale=0.02)


def tiny_config(seed=7, workload="SC", policy=None):
    policy = policy or ExtentPolicy(range_means=("64K", "1M"))
    return ExperimentConfig(
        policy=policy, workload=workload, system=TINY, seed=seed
    )


def tiny_task(seed=7, workload="SC", policy=None):
    return ExperimentTask.allocation(
        tiny_config(seed, workload, policy), max_operations=100_000
    )


class TestCacheKey:
    def test_stable_across_constructions(self):
        assert tiny_task().cache_key == tiny_task().cache_key

    def test_differs_by_seed_workload_and_policy(self):
        base = tiny_task().cache_key
        assert tiny_task(seed=8).cache_key != base
        assert tiny_task(workload="TS").cache_key != base
        assert tiny_task(policy=FixedPolicy("4K")).cache_key != base

    def test_differs_by_kind_and_kwargs(self):
        config = tiny_config()
        alloc = ExperimentTask.allocation(config)
        perf = ExperimentTask.performance(config)
        assert alloc.cache_key != perf.cache_key
        capped = ExperimentTask.performance(config, app_cap_ms=1000.0)
        assert capped.cache_key != perf.cache_key

    def test_kwarg_order_and_none_values_ignored(self):
        config = tiny_config()
        a = ExperimentTask.performance(config, app_cap_ms=1.0, seq_cap_ms=2.0)
        b = ExperimentTask.performance(config, seq_cap_ms=2.0, app_cap_ms=1.0)
        assert a.cache_key == b.cache_key
        bare = ExperimentTask.allocation(config)
        nulled = ExperimentTask.allocation(config, fill_fraction=None)
        assert bare.cache_key == nulled.cache_key

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentTask("bogus", tiny_config())


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("abc", {"x": 1})
        assert cache.load("abc") == {"x": 1}

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).load("missing") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        # Each payload trips a different pickle exception type
        # (UnpicklingError, ValueError via the GET opcode, EOFError).
        cache = ResultCache(tmp_path)
        for i, garbage in enumerate(
            [b"not a pickle", b"garbage not json\n", b""]
        ):
            cache.path(f"bad{i}").write_bytes(garbage)
            assert cache.load(f"bad{i}") is None


class TestCacheStats:
    def test_counters_track_hits_misses_evictions(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.load("absent")  # miss
        cache.store("abc", 1)
        cache.load("abc")  # hit
        cache.path("bad").write_bytes(b"corrupt")
        cache.load("bad")  # miss + eviction
        assert (cache.hits, cache.misses, cache.evictions) == (1, 2, 1)
        assert not cache.path("bad").exists()

    def test_stats_line_pluralization(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.stats_line() == "cache: 0 hits, 0 misses, 0 evicted"
        cache.store("abc", 1)
        cache.load("abc")
        cache.load("absent")
        assert cache.stats_line() == "cache: 1 hit, 1 miss, 0 evicted"

    def test_runner_counts_cache_traffic(self, tmp_path):
        task = tiny_task()
        runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        runner.run([task])
        assert (runner.cache.hits, runner.cache.misses) == (0, 1)
        runner.run([task])
        assert (runner.cache.hits, runner.cache.misses) == (1, 1)


class TestSerialRunner:
    def test_negative_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(jobs=-3)

    def test_zero_jobs_means_all_cpus(self):
        assert ExperimentRunner(jobs=0).jobs >= 1

    def test_outcomes_in_submission_order(self):
        runner = ExperimentRunner()
        tasks = [tiny_task(seed=s) for s in (1, 2, 3)]
        outcomes = runner.run(tasks)
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert all(o.ok and o.result is not None for o in outcomes)
        assert runner.stats.executed == 3
        assert runner.stats.cached == 0

    def test_warm_cache_executes_nothing(self, tmp_path):
        tasks = [tiny_task(seed=s) for s in (1, 2)]
        cold = ExperimentRunner(cache_dir=tmp_path)
        first = cold.run(tasks)
        assert cold.stats.executed == 2
        warm = ExperimentRunner(cache_dir=tmp_path)
        second = warm.run(tasks)
        assert warm.stats.executed == 0
        assert warm.stats.cached == 2
        assert all(o.from_cache for o in second)
        assert [o.result for o in first] == [o.result for o in second]

    def test_use_cache_false_ignores_directory(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path, use_cache=False)
        runner.run([tiny_task()])
        assert list(tmp_path.iterdir()) == []

    def test_progress_callback_sees_every_point(self):
        seen = []
        runner = ExperimentRunner(progress=lambda o, done, total: seen.append((done, total)))
        runner.run([tiny_task(seed=s) for s in (1, 2)])
        assert seen == [(1, 2), (2, 2)]


class TestFailureChannel:
    def bad_task(self):
        # A 512-byte extent range rounds to zero disk units: the policy
        # build raises ConfigurationError inside the worker.
        return tiny_task(policy=ExtentPolicy(range_means=("512",)))

    def test_failure_reported_not_raised(self):
        runner = ExperimentRunner()
        outcomes = runner.run([tiny_task(), self.bad_task(), tiny_task(seed=9)])
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "ConfigurationError" in outcomes[1].error
        assert runner.stats.failed == 1
        assert runner.stats.executed == 2

    def test_results_raises_aggregate_error(self):
        runner = ExperimentRunner()
        with pytest.raises(ExperimentError, match="1 of 2 sweep points failed"):
            runner.results([tiny_task(), self.bad_task()])

    def test_failures_are_not_cached(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        runner.run([self.bad_task()])
        assert list(tmp_path.iterdir()) == []


class TestParallelDeterminism:
    """Parallel execution must be bit-identical to serial execution."""

    def test_pool_matches_inline(self):
        tasks = [tiny_task(seed=s) for s in (1, 2, 3)]
        serial = ExperimentRunner(jobs=1).run(tasks)
        parallel = ExperimentRunner(jobs=2).run(tasks)
        assert [o.result for o in serial] == [o.result for o in parallel]
        assert [o.index for o in parallel] == [0, 1, 2]

    def test_sweep_parallel_equals_serial(self):
        serial = sweep_extent_fragmentation(
            "SC", TINY, seed=3, fits=("first",), runner=None
        )
        parallel = sweep_extent_fragmentation(
            "SC", TINY, seed=3, fits=("first",), runner=ExperimentRunner(jobs=2)
        )
        assert serial == parallel

    def test_pool_failure_channel(self):
        runner = ExperimentRunner(jobs=2)
        bad = ExperimentTask.allocation(
            tiny_config(policy=ExtentPolicy(range_means=("512",)))
        )
        outcomes = runner.run([tiny_task(), bad, tiny_task(seed=9)])
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "ConfigurationError" in outcomes[1].error


class TestExecuteAll:
    def test_default_runner_is_serial_uncached(self):
        results = execute_all([tiny_task()])
        assert len(results) == 1
        assert results[0].fragmentation is not None
