"""Unit tests for operation planning and offset selection."""

from repro.sim.rng import RandomStream
from repro.workload.filetype import AccessPattern, Operation
from repro.workload.ops import (
    pick_offset,
    pick_operation,
    plan_operation,
    sample_initial_size,
    sample_rw_size,
)
from tests.workload.test_filetype import make_type


class TestPlanning:
    def test_pick_operation_respects_weights(self):
        rng = RandomStream(1)
        weights = {Operation.READ: 100.0, Operation.WRITE: 0.0}
        assert all(
            pick_operation(rng, weights) is Operation.READ for _ in range(50)
        )

    def test_rw_size_positive(self):
        rng = RandomStream(2)
        file_type = make_type(rw_size_bytes=100, rw_deviation_bytes=500)
        assert all(sample_rw_size(rng, file_type) >= 1 for _ in range(200))

    def test_initial_size_uniform_bounds(self):
        rng = RandomStream(3)
        file_type = make_type(initial_size_bytes=1000, initial_deviation_bytes=200)
        for _ in range(200):
            size = sample_initial_size(rng, file_type)
            assert 800 <= size <= 1200

    def test_truncate_uses_truncate_size(self):
        rng = RandomStream(4)
        file_type = make_type(
            read_ratio=0.0, write_ratio=0.0, extend_ratio=0.0,
            truncate_ratio=100.0, delete_ratio=0.0,
        )
        planned = plan_operation(rng, file_type, file_type.operation_weights)
        assert planned.op is Operation.TRUNCATE
        assert planned.size_bytes == file_type.truncate_size_bytes

    def test_delete_size_is_replacement_initial(self):
        rng = RandomStream(5)
        file_type = make_type(
            read_ratio=0.0, write_ratio=0.0, extend_ratio=0.0,
            truncate_ratio=0.0, delete_ratio=100.0,
            initial_size_bytes=5000, initial_deviation_bytes=0,
        )
        planned = plan_operation(rng, file_type, file_type.operation_weights)
        assert planned.op is Operation.DELETE
        assert planned.size_bytes == 5000


class TestOffsets:
    def test_random_offsets_stay_in_file(self):
        rng = RandomStream(6)
        file_type = make_type()
        for _ in range(200):
            offset, _ = pick_offset(rng, file_type, 100_000, 0, 8192)
            assert 0 <= offset <= 100_000 - 8192

    def test_random_offset_empty_file(self):
        rng = RandomStream(7)
        assert pick_offset(rng, make_type(), 0, 0, 100) == (0, 0)

    def test_sequential_cursor_advances(self):
        rng = RandomStream(8)
        file_type = make_type(access=AccessPattern.SEQUENTIAL)
        offset, cursor = pick_offset(rng, file_type, 100_000, 0, 1000)
        assert offset == 0
        assert cursor == 1000
        offset, cursor = pick_offset(rng, file_type, 100_000, cursor, 1000)
        assert offset == 1000

    def test_sequential_cursor_wraps(self):
        rng = RandomStream(9)
        file_type = make_type(access=AccessPattern.SEQUENTIAL)
        offset, cursor = pick_offset(rng, file_type, 10_000, 9_500, 1000)
        assert offset == 9_500
        assert cursor == 0  # wrapped past EOF

    def test_sequential_cursor_beyond_eof_restarts(self):
        rng = RandomStream(10)
        file_type = make_type(access=AccessPattern.SEQUENTIAL)
        offset, _ = pick_offset(rng, file_type, 5_000, 9_000, 1000)
        assert offset == 0
