"""Unit tests for the workload driver and the allocation test loop."""

import pytest

from repro.alloc.extent import ExtentAllocator, ExtentSizeConfig, FitPolicy
from repro.disk.array import StripedArray
from repro.disk.geometry import TINY_DISK
from repro.errors import SimulationError
from repro.fs.filesystem import FileSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStream
from repro.units import KIB
from repro.workload.driver import WorkloadDriver, run_allocation_until_full
from repro.workload.profiles import mini


def make_fs(n_disks=4):
    sim = Simulator()
    array = StripedArray(sim, TINY_DISK, n_disks, 24 * KIB, KIB)
    allocator = ExtentAllocator(
        array.capacity_units,
        ExtentSizeConfig(range_means_units=(8,)),
        FitPolicy.FIRST_FIT,
        RandomStream(3),
    )
    return sim, FileSystem(sim, array, allocator)


class TestDriver:
    def test_populate_creates_expected_files(self):
        sim, fs = make_fs()
        driver = WorkloadDriver(sim, fs, mini(n_files=6), seed=1)
        driver.populate()
        assert driver.live_file_count() == 6
        assert len(fs.files) == 6
        assert all(f.length_bytes > 0 for f in fs.files.values())

    def test_users_stagger_and_run(self):
        sim, fs = make_fs()
        driver = WorkloadDriver(sim, fs, mini(n_files=6), seed=1)
        driver.populate()
        driver.start_users()
        sim.run(until=2_000.0)
        total_ops = sum(driver.op_counts.as_dict().values())
        assert total_ops > 20
        assert fs.bytes_read + fs.bytes_written > 0

    def test_population_survives_churn(self):
        sim, fs = make_fs()
        driver = WorkloadDriver(sim, fs, mini(n_files=6), seed=2)
        driver.populate()
        driver.start_users()
        sim.run(until=5_000.0)
        # Deletes recreate, so the population count is stable.
        assert driver.live_file_count() == 6
        fs.allocator.check_no_overlap()

    def test_sequential_mode_only_reads_and_writes(self):
        sim, fs = make_fs()
        driver = WorkloadDriver(sim, fs, mini(n_files=4), seed=3)
        driver.populate()
        driver.mode = "sequential"
        driver.start_users()
        sim.run(until=3_000.0)
        counts = driver.op_counts.as_dict()
        assert set(counts) <= {"read", "write"}

    def test_governor_converts_extends(self):
        sim, fs = make_fs()
        driver = WorkloadDriver(
            sim, fs, mini(n_files=6), seed=4, lower_bound=0.0001, upper_bound=0.0002
        )
        driver.populate()  # already above the tiny upper bound
        driver.start_users()
        sim.run(until=5_000.0)
        assert driver.governor_conversions > 0

    def test_bad_bounds_raise(self):
        sim, fs = make_fs()
        with pytest.raises(SimulationError):
            WorkloadDriver(sim, fs, mini(), lower_bound=0.9, upper_bound=0.5)

    def test_deterministic_given_seed(self):
        counts = []
        for _ in range(2):
            sim, fs = make_fs()
            driver = WorkloadDriver(sim, fs, mini(n_files=5), seed=42)
            driver.populate()
            driver.start_users()
            sim.run(until=3_000.0)
            counts.append(driver.op_counts.as_dict())
        assert counts[0] == counts[1]


class TestDeleteSemantics:
    """Population delete must remove the chosen object, not the first
    content-equal entry (the former dataclass ``__eq__`` + ``list.remove``
    combination's failure mode once two files look alike)."""

    def test_fsfile_compares_by_identity(self):
        sim, fs = make_fs()
        first = fs.create(size_hint_bytes=8 * KIB, tag="twin")
        second = fs.create(size_hint_bytes=8 * KIB, tag="twin")
        fs.allocate_to(first, 8 * KIB)
        fs.allocate_to(second, 8 * KIB)
        first.length_bytes = second.length_bytes = 8 * KIB
        # Observably identical, still different files.
        assert first.tag == second.tag
        assert first.length_bytes == second.length_bytes
        assert first != second
        assert hash(first) != hash(second) or first is second
        assert first == first

    def test_delete_removes_exact_object(self):
        sim, fs = make_fs()
        driver = WorkloadDriver(sim, fs, mini(n_files=6), seed=5)
        driver.populate()
        file_type = driver.profile.types[0]
        population = driver.files[file_type.name]
        victim = population[3]
        survivor_twin = population[1]
        # Make an *earlier* entry observably identical to the victim:
        # a first-equal scan would remove the twin instead.
        survivor_twin.length_bytes = victim.length_bytes
        survivor_twin.cursor_bytes = victim.cursor_bytes

        def churn():
            yield from driver._do_delete(
                file_type, victim, population, 3, 4 * KIB
            )

        sim.process(churn())
        sim.run()
        assert victim.fs_id not in fs.files
        assert survivor_twin.fs_id in fs.files
        assert survivor_twin in population
        assert victim not in population
        assert len(population) == 6

    def test_churn_timeline_matches_pre_rework_capture(self):
        """The full churn timeline is bit-identical to the pre-rework code.

        The digests below were captured from the repo *before* the
        identity-semantics / positional-pop rework (a TS run with 181
        deletes): same seed, same audit cadence.  A delete that ever
        picks a different victim, or any reordering of the event stream,
        changes every subsequent fingerprint.
        """
        from repro import AuditConfig, ExperimentConfig, SystemConfig
        from repro.core.configs import RestrictedPolicy
        from repro.core.experiments import run_performance_experiment

        result = run_performance_experiment(
            ExperimentConfig(
                policy=RestrictedPolicy(),
                workload="TS",
                system=SystemConfig(scale=0.01),
                seed=11,
            ),
            audit=AuditConfig(fingerprints=True, cadence_events=1_000),
            app_cap_ms=600.0,
            seq_cap_ms=600.0,
        )
        fingerprints = result.fingerprints
        assert result.operation_counts["delete"] == 181
        assert len(fingerprints) == 14
        assert fingerprints[0].digest == (
            "3392eb89e6c2fa92ba1b6560b082b4cc8692ddf30e44b2f96ddb20f5f5319583"
        )
        assert fingerprints[-1].digest == (
            "96838e6c97f80d1d9c067be3943ce0a3ec6af97b444c70234afb8dfa984d7ef0"
        )


class TestAllocationTest:
    def test_runs_to_disk_full(self):
        # Start near-full (like the paper's tests) so extends finish the job;
        # a sparse population with delete churn would hover forever.
        sim, fs = make_fs(n_disks=2)
        result = run_allocation_until_full(
            fs, mini(n_files=150), seed=5, max_operations=200_000
        )
        frag = result.fragmentation
        assert 0.0 <= frag.internal_fraction < 1.0
        assert 0.0 <= frag.external_fraction < 1.0
        assert result.file_count > 0
        assert result.average_extents_per_file > 0

    def test_operation_cap_reports_unfilled(self):
        sim, fs = make_fs()
        # One op will never fill a whole disk: the cap ends the test with
        # a steady-state (unfilled) snapshot.
        result = run_allocation_until_full(
            fs, mini(n_files=1), seed=6, max_operations=1
        )
        assert not result.filled
        assert result.operations == 1

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            sim, fs = make_fs(n_disks=2)
            result = run_allocation_until_full(
                fs, mini(n_files=150), seed=7, max_operations=200_000
            )
            results.append(
                (result.operations, result.fragmentation.internal_fraction)
            )
        assert results[0] == results[1]


class TestLatencyDiagnostics:
    def test_latency_recorded_per_operation(self):
        sim, fs = make_fs()
        driver = WorkloadDriver(sim, fs, mini(n_files=6), seed=8)
        driver.populate()
        driver.start_users()
        sim.run(until=3_000.0)
        assert "read" in driver.op_latency
        read_latency = driver.op_latency["read"]
        assert read_latency.count > 0
        assert read_latency.mean > 0.0  # reads take simulated time
        # Truncates are metadata-only: instant.
        if "truncate" in driver.op_latency:
            assert driver.op_latency["truncate"].mean == 0.0
