"""Tests for trace recording, persistence, and replay."""

import pytest

from repro.alloc.extent import ExtentAllocator, ExtentSizeConfig, FitPolicy
from repro.alloc.fixed import FixedBlockAllocator
from repro.disk.array import StripedArray
from repro.disk.geometry import TINY_DISK
from repro.errors import ConfigurationError
from repro.fs.filesystem import FileSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStream
from repro.units import KIB
from repro.workload.profiles import mini
from repro.workload.trace import Trace, TraceEvent, record_trace, replay_trace


def make_fs(allocator_factory=None, n_disks=4):
    sim = Simulator()
    array = StripedArray(sim, TINY_DISK, n_disks, 24 * KIB, KIB)
    if allocator_factory is None:
        allocator = ExtentAllocator(
            array.capacity_units,
            ExtentSizeConfig(range_means_units=(8,)),
            FitPolicy.FIRST_FIT,
            RandomStream(3),
        )
    else:
        allocator = allocator_factory(array.capacity_units)
    return sim, FileSystem(sim, array, allocator)


class TestRecording:
    def test_records_population_and_events(self):
        trace = record_trace(mini(n_files=5), duration_ms=2_000, seed=1)
        assert len(trace.initial) == 5
        assert len(trace.events) > 10
        assert trace.duration_ms <= 2_000

    def test_deterministic_per_seed(self):
        a = record_trace(mini(n_files=5), duration_ms=1_000, seed=2)
        b = record_trace(mini(n_files=5), duration_ms=1_000, seed=2)
        assert a.events == b.events
        assert a.initial == b.initial

    def test_different_seeds_differ(self):
        a = record_trace(mini(n_files=5), duration_ms=1_000, seed=1)
        b = record_trace(mini(n_files=5), duration_ms=1_000, seed=2)
        assert a.events != b.events

    def test_timestamps_monotone(self):
        trace = record_trace(mini(n_files=5), duration_ms=2_000, seed=3)
        times = [event.time_ms for event in trace.events]
        assert times == sorted(times)

    def test_operation_mix_reflects_ratios(self):
        trace = record_trace(mini(n_files=8), duration_ms=20_000, seed=4)
        counts = trace.operation_counts()
        assert counts["read"] > counts.get("delete", 0)  # 50% vs 7.5%
        assert set(counts) <= {"read", "write", "extend", "truncate", "delete"}


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = record_trace(mini(n_files=4), duration_ms=1_000, seed=5)
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.initial == trace.initial
        assert loaded.events == trace.events
        assert loaded.source == trace.source

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 99, "initial": [], "events": []}')
        with pytest.raises(ConfigurationError):
            Trace.load(path)


class TestReplay:
    def test_replay_executes_every_event(self):
        trace = record_trace(mini(n_files=5), duration_ms=2_000, seed=6)
        sim, fs = make_fs()
        result = replay_trace(sim, fs, trace)
        assert result.operations == len(trace.events)
        assert result.completed_ms >= trace.duration_ms * 0.99
        fs.allocator.check_no_overlap()

    def test_replay_deterministic(self):
        trace = record_trace(mini(n_files=5), duration_ms=2_000, seed=7)
        outcomes = []
        for _ in range(2):
            sim, fs = make_fs()
            result = replay_trace(sim, fs, trace)
            outcomes.append((result.bytes_read, result.bytes_written,
                             result.completed_ms))
        assert outcomes[0] == outcomes[1]

    def test_same_trace_two_policies_same_demand(self):
        """The controlled-comparison property: byte-identical requests."""
        trace = record_trace(mini(n_files=5), duration_ms=2_000, seed=8)
        sim_a, fs_a = make_fs()
        result_a = replay_trace(sim_a, fs_a, trace)
        sim_b, fs_b = make_fs(
            allocator_factory=lambda units: FixedBlockAllocator(units, 4)
        )
        result_b = replay_trace(sim_b, fs_b, trace)
        assert result_a.operations == result_b.operations
        # The demand is identical; service (lag) may differ by policy.
        assert result_a.bytes_read == result_b.bytes_read

    def test_lag_reflects_contention(self):
        """A slower policy falls further behind the same trace."""
        trace = record_trace(mini(n_files=6), duration_ms=4_000, seed=9)
        sim_fast, fs_fast = make_fs(n_disks=4)
        fast = replay_trace(sim_fast, fs_fast, trace)
        sim_slow, fs_slow = make_fs(n_disks=1)
        slow = replay_trace(sim_slow, fs_slow, trace)
        assert slow.mean_lag_ms >= fast.mean_lag_ms

    def test_unknown_op_rejected(self):
        from repro.workload.trace import TraceFile

        sim, fs = make_fs()
        trace = Trace(
            initial=[TraceFile("x", 4096, 4096, 4096)],
            events=[TraceEvent(0.0, "defragment", "x", 1)],
        )
        with pytest.raises(ConfigurationError):
            replay_trace(sim, fs, trace)

    def test_event_on_unknown_file_is_skipped(self):
        sim, fs = make_fs()
        trace = Trace(events=[TraceEvent(0.0, "read", "ghost", 1024)])
        result = replay_trace(sim, fs, trace)
        assert result.operations == 0
