"""Unit tests for the Table 2 file-type parameters."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.filetype import AccessPattern, FileType, Operation


def make_type(**overrides):
    parameters = dict(
        name="t",
        n_files=10,
        n_users=2,
        process_time_ms=10.0,
        hit_frequency_ms=20.0,
        rw_size_bytes=8192,
        rw_deviation_bytes=1024,
        allocation_size_bytes=8192,
        truncate_size_bytes=4096,
        initial_size_bytes=8192,
        initial_deviation_bytes=2048,
        read_ratio=60.0,
        write_ratio=15.0,
        extend_ratio=15.0,
        truncate_ratio=5.0,
        delete_ratio=5.0,
    )
    parameters.update(overrides)
    return FileType(**parameters)


class TestValidation:
    def test_valid_type_constructs(self):
        assert make_type().name == "t"

    def test_ratios_must_sum_to_100(self):
        with pytest.raises(ConfigurationError):
            make_type(read_ratio=50.0)

    def test_negative_size_raises(self):
        with pytest.raises(ConfigurationError):
            make_type(rw_size_bytes=-1)

    def test_zero_users_raises(self):
        with pytest.raises(ConfigurationError):
            make_type(n_users=0)


class TestWeights:
    def test_operation_weights(self):
        weights = make_type().operation_weights
        assert weights[Operation.READ] == 60.0
        assert sum(weights.values()) == pytest.approx(100.0)

    def test_allocation_weights_drop_reads_and_writes(self):
        weights = make_type().allocation_weights
        assert Operation.READ not in weights
        assert Operation.WRITE not in weights
        assert weights[Operation.EXTEND] == 15.0

    def test_sequential_weights(self):
        weights = make_type().sequential_weights
        assert set(weights) == {Operation.READ, Operation.WRITE}

    def test_sequential_weights_default_to_reads(self):
        log_like = make_type(
            read_ratio=0.0, write_ratio=0.0, extend_ratio=95.0,
            truncate_ratio=5.0, delete_ratio=0.0,
        )
        assert log_like.sequential_weights[Operation.READ] == 100.0


class TestDerived:
    def test_event_rate(self):
        assert make_type(n_users=4, process_time_ms=2.0).event_rate == 2.0

    def test_event_rate_zero_process_time(self):
        assert make_type(process_time_ms=0.0).event_rate == 2.0

    def test_expected_bytes(self):
        assert make_type().expected_bytes == 10 * 8192

    def test_with_files(self):
        assert make_type().with_files(99).n_files == 99

    def test_scaled_sizes(self):
        scaled = make_type().scaled_sizes(0.5)
        assert scaled.initial_size_bytes == 4096
        assert scaled.rw_size_bytes == 8192  # request sizes never scale
        assert scaled.truncate_size_bytes == 4096
        assert scaled.n_files == 10  # counts unscaled

    def test_scaled_sizes_floor(self):
        scaled = make_type().scaled_sizes(0.0001)
        assert scaled.initial_size_bytes == 1024  # default floor

    def test_scaled_sizes_bad_factor(self):
        with pytest.raises(ConfigurationError):
            make_type().scaled_sizes(0.0)

    def test_access_pattern_default_random(self):
        assert make_type().access is AccessPattern.RANDOM
