"""Unit tests for the §2.2 workload profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.units import GIB, KIB, MIB
from repro.workload.filetype import AccessPattern
from repro.workload.profiles import (
    Profile,
    mini,
    profile_by_name,
    supercomputer,
    time_sharing,
    transaction_processing,
)

CAPACITY = 2_831_155_200  # the paper's 2.8 G


class TestTimeSharing:
    def test_paper_file_sizes(self):
        profile = time_sharing(CAPACITY)
        small = profile.type_named("ts-small")
        large = profile.type_named("ts-large")
        assert small.initial_size_bytes == 8 * KIB
        assert large.initial_size_bytes == 96 * KIB

    def test_small_files_get_two_thirds_of_requests(self):
        profile = time_sharing(CAPACITY)
        small = profile.type_named("ts-small")
        large = profile.type_named("ts-large")
        share = small.event_rate / (small.event_rate + large.event_rate)
        assert share == pytest.approx(2 / 3, abs=0.05)

    def test_population_hits_fill_target(self):
        profile = time_sharing(CAPACITY, fill_fraction=0.91)
        assert profile.total_initial_bytes == pytest.approx(
            0.91 * CAPACITY, rel=0.02
        )

    def test_scale_shrinks_counts_not_sizes(self):
        full = time_sharing(CAPACITY)
        quarter = time_sharing(CAPACITY, scale=0.25)
        assert quarter.type_named("ts-small").n_files == pytest.approx(
            full.type_named("ts-small").n_files / 4, rel=0.01
        )
        assert quarter.type_named("ts-small").initial_size_bytes == 8 * KIB

    def test_large_ratios_match_paper(self):
        large = time_sharing(CAPACITY).type_named("ts-large")
        assert (large.read_ratio, large.write_ratio, large.extend_ratio,
                large.delete_ratio, large.truncate_ratio) == (60, 15, 15, 5, 5)

    def test_bad_fill_fraction(self):
        with pytest.raises(ConfigurationError):
            time_sharing(CAPACITY, fill_fraction=0.0)


class TestTransactionProcessing:
    def test_paper_population(self):
        profile = transaction_processing()
        relation = profile.type_named("tp-relation")
        assert relation.n_files == 10
        assert relation.initial_size_bytes == 210 * MIB
        assert profile.type_named("tp-applog").n_files == 5
        assert profile.type_named("tp-applog").initial_size_bytes == 5 * MIB
        assert profile.type_named("tp-syslog").initial_size_bytes == 10 * MIB

    def test_relation_ratios(self):
        relation = transaction_processing().type_named("tp-relation")
        assert (relation.read_ratio, relation.write_ratio,
                relation.extend_ratio, relation.truncate_ratio) == (60, 30, 7, 3)
        assert relation.access is AccessPattern.RANDOM

    def test_log_ratios(self):
        profile = transaction_processing()
        applog = profile.type_named("tp-applog")
        syslog = profile.type_named("tp-syslog")
        assert applog.extend_ratio == 93.0
        assert syslog.extend_ratio == 94.0
        assert syslog.read_ratio > applog.read_ratio  # transaction aborts

    def test_total_near_75_percent_of_capacity(self):
        profile = transaction_processing()
        assert profile.total_initial_bytes == pytest.approx(2.1 * GIB, rel=0.05)

    def test_scaling(self):
        half = transaction_processing(scale=0.5)
        assert half.type_named("tp-relation").initial_size_bytes == 105 * MIB
        assert half.type_named("tp-relation").n_files == 10


class TestSupercomputer:
    def test_paper_population(self):
        profile = supercomputer()
        assert profile.type_named("sc-large").n_files == 1
        assert profile.type_named("sc-large").initial_size_bytes == 500 * MIB
        assert profile.type_named("sc-medium").n_files == 15
        assert profile.type_named("sc-medium").initial_size_bytes == 100 * MIB
        assert profile.type_named("sc-small").n_files == 10
        assert profile.type_named("sc-small").initial_size_bytes == 10 * MIB

    def test_burst_sizes(self):
        profile = supercomputer()
        assert profile.type_named("sc-large").rw_size_bytes == 512 * KIB
        assert profile.type_named("sc-small").rw_size_bytes == 32 * KIB

    def test_all_sequential(self):
        profile = supercomputer()
        assert all(t.access is AccessPattern.SEQUENTIAL for t in profile.types)

    def test_small_files_deleted_and_recreated(self):
        small = supercomputer().type_named("sc-small")
        assert small.delete_ratio == 5.0


class TestRegistry:
    def test_profile_by_name(self):
        assert profile_by_name("ts", CAPACITY).name == "TS"
        assert profile_by_name("TP", CAPACITY).name == "TP"
        assert profile_by_name("sc", CAPACITY).name == "SC"
        assert profile_by_name("mini", CAPACITY).name == "MINI"

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            profile_by_name("nope", CAPACITY)

    def test_mini_profile(self):
        profile = mini(n_files=3, initial_size="4K")
        assert profile.types[0].n_files == 3
        assert profile.types[0].initial_size_bytes == 4096

    def test_duplicate_type_names_raise(self):
        small = time_sharing(CAPACITY).types[0]
        with pytest.raises(ConfigurationError):
            Profile(name="bad", types=(small, small))

    def test_empty_profile_raises(self):
        with pytest.raises(ConfigurationError):
            Profile(name="empty", types=())
