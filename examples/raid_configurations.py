#!/usr/bin/env python3
"""Disk-organization comparison: the paper's future-work RAID experiment.

§2.1 lists four organizations the disk system supports — plain striping,
mirroring, RAID-5, and Gray/Walker parity striping — and §6 flags "the
impact of a RAID in the underlying disk system will reduce the small
write performance" as future work.  This example runs that experiment:
identical small-write and large-read patterns against each organization.

Run:  python3 examples/raid_configurations.py
"""

from repro import Simulator
from repro.disk import (
    IoKind,
    MirroredArray,
    ParityStripedArray,
    Raid5Array,
    StripedArray,
    WREN_IV,
)
from repro.report.tables import Table
from repro.sim.rng import RandomStream
from repro.units import KIB, MIB


def timed_pattern(make_array, kind, request_units, n_requests, seed=5):
    """Issue random requests of one size; return mean latency (ms)."""
    sim = Simulator()
    array = make_array(sim)
    rng = RandomStream(seed)
    done = {}

    def worker():
        total = 0.0
        for _ in range(n_requests):
            start = rng.uniform_int(
                0, max(0, array.capacity_units - request_units)
            )
            began = sim.now
            yield array.transfer(kind, start, request_units)
            total += sim.now - began
        done["mean"] = total / n_requests

    sim.process(worker())
    sim.run()
    return done["mean"]


def main() -> None:
    geometry = WREN_IV.scaled(0.25)
    organizations = {
        "striped (paper's results)": lambda sim: StripedArray(
            sim, geometry, 8, 24 * KIB, KIB
        ),
        "mirrored": lambda sim: MirroredArray(sim, geometry, 4, 24 * KIB, KIB),
        "RAID-5": lambda sim: Raid5Array(sim, geometry, 8, 24 * KIB, KIB),
        "parity striped (Gray)": lambda sim: ParityStripedArray(
            sim, geometry, 8, KIB
        ),
    }

    table = Table(
        ["Organization", "8K random write", "8K random read", "4M read"],
        title="Mean request latency by disk organization (ms)",
    )
    for name, factory in organizations.items():
        small_write = timed_pattern(factory, IoKind.WRITE, 8, 200)
        small_read = timed_pattern(factory, IoKind.READ, 8, 200)
        big_read = timed_pattern(factory, IoKind.READ, 4 * MIB // KIB, 20)
        table.add_row(
            [name, f"{small_write:.1f}", f"{small_read:.1f}", f"{big_read:.1f}"]
        )
    print(table.render())
    print(
        "\nThe paper's future-work prediction holds: RAID-5's"
        " read-modify-write makes\nsmall writes markedly slower than on the"
        " plain striped array, while large\nsequential reads stay competitive."
    )


if __name__ == "__main__":
    main()
