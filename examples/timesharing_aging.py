#!/usr/bin/env python3
"""Time-sharing scenario: small-file churn, fragmentation, and aging.

Runs the §2.2 time-sharing workload (thousands of 8K files churned by
create/read/delete, plus 96K files that grow and shrink) through the
allocation test on each policy, reporting the fragmentation picture the
paper uses to judge disk-space efficiency — then shows the grow-factor
lever: g=2 trades slightly coarser growth for measurably less internal
fragmentation (Figure 1f's observation).

Run:  python3 examples/timesharing_aging.py [scale]
"""

import sys

from repro import (
    BuddyPolicy,
    ExperimentConfig,
    ExtentPolicy,
    FfsPolicy,
    FixedPolicy,
    RestrictedPolicy,
    SystemConfig,
)
from repro.core.configs import extent_ranges_for
from repro.core.experiments import run_allocation_experiment
from repro.report.tables import Table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    system = SystemConfig(scale=scale)
    print(f"TS workload on a {scale:g}x-scale array "
          f"({system.capacity_bytes // 2**20} MiB)\n")

    table = Table(
        ["Policy", "Internal frag", "External frag", "Files at failure",
         "Avg extents/file"],
        title="Time-sharing allocation test (run until the disk fills)",
    )
    policies = [
        BuddyPolicy(),
        RestrictedPolicy(block_sizes=("1K", "8K", "64K"), grow_factor=1),
        RestrictedPolicy(block_sizes=("1K", "8K", "64K"), grow_factor=2),
        ExtentPolicy(range_means=extent_ranges_for("TS", 3)),
        FixedPolicy("4K"),
        FfsPolicy("8K"),
    ]
    results = {}
    for policy in policies:
        config = ExperimentConfig(
            policy=policy, workload="TS", system=system, seed=3
        )
        result = run_allocation_experiment(config)
        results[policy.label] = result
        frag = result.fragmentation
        table.add_row(
            [
                policy.label,
                f"{frag.internal_percent:.1f}%",
                f"{frag.external_percent:.1f}%",
                result.file_count,
                f"{result.average_extents_per_file:.1f}",
            ]
        )
    print(table.render())

    grow1 = results["restricted[3 sizes, g=1, clustered]"].fragmentation
    grow2 = results["restricted[3 sizes, g=2, clustered]"].fragmentation
    print(
        f"\nGrow factor 2 cut internal fragmentation from "
        f"{grow1.internal_percent:.1f}% to {grow2.internal_percent:.1f}% — "
        "files stay in small\nblocks longer, so less of the last block is"
        " wasted (the paper's Figure 1f)."
    )


if __name__ == "__main__":
    main()
