#!/usr/bin/env python3
"""Quickstart: build a read-optimized file system and measure one file.

Creates the paper's disk array (at 10% scale), puts the selected
restricted-buddy allocation policy on it, writes a handful of files of
very different sizes, and times whole-file sequential reads — showing the
multiblock effect directly: bigger files get bigger blocks, fewer seeks,
and a higher share of the array's bandwidth.

Run:  python3 examples/quickstart.py
"""

from repro import (
    FileSystem,
    RandomStream,
    RestrictedPolicy,
    Simulator,
    SystemConfig,
)
from repro.report.tables import Table
from repro.units import MIB, format_size, parse_size


def main() -> None:
    system = SystemConfig(scale=0.1)  # a 280 M slice of the paper's array
    sim = Simulator()
    array = system.build_array(sim)
    policy = RestrictedPolicy()  # 1K..16M ladder, grow 1, clustered
    allocator = policy.build(
        array.capacity_units, system.disk_unit_bytes, RandomStream(42)
    )
    fs = FileSystem(sim, array, allocator)

    print(f"disk system : {len(array.drives)} drives, "
          f"{format_size(array.capacity_bytes)} capacity, "
          f"{array.max_bandwidth_bytes_per_ms * 1000 / MIB:.1f} MiB/s max")
    print(f"policy      : {policy.label}\n")

    sizes = ["8K", "96K", "1M", "16M", "64M"]
    files = []
    for size_text in sizes:
        fs_file = fs.create(tag=size_text)
        fs.allocate_to(fs_file, parse_size(size_text), step_bytes=8192)
        files.append(fs_file)

    table = Table(
        ["File", "Extents", "Largest block", "Read time", "Throughput", "% of max"],
        title="Whole-file sequential reads",
    )
    for fs_file in files:
        outcome = {}

        def reader(f=fs_file):
            started = sim.now
            yield from fs.read_whole(f)
            outcome["ms"] = sim.now - started

        sim.process(reader())
        sim.run()
        ms = outcome["ms"]
        rate = fs_file.length_bytes / ms  # bytes per ms
        table.add_row(
            [
                fs_file.tag,
                fs_file.handle.extent_count,
                format_size(
                    max(e.length for e in fs_file.handle.extents) * fs.unit_bytes
                ),
                f"{ms:.1f} ms",
                f"{rate * 1000 / MIB:.2f} MiB/s",
                f"{100 * rate / array.max_bandwidth_bytes_per_ms:.1f}%",
            ]
        )
    print(table.render())
    print(
        "\nNote how the block size ladder kicks in: small files stay in"
        " small blocks\n(no wasted space), large files get 1M/16M blocks"
        " and stream at near-full\narray bandwidth."
    )


if __name__ == "__main__":
    main()
