#!/usr/bin/env python3
"""Trace-driven controlled comparison (the paper's §6 closing wish).

"Applying the allocation policies to genuine workloads will yield a much
more convincing argument."  This example records one operation trace from
the TS workload model, saves it to JSON (the same format a converted real
trace would use), then replays the byte-identical request stream against
every allocation policy.  Because the demand is fixed, the *lag* — how
far each system falls behind the trace's timestamps — isolates the
policy's contribution.

Run:  python3 examples/trace_replay.py [scale]
"""

import sys
import tempfile

from repro import (
    BuddyPolicy,
    ExtentPolicy,
    FfsPolicy,
    FixedPolicy,
    RandomStream,
    RestrictedPolicy,
    Simulator,
    SystemConfig,
)
from repro.core.configs import extent_ranges_for
from repro.core.experiments import build_profile
from repro.fs.filesystem import FileSystem
from repro.report.tables import Table
from repro.workload.trace import Trace, record_trace, replay_trace


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    system = SystemConfig(scale=scale)
    profile = build_profile("TS", system, fill_fraction=0.5)
    trace = record_trace(profile, duration_ms=20_000, seed=23)

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        trace.save(handle.name)
        trace = Trace.load(handle.name)  # prove the round trip

    print(
        f"trace: {len(trace.initial)} files, {len(trace.events)} operations "
        f"over {trace.duration_ms / 1000:.0f}s  ({trace.operation_counts()})\n"
    )

    table = Table(
        ["Policy", "Mean lag (ms)", "Completed at", "Disk-full events"],
        title="One trace, every policy: identical demand, different placement",
    )
    policies = [
        RestrictedPolicy(block_sizes=("1K", "8K", "64K")),
        ExtentPolicy(range_means=extent_ranges_for("TS", 3)),
        BuddyPolicy(),
        FfsPolicy("8K"),
        FixedPolicy("4K"),
    ]
    for policy in policies:
        sim = Simulator()
        array = system.build_array(sim)
        allocator = policy.build(
            array.capacity_units, system.disk_unit_bytes, RandomStream(23)
        )
        fs = FileSystem(sim, array, allocator)
        result = replay_trace(sim, fs, trace)
        table.add_row(
            [
                policy.label,
                f"{result.mean_lag_ms:.1f}",
                f"{result.completed_ms / 1000:.1f}s",
                result.disk_full_events,
            ]
        )
    print(table.render())
    print(
        "\nEvery row served the same reads and writes at the same moments;"
        "\nthe lag column is pure allocation-policy signal."
    )


if __name__ == "__main__":
    main()
