#!/usr/bin/env python3
"""Transaction-processing scenario: the paper's TP workload end to end.

Runs the §2.2 transaction-processing environment — ten relations, five
application logs, one transaction log — against two allocation policies
(the extent-based policy a database vendor would pick, and the fixed-block
baseline the paper criticizes) and reports page-read latency and overall
throughput.  This is the paper's motivating comparison: "commercial
database vendors usually choose to implement their own file system on a
raw disk partition ... to guarantee physical contiguity."

Run:  python3 examples/database_server.py [scale]
"""

import sys

from repro import ExperimentConfig, ExtentPolicy, FixedPolicy, SystemConfig
from repro.core.experiments import run_performance_experiment
from repro.report.tables import Table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    system = SystemConfig(scale=scale)
    print(f"TP workload on a {scale:g}x-scale array "
          f"({system.capacity_bytes // 2**20} MiB)\n")

    table = Table(
        ["Policy", "Application (% max)", "Sequential (% max)",
         "Ops completed", "Governor conversions"],
        title="Transaction processing: extent policy vs fixed-block baseline",
    )
    results = {}
    for policy in (ExtentPolicy(range_means=("512K", "1M", "16M")), FixedPolicy("16K")):
        config = ExperimentConfig(
            policy=policy, workload="TP", system=system, seed=7
        )
        result = run_performance_experiment(
            config, app_cap_ms=60_000, seq_cap_ms=60_000
        )
        results[policy.label] = result
        table.add_row(
            [
                policy.label,
                f"{result.application.percent:.1f}%",
                f"{result.sequential.percent:.1f}%",
                sum(result.operation_counts.values()),
                result.governor_conversions,
            ]
        )
    print(table.render())

    extent = next(v for k, v in results.items() if k.startswith("extent"))
    fixed = next(v for k, v in results.items() if k.startswith("fixed"))
    gain = (
        extent.sequential.utilization / max(fixed.sequential.utilization, 1e-9)
    )
    print(
        f"\nSequentially scanning a relation is {gain:.1f}x faster with"
        " extent allocation:\nthe relation lives in a few physically"
        " contiguous extents instead of thousands\nof scattered 16K blocks."
    )


if __name__ == "__main__":
    main()
