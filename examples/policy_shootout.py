#!/usr/bin/env python3
"""Mini Figure 6: all four policies, all three workloads, one screen.

A compact version of the paper's §5 comparison (Figure 6a/6b) that runs in
about a minute at the default scale.  Use the benchmark suite
(``pytest benchmarks/test_fig6_comparison.py --benchmark-only -s``) for
the full-length measured version.

Run:  python3 examples/policy_shootout.py [scale]
"""

import sys

from repro import SystemConfig, figure6
from repro.report.figures import GroupedBarChart


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.08
    system = SystemConfig(scale=scale)
    print(f"Policy shootout at {scale:g}x scale "
          f"({system.capacity_bytes // 2**20} MiB)\n")

    cells = figure6(system, seed=17, app_cap_ms=40_000, seq_cap_ms=40_000)

    sequential = GroupedBarChart(
        "Sequential performance (% of max)", value_format="{:.1f}%", maximum=100.0
    )
    application = GroupedBarChart(
        "Application performance (% of max)", value_format="{:.1f}%", maximum=100.0
    )
    for cell in cells:
        sequential.add(cell.workload, cell.policy_label, cell.sequential_percent)
        application.add(cell.workload, cell.policy_label, cell.application_percent)
    print(sequential.render())
    print()
    print(application.render())


if __name__ == "__main__":
    main()
