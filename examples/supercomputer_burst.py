#!/usr/bin/env python3
"""Supercomputing scenario: large sequential bursts on a striped array.

Runs the §2.2 supercomputer workload (one 500M file, fifteen 100M files,
ten 10M scratch files, all read/written in 512K/32K bursts) under each of
the paper's allocation policies and shows how striping plus contiguous
allocation turns the eight-disk array into one fast logical disk.

Run:  python3 examples/supercomputer_burst.py [scale]
"""

import sys

from repro import (
    BuddyPolicy,
    ExperimentConfig,
    ExtentPolicy,
    FixedPolicy,
    RestrictedPolicy,
    SystemConfig,
)
from repro.core.experiments import run_performance_experiment
from repro.report.figures import GroupedBarChart


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    system = SystemConfig(scale=scale)
    print(f"SC workload on a {scale:g}x-scale array "
          f"({system.capacity_bytes // 2**20} MiB)\n")

    chart = GroupedBarChart(
        "Supercomputer workload (% of maximum array bandwidth)",
        value_format="{:.1f}%",
        maximum=100.0,
    )
    policies = [
        BuddyPolicy(),
        RestrictedPolicy(),
        ExtentPolicy(range_means=("512K", "1M", "16M")),
        FixedPolicy("16K"),
    ]
    for policy in policies:
        config = ExperimentConfig(
            policy=policy, workload="SC", system=system, seed=11
        )
        result = run_performance_experiment(
            config, app_cap_ms=60_000, seq_cap_ms=60_000
        )
        chart.add("application test", policy.label, result.application.percent)
        chart.add("sequential test", policy.label, result.sequential.percent)
    print(chart.render())
    print(
        "\nAll three multiblock policies exploit the array; the fixed-block"
        "\nbaseline pays a seek for every 16K block and cannot."
    )


if __name__ == "__main__":
    main()
