"""The runtime invariant auditor: swept cross-checks of simulator state.

Every number the study reports is read off simulator-internal
bookkeeping, and bookkeeping bugs accumulate silently — a leaked extent
or a dropped queue entry surfaces as a subtly wrong figure, not a crash.
The :class:`InvariantAuditor` closes that gap: it hangs off the
simulator like the tracer does (``sim.auditor``, default ``None`` — the
zero-overhead path), and on a configurable executed-event cadence plus
at freeze it sweeps a registry of per-subsystem checks:

* **alloc** — conservation (free + allocated + unaddressable == total)
  and no-overlap, per policy (buddy orders, extent/LFS interval maps,
  FFS fragments, the restricted ladder store, the fixed free list).
* **fs** — every live file's extent map agrees with its allocator
  handle; no dangling handles.
* **disk** — per-drive accounting (enqueued == served + queued +
  in-service) and FCFS order preservation.
* **clock** — simulated time never moves backwards.
* **rng** — per-stream draw counts only ever grow.
* **fault** — injector, per-drive flags, and the organization's
  degraded state all agree; mirrored/RAID-5 parity plans stay coherent.

A failed check raises :class:`~repro.errors.InvariantViolation` carrying
the sim time, subsystem, check name, and a state excerpt.  The same
sweep optionally samples a canonical fingerprint
(:mod:`repro.audit.fingerprint`), building the timeline the divergence
bisector compares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..errors import InvariantViolation, ReproError
from .fingerprint import Fingerprint, canonical_digest, capture_state

__all__ = ["AuditConfig", "InvariantAuditor"]

#: Default sweep cadence: one sweep per this many executed events.
DEFAULT_CADENCE_EVENTS = 25_000


@dataclass(frozen=True)
class AuditConfig:
    """What the auditor does and how often.

    Attributes:
        invariants: run the registered checks at each sweep.
        fingerprints: sample a canonical state digest at each sweep.
        cadence_events: executed events between sweeps (1 = every event).
        capture_state: retain the full state payload alongside each
            fingerprint — the bisector's fine pass needs the payloads to
            show *what* diverged, not just that something did.
        start_event: first executed-event index eligible for sweeping.
        end_event: last eligible index (inclusive), ``None`` = no bound.
    """

    invariants: bool = True
    fingerprints: bool = False
    cadence_events: int = DEFAULT_CADENCE_EVENTS
    capture_state: bool = False
    start_event: int = 0
    end_event: int | None = None

    def __post_init__(self) -> None:
        if self.cadence_events < 1:
            raise ReproError(
                f"audit cadence must be >= 1 event: {self.cadence_events}"
            )


class InvariantAuditor:
    """Pluggable per-subsystem checks plus the fingerprint timeline.

    Attach with ``sim.auditor = auditor`` (or :meth:`attach`), register
    subsystems with :meth:`observe`, and the engine's audited run loop
    calls :meth:`after_event` once per executed event.  Call
    :meth:`finish` when the experiment freezes for the final sweep.
    """

    def __init__(self, config: AuditConfig | None = None) -> None:
        self.config = config or AuditConfig()
        #: (subsystem, check name, callable) — callables take the sim and
        #: raise (anything) on violation; the auditor wraps the failure.
        self.checks: list[tuple[str, str, Callable[[Any], None]]] = []
        self.fingerprints: list[Fingerprint] = []
        #: Full state payloads, parallel to ``fingerprints``, only when
        #: ``config.capture_state`` is set.
        self.states: list[dict] = []
        self.sweeps = 0
        self.event_index = 0
        self._since_sweep = 0
        self._last_time = float("-inf")
        self.fs = None
        self.array = None
        self.allocator = None
        self.injector = None
        self.ledger = None
        self._rng_seen: dict[str, int] = {}
        #: Optional one-shot state mutation fired just before the given
        #: executed-event index — the bisector's test harness uses this
        #: to seed a deliberate single-event divergence.
        self.perturb_at: int | None = None
        self.perturb: Callable[[Any], None] | None = None

    # -- wiring --------------------------------------------------------------

    def attach(self, sim) -> "InvariantAuditor":
        """Install on a simulator (its run loop then dispatches to us)."""
        sim.auditor = self
        return self

    def observe(
        self, fs=None, array=None, allocator=None, injector=None, ledger=None
    ) -> None:
        """Register subsystems and their default checks.

        Safe to call more than once; each non-None argument replaces the
        previous registration of that subsystem.
        """
        if allocator is not None and self.allocator is None:
            self.register("alloc", "conservation", self._check_allocator)
        if fs is not None and self.fs is None:
            self.register("fs", "extmap-consistency", self._check_fs)
        if array is not None and self.array is None:
            self.register("disk", "queue-accounting", self._check_queues)
        if ledger is not None and self.ledger is None:
            self.register("rng", "draw-ledger", self._check_rng)
        if injector is not None and self.injector is None:
            self.register("fault", "state-consistency", self._check_faults)
        self.fs = fs if fs is not None else self.fs
        self.array = array if array is not None else self.array
        self.allocator = allocator if allocator is not None else self.allocator
        self.injector = injector if injector is not None else self.injector
        self.ledger = ledger if ledger is not None else self.ledger

    def register(
        self, subsystem: str, name: str, check: Callable[[Any], None]
    ) -> None:
        """Add a check; ``check(sim)`` raises on violation."""
        self.checks.append((subsystem, name, check))

    # -- engine hook ---------------------------------------------------------

    def after_event(self, sim) -> None:
        """Called by the audited run loop after every executed event."""
        self.event_index += 1
        index = self.event_index
        if self.perturb_at is not None and index == self.perturb_at:
            perturb, self.perturb = self.perturb, None
            self.perturb_at = None
            if perturb is not None:
                perturb(sim)
        now = sim.now
        if now < self._last_time:
            raise InvariantViolation(
                now, "clock", "monotonicity",
                f"clock moved backwards: {self._last_time!r} -> {now!r}",
            )
        self._last_time = now
        config = self.config
        if index < config.start_event:
            return
        if config.end_event is not None and index > config.end_event:
            return
        self._since_sweep += 1
        if self._since_sweep >= config.cadence_events:
            self._since_sweep = 0
            self.sweep(sim)

    def sweep(self, sim, fingerprint: bool = True) -> None:
        """Run every registered check, then sample a fingerprint."""
        self.sweeps += 1
        if self.config.invariants:
            for subsystem, name, check in self.checks:
                try:
                    check(sim)
                except InvariantViolation:
                    raise
                except ReproError as exc:
                    raise InvariantViolation(
                        sim.now, subsystem, name, str(exc),
                        excerpt=self._excerpt(),
                    ) from exc
        if fingerprint and self.config.fingerprints:
            state = capture_state(
                sim, fs=self.fs, array=self.array,
                allocator=self.allocator, ledger=self.ledger,
            )
            self.fingerprints.append(
                Fingerprint(self.event_index, sim.now, canonical_digest(state))
            )
            if self.config.capture_state:
                self.states.append(state)

    def finish(self, sim) -> None:
        """Final sweep at freeze (cadence ignored).

        Invariant checks always run — a leak present at freeze must fail
        the run however the cadence fell.  The fingerprint sample still
        honors the config's event window, so a windowed replay (the
        bisector's probes) never picks up a stray end-of-run sample.
        """
        self._since_sweep = 0
        config = self.config
        in_window = self.event_index >= config.start_event and (
            config.end_event is None or self.event_index <= config.end_event
        )
        self.sweep(sim, fingerprint=in_window)

    def _excerpt(self) -> dict:
        """A small JSON-safe snapshot attached to violations."""
        excerpt: dict = {"event_index": self.event_index}
        allocator = self.allocator
        if allocator is not None:
            excerpt["alloc"] = {
                "policy": type(allocator).__name__,
                "allocated_units": allocator.allocated_units,
                "capacity_units": allocator.capacity_units,
                "live_files": len(allocator.files),
                "failed_requests": allocator.failed_requests,
            }
            # Policies with auxiliary free structures (the restricted
            # ladder store) report their own free-unit accounting too —
            # a conservation violation's excerpt then shows both sides
            # of the mismatch, not just the allocator's ledger.
            store = getattr(allocator, "store", None)
            free_units = getattr(store, "free_units", None)
            if free_units is not None:
                excerpt["alloc"]["store_free_units"] = free_units
        array = self.array
        if array is not None:
            excerpt["disk"] = [
                {
                    "index": d.index,
                    "enqueued": d.requests_enqueued,
                    "served": d.requests_served,
                    "depth": d.queue_depth,
                    "busy": d.busy,
                }
                for d in array.drives
            ]
        return excerpt

    # -- default checks ------------------------------------------------------

    def _check_allocator(self, sim) -> None:
        self.allocator.audit_check()

    def _check_fs(self, sim) -> None:
        fs = self.fs
        allocator = fs.allocator
        unit = fs.unit_bytes
        for fs_file in fs.live_files():
            handle = fs_file.handle
            if handle.deleted:
                raise InvariantViolation(
                    sim.now, "fs", "extmap-consistency",
                    f"file {fs_file.fs_id} references a deleted handle",
                    excerpt=self._excerpt(),
                )
            if allocator.files.get(handle.file_id) is not handle:
                raise InvariantViolation(
                    sim.now, "fs", "extmap-consistency",
                    f"file {fs_file.fs_id}: handle {handle.file_id} is "
                    f"dangling (unknown to the allocator)",
                    excerpt=self._excerpt(),
                )
            mapped = fs_file.extmap.total_units
            if mapped != handle.allocated_units:
                raise InvariantViolation(
                    sim.now, "fs", "extmap-consistency",
                    f"file {fs_file.fs_id}: extent map covers {mapped} units "
                    f"but the handle holds {handle.allocated_units}",
                    excerpt=self._excerpt(),
                )
            needed = -(-fs_file.length_bytes // unit)
            if needed > mapped:
                raise InvariantViolation(
                    sim.now, "fs", "extmap-consistency",
                    f"file {fs_file.fs_id}: logical length {fs_file.length_bytes} "
                    f"bytes needs {needed} units but only {mapped} are mapped",
                    excerpt=self._excerpt(),
                )

    def _check_queues(self, sim) -> None:
        for drive in self.array.drives:
            # ``requests_served`` ticks at service *start*, so it already
            # counts the in-service request the busy flag marks.
            accounted = drive.requests_served + drive.queue_depth
            if drive.requests_enqueued != accounted:
                raise InvariantViolation(
                    sim.now, "disk", "queue-accounting",
                    f"drive {drive.index}: {drive.requests_enqueued} enqueued "
                    f"!= {drive.requests_served} entered service + "
                    f"{drive.queue_depth} still queued",
                    excerpt=self._excerpt(),
                )
            if drive.busy and drive.requests_served == 0:
                raise InvariantViolation(
                    sim.now, "disk", "queue-accounting",
                    f"drive {drive.index} is busy with no request on record",
                    excerpt=self._excerpt(),
                )
            if drive.discipline == "fcfs":
                last = float("-inf")
                for _, _, submitted_at, _ in drive._queue:
                    if submitted_at < last:
                        raise InvariantViolation(
                            sim.now, "disk", "queue-accounting",
                            f"drive {drive.index}: FCFS order violated "
                            f"({submitted_at!r} queued behind {last!r})",
                            excerpt=self._excerpt(),
                        )
                    last = submitted_at

    def _check_rng(self, sim) -> None:
        for key, stream in self.ledger.items():
            seen = self._rng_seen.get(key, 0)
            if stream.draws < seen:
                raise InvariantViolation(
                    sim.now, "rng", "draw-ledger",
                    f"stream {stream.name!r} draw count regressed: "
                    f"{seen} -> {stream.draws}",
                    excerpt=self._excerpt(),
                )
            self._rng_seen[key] = stream.draws

    def _check_faults(self, sim) -> None:
        injector = self.injector
        array = self.array
        unavailable = {s.index for s in injector.states if not s.available}
        if unavailable != injector._unavailable:
            raise InvariantViolation(
                sim.now, "fault", "state-consistency",
                f"per-drive flags say {sorted(unavailable)} unavailable but "
                f"the injector tracks {sorted(injector._unavailable)}",
                excerpt=self._excerpt(),
            )
        for state, drive in zip(injector.states, array.drives):
            if drive.fault_state is not state:
                raise InvariantViolation(
                    sim.now, "fault", "state-consistency",
                    f"drive {drive.index} is detached from its fault state",
                    excerpt=self._excerpt(),
                )
            if state.status not in ("healthy", "failed", "rebuilding"):
                raise InvariantViolation(
                    sim.now, "fault", "state-consistency",
                    f"drive {state.index} has unknown status {state.status!r}",
                    excerpt=self._excerpt(),
                )
            if state.available != (state.status == "healthy"):
                raise InvariantViolation(
                    sim.now, "fault", "state-consistency",
                    f"drive {state.index}: status {state.status!r} "
                    f"contradicts available={state.available}",
                    excerpt=self._excerpt(),
                )
        if array.degraded != bool(unavailable):
            raise InvariantViolation(
                sim.now, "fault", "state-consistency",
                f"organization reports degraded={array.degraded} with "
                f"{len(unavailable)} drive(s) unavailable",
                excerpt=self._excerpt(),
            )
        self._check_parity_plan(sim, unavailable)

    def _check_parity_plan(self, sim, unavailable: set[int]) -> None:
        """Structural parity-plan coherence for the redundant layouts."""
        array = self.array
        kind = type(array).__name__
        if kind == "Raid5Array":
            n = array.n_disks
            rows = array._rows
            for row in {0, rows // 2, max(0, rows - 1)}:
                if array._parity_drive_of_row(row) != row % n:
                    raise InvariantViolation(
                        sim.now, "fault", "parity-plan",
                        f"RAID-5 parity rotation broken at row {row}",
                        excerpt=self._excerpt(),
                    )
            if array.capacity_bytes != array._per_drive_bytes * (n - 1):
                raise InvariantViolation(
                    sim.now, "fault", "parity-plan",
                    "RAID-5 data capacity no longer excludes one parity "
                    "drive per row",
                    excerpt=self._excerpt(),
                )
        elif kind == "MirroredArray":
            n_primary = len(array.primary.drives)
            if len(array.secondary.drives) != n_primary:
                raise InvariantViolation(
                    sim.now, "fault", "parity-plan",
                    "mirror copies hold different drive counts",
                    excerpt=self._excerpt(),
                )
            for i, drive in enumerate(array.drives):
                if drive.index != i:
                    raise InvariantViolation(
                        sim.now, "fault", "parity-plan",
                        f"mirror drive at position {i} is numbered "
                        f"{drive.index}; rebuild peer mapping would break",
                        excerpt=self._excerpt(),
                    )
