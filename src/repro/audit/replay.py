"""Replay builders: adapt experiments to the bisector's callback shape.

:func:`bisect_divergence` wants ``Replay`` callbacks — "run this variant
under this :class:`~repro.audit.AuditConfig`, give me the populated
auditor".  This module builds those callbacks from the repo's own
experiment entry points, so ``repro bisect`` and the tests never
hand-roll experiment plumbing.

Kept out of ``repro.audit``'s package namespace on purpose: this module
imports :mod:`repro.core.experiments`, which itself imports the audit
package, and keeping the dependency one-way (core -> audit) everywhere
else means the import graph stays acyclic.  Import it directly::

    from repro.audit.replay import performance_replay
"""

from __future__ import annotations

from typing import Any, Callable

from ..sim.engine import Simulator
from .bisect import Replay
from .invariants import AuditConfig, InvariantAuditor

__all__ = ["performance_replay"]


def performance_replay(
    config,
    simulator_factory: Callable[[], Simulator] | None = None,
    perturb_at: int | None = None,
    perturb: Callable[[Any], None] | None = None,
    **experiment_kwargs: Any,
) -> Replay:
    """A :data:`~repro.audit.bisect.Replay` over one performance config.

    Each call of the returned callback replays the full experiment under
    the given audit configuration and returns the auditor that rode it.
    ``perturb_at``/``perturb`` seed a deliberate one-shot state mutation
    just before that executed-event index — the bisector's self-test
    uses it to plant a divergence at a known event.

    Args:
        config: the :class:`~repro.core.configs.ExperimentConfig` to run.
        simulator_factory: optional engine variant (e.g. the reference
            engine, ``lambda: Simulator(immediate_queue=False)``).
        experiment_kwargs: forwarded to
            :func:`~repro.core.experiments.run_performance_experiment`
            (caps, tolerances, phase switches).
    """
    from ..core.experiments import run_performance_experiment

    def replay(audit: AuditConfig) -> InvariantAuditor:
        built: list[Simulator] = []
        armed: list[bool] = []

        def factory() -> Simulator:
            sim = (
                Simulator()
                if simulator_factory is None
                else simulator_factory()
            )
            built.append(sim)
            if perturb_at is not None:
                # The auditor is created *inside* the experiment, after
                # the factory returns; intercept the first run() call —
                # by then it is attached, and no event has executed yet.
                original_run = sim.run

                def run_armed(*args: Any, **kwargs: Any):
                    if not armed and sim.auditor is not None:
                        armed.append(True)
                        sim.auditor.perturb_at = perturb_at
                        sim.auditor.perturb = perturb
                    return original_run(*args, **kwargs)

                sim.run = run_armed
            return sim

        run_performance_experiment(
            config, audit=audit, simulator_factory=factory,
            **experiment_kwargs,
        )
        return built[0].auditor

    return replay
