"""Canonical state fingerprints: deterministic digests of simulator state.

A fingerprint is the sha256 of a canonical JSON rendering of the pieces
of state that determine everything a simulation will do next: the live
event queue, every registered RNG stream's internal state, the
allocator's free structures, the extent map of every live file, and each
drive's request queue.  Two runs whose fingerprint timelines match at
every sample are in the same state at those points; the first differing
sample brackets the first diverging event, which is what
:mod:`repro.audit.bisect` exploits.

Canonicality: every snapshot is built from primitives only (ints,
floats, strings, lists, dicts), rendered with ``sort_keys=True`` and
fixed separators, so the digest is a pure function of simulator state —
independent of process, worker count, engine variant, or dict insertion
history.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

__all__ = [
    "Fingerprint",
    "canonical_digest",
    "capture_state",
    "snapshot_allocator",
    "snapshot_events",
    "snapshot_extents",
    "snapshot_queues",
    "snapshot_rng",
]


@dataclass(frozen=True)
class Fingerprint:
    """One timeline sample: the digest of the full state at one event.

    Attributes:
        index: events executed when the sample was taken.
        time_ms: simulated time at the sample.
        digest: sha256 hex digest of the canonical state rendering.
    """

    index: int
    time_ms: float
    digest: str


def canonical_digest(payload: Any) -> str:
    """sha256 over the canonical JSON rendering of ``payload``."""
    rendered = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(rendered.encode()).hexdigest()


def _callback_name(callback: Any) -> str:
    """A stable, process-independent name for an event callback."""
    module = getattr(callback, "__module__", "") or ""
    qualname = getattr(callback, "__qualname__", "") or type(callback).__name__
    return f"{module}.{qualname}"


def snapshot_events(sim) -> list[list]:
    """Live (non-cancelled) events as ``[time, seq, callback]``.

    Sorted by ``(time, seq)`` — the engine's firing order — so the
    rendering is identical whichever internal queue holds each event.
    The ``immediate`` routing flag is deliberately excluded: the fast
    and reference engines route zero-delay events differently while
    firing identical sequences, and fingerprints must agree across both.
    """
    return [
        [event.time, event.seq, _callback_name(event.callback)]
        for event in sim._heap.live_events()
    ]


def snapshot_rng(ledger) -> dict[str, dict]:
    """Per-stream draw counts and internal-state digests from a ledger."""
    if ledger is None:
        return {}
    return {
        key: {"name": stream.name, "draws": stream.draws,
              "state": stream.state_digest()}
        for key, stream in ledger.items()
    }


def snapshot_allocator(allocator) -> dict:
    """The allocator's accounting totals plus its free structures."""
    if allocator is None:
        return {}
    return {
        "policy": type(allocator).__name__,
        "capacity_units": allocator.capacity_units,
        "allocated_units": allocator.allocated_units,
        "requests": allocator.allocation_requests,
        "failed": allocator.failed_requests,
        "free": allocator.snapshot_free_state(),
    }


def snapshot_extents(fs) -> list[list]:
    """Every live file's extent list, ordered by file id."""
    if fs is None:
        return []
    out: list[list] = []
    for fs_file in fs.live_files():
        handle = fs_file.handle
        extents = [[e.start, e.length] for e in handle.extents]
        descriptor = (
            [handle.descriptor.start, handle.descriptor.length]
            if handle.descriptor is not None
            else None
        )
        out.append([fs_file.fs_id, fs_file.length_bytes, descriptor, extents])
    return out


def snapshot_queues(array) -> list[dict]:
    """Per-drive queue state: pending requests, counters, busy flag."""
    if array is None:
        return []
    out: list[dict] = []
    for drive in array.drives:
        out.append(
            {
                "index": drive.index,
                "busy": drive.busy,
                "enqueued": drive.requests_enqueued,
                "served": drive.requests_served,
                "bytes_moved": drive.bytes_moved,
                "queue": [
                    [request.kind.value, request.start_byte,
                     request.n_bytes, submitted_at]
                    for request, _, submitted_at, _ in drive._queue
                ],
            }
        )
    return out


def capture_state(sim, fs=None, array=None, allocator=None, ledger=None) -> dict:
    """The full canonical snapshot a fingerprint digests.

    Every component is optional — the auditor passes whatever subsystems
    the experiment registered, and an unregistered component contributes
    an empty (but still canonical) section.
    """
    return {
        "time_ms": sim.now,
        "events_executed": sim.events_executed,
        "heap": snapshot_events(sim),
        "rng": snapshot_rng(ledger),
        "alloc": snapshot_allocator(allocator),
        "extents": snapshot_extents(fs),
        "queues": snapshot_queues(array),
    }
