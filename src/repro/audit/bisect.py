"""Divergence bisection: localize the first event where two runs differ.

Two runs that should be bit-identical (fast vs reference engine, one
worker vs four, two configs believed equivalent) occasionally are not —
and the symptom (a different final number) appears millions of events
after the cause.  This module localizes the cause:

1. **Coarse pass** — replay both runs with fingerprints sampled every
   ``cadence`` events and compare the timelines; the first differing
   sample brackets the divergence to one cadence interval.
2. **Binary search** — while the bracket exceeds ``fine_limit`` events,
   replay both runs with a single fingerprint at the midpoint, halving
   the bracket each round (replays are deterministic, so probing is
   sound).
3. **Fine pass** — replay the final bracket with a fingerprint (and
   full state payload) at *every* event; the first differing digest is
   the first diverging event, reported with both state excerpts.

What this can localize: any divergence that manifests in the
fingerprinted state (event queue, RNG streams, allocator free
structures, extent maps, drive queues).  What it cannot: state outside
the fingerprint (e.g. a float accumulated only into a report), and
divergences *caused* earlier than they first touch fingerprinted state —
the report pinpoints the first observable difference, which is where
debugging starts, not necessarily where the root cause lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import ReproError
from .fingerprint import Fingerprint, canonical_digest
from .invariants import AuditConfig, InvariantAuditor

__all__ = ["DivergenceReport", "bisect_divergence", "compare_timelines"]

#: Replay callback: given an audit configuration, run one variant to
#: completion and return its auditor (fingerprints populated).
Replay = Callable[[AuditConfig], InvariantAuditor]

#: Bracket size below which one every-event pass beats more probing.
DEFAULT_FINE_LIMIT = 4096


@dataclass(frozen=True)
class DivergenceReport:
    """Where two replayed runs first disagree, if anywhere.

    Attributes:
        diverged: whether any fingerprint differed.
        first_event: executed-event index of the first diverging
            fingerprint (``None`` when the runs agree).
        bracket: the final ``(lo, hi]`` event interval searched.
        time_a / time_b: simulated time of the diverging sample in each
            run (``None`` when the runs agree).
        digest_a / digest_b: the differing digests.
        differing_sections: top-level state sections whose canonical
            renderings differ at the diverging event.
        state_a / state_b: full state payloads at the diverging event.
        probes: replays performed per run (coarse + bisection + fine).
    """

    diverged: bool
    first_event: int | None = None
    bracket: tuple[int, int] | None = None
    time_a: float | None = None
    time_b: float | None = None
    digest_a: str | None = None
    digest_b: str | None = None
    differing_sections: tuple[str, ...] = ()
    state_a: dict | None = field(default=None, repr=False)
    state_b: dict | None = field(default=None, repr=False)
    probes: int = 0

    def render(self) -> str:
        """Human-readable summary for the CLI."""
        if not self.diverged:
            return (
                f"no divergence: fingerprint timelines identical "
                f"({self.probes} replay(s) per run)"
            )
        def fmt(value: float | None) -> str:
            return f"{value:g} ms" if value is not None else "n/a (run ended)"

        lines = [
            f"first diverging event: #{self.first_event}",
            f"  sim time: run A {fmt(self.time_a)}, run B {fmt(self.time_b)}",
            f"  digest A: {self.digest_a}",
            f"  digest B: {self.digest_b}",
            f"  differing state: {', '.join(self.differing_sections) or '?'}",
            f"  bracket searched: ({self.bracket[0]}, {self.bracket[1]}]",
            f"  replays per run: {self.probes}",
        ]
        for label, state in (("A", self.state_a), ("B", self.state_b)):
            if state is None:
                continue
            for section in self.differing_sections:
                lines.append(f"  state {label}.{section}: {state.get(section)!r}")
        return "\n".join(lines)


def compare_timelines(
    a: Sequence[Fingerprint], b: Sequence[Fingerprint]
) -> int | None:
    """Position of the first differing sample, or ``None`` if identical.

    Samples differ when any of (event index, sim time, digest) differ;
    timelines of different lengths differ at the first missing sample.
    """
    for position, (sample_a, sample_b) in enumerate(zip(a, b)):
        if (
            sample_a.index != sample_b.index
            or sample_a.time_ms != sample_b.time_ms
            or sample_a.digest != sample_b.digest
        ):
            return position
    if len(a) != len(b):
        return min(len(a), len(b))
    return None


def _sections_differing(state_a: dict, state_b: dict) -> tuple[str, ...]:
    keys = sorted(set(state_a) | set(state_b))
    return tuple(
        key
        for key in keys
        if canonical_digest(state_a.get(key)) != canonical_digest(state_b.get(key))
    )


def _probe(replay_a: Replay, replay_b: Replay, index: int) -> bool:
    """True when the two runs' states agree after executing event ``index``."""
    config = AuditConfig(
        invariants=False, fingerprints=True, cadence_events=1,
        start_event=index, end_event=index,
    )
    sample_a = replay_a(config).fingerprints
    sample_b = replay_b(config).fingerprints
    if not sample_a or not sample_b:
        # One run ended before the probe point; treat as diverged there.
        return False
    return sample_a[0].digest == sample_b[0].digest


def bisect_divergence(
    replay_a: Replay,
    replay_b: Replay,
    cadence: int = 50_000,
    fine_limit: int = DEFAULT_FINE_LIMIT,
) -> DivergenceReport:
    """Localize the first diverging event between two replayable runs.

    ``replay_a``/``replay_b`` must be *deterministic*: calling either
    with the same :class:`AuditConfig` must reproduce the same run.
    """
    if cadence < 1:
        raise ReproError(f"bisect cadence must be >= 1: {cadence}")
    probes = 1
    coarse = AuditConfig(
        invariants=False, fingerprints=True, cadence_events=cadence
    )
    timeline_a = replay_a(coarse).fingerprints
    timeline_b = replay_b(coarse).fingerprints
    position = compare_timelines(timeline_a, timeline_b)
    if position is None:
        return DivergenceReport(diverged=False, probes=probes)

    # The sample at `position` differs; the one before it (if any) agrees,
    # so the first diverging event lies in (lo, hi].
    lo = timeline_a[position - 1].index if position > 0 else 0
    shorter = min(len(timeline_a), len(timeline_b))
    if position < shorter:
        hi = max(timeline_a[position].index, timeline_b[position].index)
    else:
        # One run simply executed further; bound by its next sample.
        longer = timeline_a if len(timeline_a) > len(timeline_b) else timeline_b
        hi = longer[position].index

    while hi - lo > fine_limit:
        mid = (lo + hi) // 2
        probes += 1
        if _probe(replay_a, replay_b, mid):
            lo = mid
        else:
            hi = mid

    fine = AuditConfig(
        invariants=False, fingerprints=True, cadence_events=1,
        capture_state=True, start_event=lo + 1, end_event=hi,
    )
    probes += 1
    auditor_a = replay_a(fine)
    auditor_b = replay_b(fine)
    fine_position = compare_timelines(auditor_a.fingerprints, auditor_b.fingerprints)
    if fine_position is None:
        # Divergence visible at coarse cadence but not inside the bracket:
        # the bracket bounds were off by a run ending early.
        raise ReproError(
            f"bisect lost the divergence inside ({lo}, {hi}]; the runs may "
            f"not be deterministic replays"
        )

    def _at(auditor: InvariantAuditor, position: int):
        samples = auditor.fingerprints
        if position < len(samples):
            return samples[position], (
                auditor.states[position] if position < len(auditor.states) else None
            )
        return None, None

    sample_a, state_a = _at(auditor_a, fine_position)
    sample_b, state_b = _at(auditor_b, fine_position)
    first = (sample_a or sample_b).index
    return DivergenceReport(
        diverged=True,
        first_event=first,
        bracket=(lo, hi),
        time_a=sample_a.time_ms if sample_a else None,
        time_b=sample_b.time_ms if sample_b else None,
        digest_a=sample_a.digest if sample_a else None,
        digest_b=sample_b.digest if sample_b else None,
        differing_sections=(
            _sections_differing(state_a, state_b)
            if state_a is not None and state_b is not None
            else ()
        ),
        state_a=state_a,
        state_b=state_b,
        probes=probes,
    )
