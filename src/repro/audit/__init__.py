"""State-integrity subsystem: invariant auditor, fingerprints, bisector.

Three layers, built on the same sampling cadence:

* :class:`InvariantAuditor` (:mod:`repro.audit.invariants`) — swept
  per-subsystem cross-checks of simulator bookkeeping; violations raise
  :class:`~repro.errors.InvariantViolation`.
* canonical fingerprints (:mod:`repro.audit.fingerprint`) — sha256
  digests of the full deterministic state, recorded as a timeline.
* the divergence bisector (:mod:`repro.audit.bisect`) — replays two
  runs and binary-searches their fingerprint timelines down to the
  first diverging event.

All of it defaults off: a simulator without an attached auditor runs
the exact same fused loop at the same speed as one predating this
package (``tools/check_overhead.py`` enforces the claim in CI).
"""

from .bisect import DivergenceReport, bisect_divergence, compare_timelines
from .fingerprint import Fingerprint, canonical_digest, capture_state
from .invariants import AuditConfig, InvariantAuditor

__all__ = [
    "AuditConfig",
    "DivergenceReport",
    "Fingerprint",
    "InvariantAuditor",
    "bisect_divergence",
    "canonical_digest",
    "capture_state",
    "compare_timelines",
]
