"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro alloc --policy restricted --workload TS --scale 0.1
    python -m repro perf  --policy extent --workload TP --scale 0.1
    python -m repro compare --scale 0.1
    python -m repro faults --organization raid5 \
        --inject "fail:drive=0,at=15000,repair=40000"
    python -m repro table1

Exit status is 0 on success; configuration errors print to stderr and
exit 2 (argparse semantics); an interrupted sweep (Ctrl-C) flushes its
partial results and exits 130.

The ``alloc``, ``perf``, and ``compare`` commands accept ``--jobs`` (fan
independent sweep points across worker processes), ``--cache-dir``
(result cache location, default ``~/.cache/repro`` or $REPRO_CACHE_DIR),
and ``--no-cache``.  Progress and a runner summary line ("N executed,
M cached, ...") go to stderr, so stdout stays byte-identical whatever
the jobs count or cache state.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
import time
from pathlib import Path

from .audit import AuditConfig
from .audit.bisect import bisect_divergence
from .audit.replay import performance_replay
from .core.comparison import figure6
from .core.experiments import run_performance_experiment
from .core.runner import ExperimentRunner, ExperimentTask, default_cache_dir
from .core.configs import (
    ORGANIZATIONS,
    BuddyPolicy,
    ExperimentConfig,
    ExtentPolicy,
    FfsPolicy,
    LogStructuredPolicy,
    PolicyConfig,
    RestrictedPolicy,
    SystemConfig,
    extent_ranges_for,
    selected_fixed,
)
from .disk.geometry import WREN_IV
from .errors import ReproError, SweepInterrupted
from .fault.plan import parse_fault_spec
from .obs import SweepTelemetry, trace_to_chrome, trace_to_jsonl
from .sim.engine import Simulator
from .report.figures import GroupedBarChart
from .report.summary import (
    render_fault_summary,
    render_metrics_snapshot,
    render_performance_summary,
)
from .report.tables import Table
from .serve import ExperimentService, make_daemon, task_to_spec
from .units import MIB

POLICY_NAMES = ("buddy", "restricted", "extent", "fixed", "lfs", "ffs")


def make_policy(name: str, workload: str, args: argparse.Namespace) -> PolicyConfig:
    """Build a policy from CLI arguments (workload-aware defaults)."""
    if name == "buddy":
        return BuddyPolicy()
    if name == "restricted":
        return RestrictedPolicy(
            grow_factor=args.grow_factor,
            clustered=not args.unclustered,
        )
    if name == "extent":
        ranges = extent_ranges_for(workload, args.extent_ranges)
        return ExtentPolicy(range_means=ranges, fit=args.fit)
    if name == "fixed":
        return selected_fixed(workload)
    if name == "lfs":
        return LogStructuredPolicy()
    if name == "ffs":
        return FfsPolicy()
    raise argparse.ArgumentTypeError(f"unknown policy {name!r}")


def _progress(outcome, completed: int, total: int) -> None:
    """Per-point progress line on stderr (stdout carries only reports)."""
    status = "cached" if outcome.from_cache else (
        "failed" if outcome.error else f"{outcome.elapsed_s:.1f}s"
    )
    print(
        f"[{completed}/{total}] {outcome.task.describe()}: {status}",
        file=sys.stderr,
    )


def make_runner(args: argparse.Namespace) -> ExperimentRunner:
    """Build the experiment runner from the common CLI flags.

    ``--live`` wires a :class:`~repro.obs.telemetry.SweepTelemetry` view:
    running experiments stream progress frames (over the supervision
    pipes for pool workers, directly for inline runs) and a throttled
    status line lands on stderr.  stdout stays byte-identical either
    way.
    """
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    view = (
        SweepTelemetry(sys.stderr) if getattr(args, "live", False) else None
    )

    def progress(outcome, completed: int, total: int) -> None:
        if view is not None:
            view.note_point_done(completed, total, index=outcome.index)
        _progress(outcome, completed, total)

    return ExperimentRunner(
        jobs=args.jobs,
        cache_dir=cache_dir,
        use_cache=not args.no_cache,
        progress=progress,
        timeout_s=getattr(args, "timeout", None),
        retries=getattr(args, "retries", 0),
        checkpoint_dir=getattr(args, "checkpoint", None),
        resume=getattr(args, "resume", False),
        telemetry=view.on_frame if view is not None else None,
    )


def _finish(runner: ExperimentRunner) -> None:
    """Report the runner's stat counters on stderr."""
    print(f"runner: {runner.stats.summary()}", file=sys.stderr)
    if runner.cache is not None:
        print(f"runner: {runner.cache.stats_line()}", file=sys.stderr)


def cmd_alloc(args: argparse.Namespace) -> int:
    system = SystemConfig(scale=args.scale)
    policy = make_policy(args.policy, args.workload, args)
    config = ExperimentConfig(
        policy=policy, workload=args.workload, system=system, seed=args.seed
    )
    runner = make_runner(args)
    result = runner.results([ExperimentTask.allocation(config)])[0]
    _finish(runner)
    frag = result.fragmentation
    table = Table(["Metric", "Value"], title=f"Allocation test: {config.describe()}")
    table.add_row(["Internal fragmentation", f"{frag.internal_percent:.1f}%"])
    table.add_row(["External fragmentation", f"{frag.external_percent:.1f}%"])
    table.add_row(["Churn operations", result.operations])
    table.add_row(["Files at measurement", result.file_count])
    table.add_row(["Avg extents per file", f"{result.average_extents_per_file:.1f}"])
    table.add_row(["Disk filled", "yes" if result.filled else "no (steady state)"])
    print(table.render())
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    system = SystemConfig(scale=args.scale, organization=args.organization)
    policy = make_policy(args.policy, args.workload, args)
    faults = parse_fault_spec(args.inject) if args.inject else None
    config = ExperimentConfig(
        policy=policy, workload=args.workload, system=system, seed=args.seed,
        faults=faults,
    )
    runner = make_runner(args)
    task = ExperimentTask.performance(
        config, app_cap_ms=args.cap_ms, seq_cap_ms=args.cap_ms,
        audit=AuditConfig() if args.audit else None,
    )
    result = runner.results([task])[0]
    _finish(runner)
    print(render_performance_summary(result))
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Degraded-mode demonstration: inject faults, report the meters.

    Runs one performance experiment on a redundant organization with the
    given fault plan and prints the healthy/degraded throughput split —
    the quickest way to see a drive failure, the reconstruction-read
    penalty, and the rebuild competing for bandwidth.
    """
    system = SystemConfig(scale=args.scale, organization=args.organization)
    policy = make_policy(args.policy, args.workload, args)
    spec = parse_fault_spec(args.inject)
    if spec.empty:
        raise ReproError("the fault plan is empty; pass --inject CLAUSES")
    config = ExperimentConfig(
        policy=policy, workload=args.workload, system=system, seed=args.seed,
        faults=spec,
    )
    runner = make_runner(args)
    task = ExperimentTask.performance(
        config, app_cap_ms=args.cap_ms, seq_cap_ms=args.cap_ms
    )
    result = runner.results([task])[0]
    _finish(runner)
    print(f"fault plan: {spec.describe()}")
    print(f"organization: {args.organization}, {config.describe()}")
    print()
    print(render_fault_summary(result.faults))
    if result.io_failures:
        print()
        print(f"I/O failures surfaced to the workload: {result.io_failures}")
    return 0


def cmd_bisect(args: argparse.Namespace) -> int:
    """Replay two run variants; binary-search their first divergence.

    Variants: ``--vary engine`` compares the fused fast engine against
    the reference engine (expected identical — a divergence is an engine
    bug); ``--vary seed`` compares ``--seed`` against ``--seed-b``
    (expected to diverge almost immediately — useful for exercising the
    bisector and for calibrating what a real divergence report looks
    like).  Exit status: 0 when the timelines are identical, 3 when a
    divergence was localized.
    """
    import dataclasses

    system = SystemConfig(scale=args.scale, organization=args.organization)
    policy = make_policy(args.policy, args.workload, args)
    config = ExperimentConfig(
        policy=policy, workload=args.workload, system=system, seed=args.seed
    )
    kwargs = dict(app_cap_ms=args.cap_ms, seq_cap_ms=args.cap_ms)
    if args.vary == "engine":
        label_a, label_b = "fast engine", "reference engine"
        replay_a = performance_replay(config, **kwargs)
        replay_b = performance_replay(
            config,
            simulator_factory=lambda: Simulator(immediate_queue=False),
            **kwargs,
        )
    else:  # seed
        seed_b = args.seed_b if args.seed_b is not None else args.seed + 1
        label_a, label_b = f"seed {args.seed}", f"seed {seed_b}"
        replay_a = performance_replay(config, **kwargs)
        replay_b = performance_replay(
            dataclasses.replace(config, seed=seed_b), **kwargs
        )
    print(f"run A: {label_a}; run B: {label_b}", file=sys.stderr)
    report = bisect_divergence(
        replay_a, replay_b, cadence=args.cadence, fine_limit=args.fine_limit
    )
    print(report.render())
    return 3 if report.diverged else 0


def cmd_compare(args: argparse.Namespace) -> int:
    system = SystemConfig(scale=args.scale)
    runner = make_runner(args)
    cells = figure6(
        system,
        seed=args.seed,
        app_cap_ms=args.cap_ms,
        seq_cap_ms=args.cap_ms,
        runner=runner,
    )
    _finish(runner)
    sequential = GroupedBarChart(
        "Sequential performance (% of max)", value_format="{:.1f}%", maximum=100.0
    )
    application = GroupedBarChart(
        "Application performance (% of max)", value_format="{:.1f}%", maximum=100.0
    )
    for cell in cells:
        sequential.add(cell.workload, cell.policy_label, cell.sequential_percent)
        application.add(cell.workload, cell.policy_label, cell.application_percent)
    print(sequential.render())
    print()
    print(application.render())
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile one performance-experiment point: cProfile + engine counters.

    Prints three sections: the engine's own per-subsystem event/time
    breakdown (:class:`repro.sim.engine.SimProfile`), the scheduler
    counters (events/sec, pending, lazy-compaction count), and cProfile's
    hottest functions.  This is a diagnostic command — output contains
    wall-clock timings and is not byte-stable between runs.
    """
    system = SystemConfig(scale=args.scale)
    policy = make_policy(args.policy, args.workload, args)
    config = ExperimentConfig(
        policy=policy, workload=args.workload, system=system, seed=args.seed
    )
    sims: list[Simulator] = []

    def factory() -> Simulator:
        sim = Simulator()
        sim.enable_profiling()
        sims.append(sim)
        return sim

    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    result = run_performance_experiment(
        config,
        app_cap_ms=args.cap_ms,
        seq_cap_ms=args.cap_ms,
        simulator_factory=factory,
    )
    profiler.disable()
    wall_s = time.perf_counter() - started
    sim = sims[0]

    if args.json:
        document = {
            "config": config.describe(),
            "wall_s": wall_s,
            "simulated_ms": sim.now,
            "events_executed": sim.events_executed,
            "events_per_sec": sim.events_executed / wall_s,
            "pending_events": sim.pending_events,
            "compactions": sim.compactions,
            "application_percent": result.application.percent,
            "sequential_percent": result.sequential.percent,
            "subsystems": sim.profile.as_dict(),
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0

    print(f"profile: {config.describe()}")
    print(
        f"wall {wall_s:.2f}s, simulated {sim.now / 1000.0:.1f}s, "
        f"{sim.events_executed:,d} events "
        f"({sim.events_executed / wall_s:,.0f} events/sec), "
        f"{sim.pending_events} pending, {sim.compactions} heap compactions"
    )
    print(
        f"application {result.application.percent:.1f}%  "
        f"sequential {result.sequential.percent:.1f}% of max bandwidth"
    )
    print()
    print("-- engine: per-subsystem event/time breakdown --")
    print(sim.profile.render())
    print()
    limit = args.limit if args.limit is not None else args.top
    label = (
        "internal time" if args.sort == "tottime" else "cumulative time"
    )
    print(f"-- cProfile: top {limit} functions by {label} --")
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(args.sort).print_stats(limit)
    print(stream.getvalue().rstrip())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Export a span trace (and optionally metrics) of one perf point.

    The trace is deterministic — same config and seed, same bytes — and
    the Chrome format loads directly into https://ui.perfetto.dev.  The
    document goes to ``--trace-out`` when given, else to stdout; status
    lines stay on stderr either way.
    """
    system = SystemConfig(scale=args.scale, organization=args.organization)
    policy = make_policy(args.policy, args.workload, args)
    faults = parse_fault_spec(args.inject) if args.inject else None
    config = ExperimentConfig(
        policy=policy, workload=args.workload, system=system, seed=args.seed,
        faults=faults,
    )
    runner = make_runner(args)
    task = ExperimentTask.performance(
        config,
        app_cap_ms=args.cap_ms,
        seq_cap_ms=args.cap_ms,
        collect_trace=True,
        collect_metrics=args.metrics,
    )
    result = runner.results([task])[0]
    _finish(runner)
    trace = result.trace
    render = trace_to_chrome if args.format == "chrome" else trace_to_jsonl
    rendered = render(trace)
    if args.trace_out:
        Path(args.trace_out).write_text(rendered)
        print(
            f"trace: {trace.span_count} spans, {len(trace.instants)} "
            f"instants, {trace.frozen_at_ms / 1000.0:.1f}s simulated -> "
            f"{args.trace_out}",
            file=sys.stderr,
        )
    if args.json:
        document = {
            "config": config.describe(),
            "format": args.format,
            "span_count": trace.span_count,
            "instant_count": len(trace.instants),
            "frozen_at_ms": trace.frozen_at_ms,
            "application_percent": result.application.percent,
            "sequential_percent": result.sequential.percent,
        }
        if result.metrics is not None:
            document["metrics"] = result.metrics
        print(json.dumps(document, indent=2, sort_keys=True))
    elif not args.trace_out:
        sys.stdout.write(rendered)
    elif result.metrics is not None:
        print(render_metrics_snapshot(result.metrics))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the experiment service daemon until interrupted.

    The state directory is the unit of durability: restart on the same
    ``--state-dir`` after any crash (including SIGKILL) and the service
    recovers its accepted-but-unfinished jobs from the run ledger and
    finishes them bit-identically.
    """
    import signal

    service = ExperimentService(
        args.state_dir,
        workers=args.workers,
        max_queue=args.max_queue,
        timeout_s=args.timeout,
        retries=args.retries,
        jitter_seed=args.jitter_seed,
    )
    service.start()
    daemon = make_daemon(
        service,
        host=args.host,
        port=args.port,
        chaos=args.chaos,
        quiet=not args.verbose,
    )
    host, port = daemon.server_address[:2]
    print(
        f"serve: listening on http://{host}:{port} "
        f"(state {args.state_dir}, {args.workers} workers, "
        f"budget {args.max_queue}"
        f"{', CHAOS ENDPOINTS ENABLED' if args.chaos else ''})",
        file=sys.stderr,
        flush=True,
    )
    if service.stats.recovered:
        print(
            f"serve: recovered {service.stats.recovered} unfinished job(s) "
            "from the ledger",
            file=sys.stderr,
            flush=True,
        )

    # A container stop sends SIGTERM; fold it into the KeyboardInterrupt
    # path so both shut down identically.
    def _terminate(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        daemon.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        daemon.server_close()
        service.stop()
    print("serve: stopped", file=sys.stderr)
    return 0


def _http_json(
    url: str, body: dict | None = None, timeout_s: float = 630.0
) -> tuple[int, dict]:
    """POST (or GET when ``body`` is None) a JSON document; never raise
    on HTTP error statuses — the status code is part of the protocol."""
    import urllib.error
    import urllib.request

    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        try:
            return error.code, json.loads(error.read())
        except ValueError:
            return error.code, {"error": str(error)}
    except (urllib.error.URLError, OSError) as error:
        raise ReproError(f"cannot reach {url}: {error}") from None


def _follow_events(base_url: str, key: str) -> None:
    """Stream a job's SSE events to stderr until the terminal event."""
    import urllib.request

    url = f"{base_url}/v1/jobs/{key}/events"
    with urllib.request.urlopen(url, timeout=630.0) as stream:
        event_name = None
        for raw in stream:
            line = raw.decode().rstrip("\n")
            if line.startswith("event: "):
                event_name = line[len("event: "):]
            elif line.startswith("data: "):
                print(f"event[{event_name}]: {line[len('data: '):]}",
                      file=sys.stderr)
                if event_name == "done":
                    return


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one experiment to a running ``repro serve`` daemon.

    The spec is built locally from the same flags ``perf``/``alloc``
    use (or loaded verbatim from ``--spec FILE``), so a submission is
    validated client-side before it travels.  Exit status: 0 done,
    1 the job failed, 9 still running (no/expired ``--wait``),
    75 shed by admission control (EX_TEMPFAIL — retry later).
    """
    if args.spec:
        text = (
            sys.stdin.read()
            if args.spec == "-"
            else Path(args.spec).read_text()
        )
        spec = json.loads(text)
    else:
        system = SystemConfig(scale=args.scale, organization=args.organization)
        policy = make_policy(args.policy, args.workload, args)
        faults = parse_fault_spec(args.inject) if args.inject else None
        config = ExperimentConfig(
            policy=policy, workload=args.workload, system=system,
            seed=args.seed, faults=faults,
        )
        if args.kind == "alloc":
            task = ExperimentTask.allocation(config)
        else:
            task = ExperimentTask.performance(
                config,
                app_cap_ms=args.cap_ms,
                seq_cap_ms=args.cap_ms,
                audit=AuditConfig(fingerprints=True)
                if args.fingerprints
                else None,
            )
        spec = task_to_spec(task)

    base = args.url.rstrip("/")
    status, body = _http_json(
        f"{base}/v1/experiments",
        {"spec": spec, "priority": args.priority, "wait_s": args.wait},
    )
    if status == 429:
        print(
            f"submit: shed by admission control "
            f"(depth {body.get('depth')}/{body.get('budget')}); "
            f"retry in ~{body.get('retry_after_s', 1):.0f}s",
            file=sys.stderr,
        )
        return 75
    if status not in (200, 202):
        raise ReproError(f"submit failed ({status}): {body.get('error', body)}")

    key = body.get("job", "")
    print(f"submit: job {key} {body.get('submitted')} -> {body.get('status')}",
          file=sys.stderr)
    if args.follow and body.get("status") not in ("done", "failed"):
        _follow_events(base, key)
        _, body = _http_json(f"{base}/v1/jobs/{key}")
    print(json.dumps(body, indent=2, sort_keys=True))
    if body.get("status") == "done":
        return 0
    if body.get("status") == "failed":
        return 1
    return 9


def cmd_table1(args: argparse.Namespace) -> int:
    system = SystemConfig()
    table = Table(["Parameter", "Value"], title="Table 1: the simulated disk system")
    table.add_row(["Drive", WREN_IV.name])
    table.add_row(["Disks", system.n_disks])
    table.add_row(["Capacity", f"{system.capacity_bytes / 1e9:.2f} GB"])
    table.add_row(
        [
            "Max sustained throughput",
            f"{system.n_disks * WREN_IV.sustained_bytes_per_ms * 1000 / MIB:.2f} MiB/s",
        ]
    )
    table.add_row(["Platters", WREN_IV.platters])
    table.add_row(["Cylinders", WREN_IV.cylinders])
    table.add_row(["Track", f"{WREN_IV.track_bytes} bytes"])
    table.add_row(["Single-track seek", f"{WREN_IV.single_track_seek_ms} ms"])
    table.add_row(["Incremental seek", f"{WREN_IV.incremental_seek_ms} ms"])
    table.add_row(["Rotation", f"{WREN_IV.rotation_ms} ms"])
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Read Optimized File System Designs — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_base(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scale", type=float, default=0.1,
                       help="disk scale factor (1.0 = the paper's 2.8G)")
        p.add_argument("--seed", type=int, default=1991)

    def add_runner(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for independent sweep points "
                            "(0 = one per CPU; results are identical to --jobs 1)")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result cache directory "
                            f"(default: {default_cache_dir()})")
        p.add_argument("--no-cache", action="store_true",
                       help="always simulate; neither read nor write the cache")
        p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="per-point wall-clock timeout; a point over "
                            "budget has its worker killed (and retried per "
                            "--retries)")
        p.add_argument("--retries", type=int, default=0, metavar="N",
                       help="extra attempts after a worker crash or timeout "
                            "(exponential backoff with seeded jitter)")
        p.add_argument("--checkpoint", default=None, metavar="DIR",
                       help="flush each completed point to DIR so an "
                            "interrupted sweep can be resumed")
        p.add_argument("--resume", action="store_true",
                       help="replay points already completed in the "
                            "--checkpoint directory instead of re-running")
        p.add_argument("--live", action="store_true",
                       help="render a live telemetry status line on stderr "
                            "(per-point stage/progress/ETA; stdout is "
                            "unaffected)")

    def add_policy(p: argparse.ArgumentParser) -> None:
        p.add_argument("--policy", choices=POLICY_NAMES, default="restricted")
        p.add_argument("--workload", choices=("TS", "TP", "SC"), default="SC")
        p.add_argument("--grow-factor", type=int, default=1,
                       help="restricted buddy grow factor")
        p.add_argument("--unclustered", action="store_true",
                       help="disable restricted-buddy region clustering")
        p.add_argument("--extent-ranges", type=int, default=3,
                       choices=range(1, 6), help="extent range count")
        p.add_argument("--fit", choices=("first", "best"), default="first")

    def add_common(p: argparse.ArgumentParser, with_policy: bool = True) -> None:
        add_base(p)
        add_runner(p)
        if with_policy:
            add_policy(p)

    alloc = sub.add_parser("alloc", help="run the allocation (fragmentation) test")
    add_common(alloc)
    alloc.set_defaults(func=cmd_alloc)

    perf = sub.add_parser("perf", help="run the application + sequential tests")
    add_common(perf)
    perf.add_argument("--cap-ms", type=float, default=60_000.0,
                      help="simulated-time cap per phase")
    perf.add_argument("--organization", choices=ORGANIZATIONS, default="striped",
                      help="disk organization (redundant ones mask failures)")
    perf.add_argument("--inject", default=None, metavar="CLAUSES",
                      help="fault plan, e.g. "
                           "'fail:drive=2,at=5000,repair=20000;"
                           "slow:drive=0,at=0,factor=4;transient:rate=0.001'")
    perf.add_argument("--audit", action="store_true",
                      help="run with the invariant auditor attached; any "
                           "bookkeeping violation aborts the run with a "
                           "structured error")
    perf.set_defaults(func=cmd_perf)

    bisect = sub.add_parser(
        "bisect",
        help="replay two run variants and binary-search the first "
             "diverging event via state fingerprints",
    )
    add_base(bisect)
    add_policy(bisect)
    bisect.add_argument("--vary", choices=("engine", "seed"), default="engine",
                        help="what differs between run A and run B: the "
                             "engine variant (fast vs reference; expected "
                             "identical) or the seed (expected to diverge)")
    bisect.add_argument("--seed-b", type=int, default=None,
                        help="run B's seed for --vary seed "
                             "(default: --seed + 1)")
    bisect.add_argument("--cap-ms", type=float, default=8_000.0,
                        help="simulated-time cap per phase (small by "
                             "default: every probe replays the run)")
    bisect.add_argument("--organization", choices=ORGANIZATIONS,
                        default="striped")
    bisect.add_argument("--cadence", type=int, default=10_000,
                        help="coarse-pass fingerprint cadence (events)")
    bisect.add_argument("--fine-limit", type=int, default=1_024,
                        help="bracket size below which the every-event "
                             "fine pass replaces further probing")
    bisect.set_defaults(func=cmd_bisect)

    faults = sub.add_parser(
        "faults",
        help="inject faults into a redundant organization; report "
             "degraded-mode throughput",
    )
    add_common(faults)
    faults.add_argument("--cap-ms", type=float, default=60_000.0,
                        help="simulated-time cap per phase")
    faults.add_argument("--organization", choices=ORGANIZATIONS, default="raid5",
                        help="disk organization under test")
    faults.add_argument("--inject", metavar="CLAUSES",
                        default="fail:drive=0,at=15000,repair=40000",
                        help="fault plan (same grammar as perf --inject)")
    faults.set_defaults(func=cmd_faults)

    compare = sub.add_parser("compare", help="Figure 6: four policies, three workloads")
    add_common(compare, with_policy=False)
    compare.add_argument("--cap-ms", type=float, default=40_000.0)
    compare.set_defaults(func=cmd_compare)

    profile = sub.add_parser(
        "profile",
        help="profile one perf point: cProfile + engine subsystem counters",
    )
    add_base(profile)
    add_policy(profile)
    profile.add_argument("--cap-ms", type=float, default=20_000.0,
                         help="simulated-time cap per phase (small by default: "
                              "profiling needs samples, not stabilization)")
    profile.add_argument("--sort", choices=("tottime", "cumtime"),
                         default="tottime",
                         help="cProfile ordering: internal (tottime) or "
                              "cumulative (cumtime) time")
    profile.add_argument("--limit", type=int, default=None,
                         help="how many functions to print "
                              "(preferred spelling of --top)")
    profile.add_argument("--top", type=int, default=12,
                         help="cProfile rows to print")
    profile.add_argument("--json", action="store_true",
                         help="print engine counters and the per-subsystem "
                              "breakdown as JSON (no cProfile text)")
    profile.set_defaults(func=cmd_profile)

    trace = sub.add_parser(
        "trace",
        help="export a span trace of one perf point "
             "(Chrome/Perfetto or JSONL)",
    )
    add_common(trace)
    trace.add_argument("--cap-ms", type=float, default=8_000.0,
                       help="simulated-time cap per phase (small by default: "
                            "traces grow with simulated time)")
    trace.add_argument("--organization", choices=ORGANIZATIONS,
                       default="striped",
                       help="disk organization under test")
    trace.add_argument("--inject", default=None, metavar="CLAUSES",
                       help="fault plan (same grammar as perf --inject); "
                            "fault flips appear as instant events")
    trace.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write the trace document here instead of stdout")
    trace.add_argument("--format", choices=("chrome", "jsonl"),
                       default="chrome",
                       help="chrome: one trace_event JSON document "
                            "(Perfetto-loadable); jsonl: one object per line")
    trace.add_argument("--metrics", action="store_true",
                       help="also collect the metrics snapshot (histograms, "
                            "counters) and report it")
    trace.add_argument("--json", action="store_true",
                       help="print a JSON summary (span counts, phase "
                            "percentages, metrics) to stdout")
    trace.set_defaults(func=cmd_trace)

    serve = sub.add_parser(
        "serve",
        help="run the experiment service daemon (HTTP/JSON, durable, "
             "single-flight)",
    )
    serve.add_argument("--state-dir", required=True, metavar="DIR",
                       help="durable state root (run ledger + result "
                            "store); restart on the same DIR to recover "
                            "in-flight work")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="listen port (0 picks a free one)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes executing experiments")
    serve.add_argument("--max-queue", type=int, default=32,
                       help="admission budget: jobs queued or running "
                            "before requests shed with 429 + Retry-After")
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-job wall-clock timeout (hung workers are "
                            "killed; the job retries per --retries)")
    serve.add_argument("--retries", type=int, default=1, metavar="N",
                       help="extra attempts after a worker crash or timeout")
    serve.add_argument("--jitter-seed", type=int, default=0,
                       help="seeds the deterministic retry-backoff jitter")
    serve.add_argument("--chaos", action="store_true",
                       help="enable the fault-drill endpoints "
                            "(POST /v1/chaos/kill-worker)")
    serve.add_argument("--verbose", action="store_true",
                       help="log each HTTP request to stderr")
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit one experiment to a running serve daemon",
    )
    add_base(submit)
    add_policy(submit)
    submit.add_argument("--url", default="http://127.0.0.1:8765",
                        help="base URL of the serve daemon")
    submit.add_argument("--kind", choices=("perf", "alloc"), default="perf")
    submit.add_argument("--cap-ms", type=float, default=60_000.0,
                        help="simulated-time cap per phase (perf only)")
    submit.add_argument("--organization", choices=ORGANIZATIONS,
                        default="striped")
    submit.add_argument("--inject", default=None, metavar="CLAUSES",
                        help="fault plan (same grammar as perf --inject)")
    submit.add_argument("--fingerprints", action="store_true",
                        help="request audit fingerprints (the bit-identity "
                             "witness) with the result")
    submit.add_argument("--spec", default=None, metavar="FILE",
                        help="submit this JSON spec file verbatim "
                             "('-' reads stdin) instead of building one "
                             "from flags")
    submit.add_argument("--priority", choices=("high", "normal", "low"),
                        default="normal")
    submit.add_argument("--wait", type=float, default=None, metavar="SECONDS",
                        help="block until the job finishes (bounded)")
    submit.add_argument("--follow", action="store_true",
                        help="stream the job's SSE telemetry to stderr "
                             "until it finishes")
    submit.set_defaults(func=cmd_submit)

    table1 = sub.add_parser("table1", help="print the simulated disk system")
    table1.set_defaults(func=cmd_table1)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Library errors (:class:`ReproError` — bad configurations, failed
    sweep points) print to stderr and exit 2, matching argparse's own
    usage-error status; only genuine bugs surface as tracebacks.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SweepInterrupted as interrupted:
        where = interrupted.partial_dir or "the result cache"
        print(
            f"repro: interrupted ({interrupted.completed}/{interrupted.total} "
            f"points done) — partial results flushed to {where}",
            file=sys.stderr,
        )
        return 130
    except KeyboardInterrupt:
        # Interrupted outside a sweep (argument parsing, report
        # rendering): nothing partial to flush, same conventional status.
        print("repro: interrupted", file=sys.stderr)
        return 130
    except ReproError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
