"""Binary buddy allocation (§4.1), after Koch [KOCH87].

"A file may be composed of some number of extents.  The size of each
extent is a power of two multiple of the sector size.  Each time a new
extent is required, the extent size is chosen to double the current size
of the file."  The nightly reallocation process from Koch's DTSS system is
deliberately *not* simulated — the study evaluates pure allocation.

Free space is the classic binary buddy: per-order free lists, blocks split
on demand, and freed blocks coalesce with their buddy when both halves are
free.  A non-power-of-two address space is covered by a descending forest
of power-of-two segments; buddies never straddle a segment boundary (the
greedy descending cover guarantees every segment starts at a multiple of
its own size, so the XOR buddy rule remains valid with absolute
addresses).
"""

from __future__ import annotations

from bisect import bisect_right

from ..errors import ConfigurationError, DiskFullError
from ..sim.rng import RandomStream
from ..structures.sortedlist import SortedAddresses
from ..units import next_power_of_two
from .base import AllocFile, Allocator, Extent


def decompose_power_of_two(n_units: int, max_terms: int) -> list[int]:
    """Decompose ``n_units`` into at most ``max_terms`` powers of two.

    Greedy binary decomposition (descending); when more set bits remain
    than terms allowed, the tail is rounded up to one covering power:

    >>> decompose_power_of_two(7, 3)
    [4, 2, 1]
    >>> decompose_power_of_two(31, 3)
    [16, 8, 8]
    >>> decompose_power_of_two(100, 2)
    [64, 64]

    The result always covers ``n_units`` and never exceeds twice the
    minimal cover.
    """
    if n_units <= 0:
        raise ConfigurationError(f"cannot decompose {n_units}")
    if max_terms <= 0:
        raise ConfigurationError(f"need at least one term: {max_terms}")
    terms: list[int] = []
    remaining = n_units
    while remaining and len(terms) < max_terms - 1:
        top = 1 << (remaining.bit_length() - 1)
        terms.append(top)
        remaining -= top
    if remaining:
        terms.append(next_power_of_two(remaining))
    return terms


class BinaryBuddyAllocator(Allocator):
    """Power-of-two buddy allocation with file-doubling growth."""

    name = "buddy"

    def __init__(
        self, capacity_units: int, rng: RandomStream | None = None
    ) -> None:
        super().__init__(capacity_units, rng)
        #: free blocks per order: order -> sorted start addresses.
        self._free_by_order: dict[int, SortedAddresses] = {}
        self._segments: list[tuple[int, int]] = []  # (start, order)
        self._build_cover(capacity_units)
        self._segment_starts = [start for start, _ in self._segments]
        self.max_order = max(order for _, order in self._segments)

    def _build_cover(self, capacity_units: int) -> None:
        """Cover ``[0, capacity)`` with descending power-of-two segments."""
        position = 0
        remaining = capacity_units
        while remaining > 0:
            order = remaining.bit_length() - 1  # largest power <= remaining
            size = 1 << order
            self._segments.append((position, order))
            self._free_list(order).add(position)
            position += size
            remaining -= size

    def _free_list(self, order: int) -> SortedAddresses:
        free_list = self._free_by_order.get(order)
        if free_list is None:
            free_list = self._free_by_order[order] = SortedAddresses()
        return free_list

    # -- segment geometry -------------------------------------------------------

    def _segment_of(self, address: int) -> tuple[int, int]:
        """The (start, order) of the segment containing ``address``."""
        index = bisect_right(self._segment_starts, address) - 1
        return self._segments[index]

    def _buddy_of(self, address: int, order: int) -> int | None:
        """The buddy address of a block, or None at segment scale."""
        buddy = address ^ (1 << order)
        seg_start, seg_order = self._segment_of(address)
        if order >= seg_order:
            return None  # the block *is* a whole segment
        if buddy < seg_start or buddy + (1 << order) > seg_start + (1 << seg_order):
            return None  # pragma: no cover - impossible with aligned cover
        return buddy

    # -- block alloc / free ------------------------------------------------------

    def _allocate_block(self, order: int) -> int:
        """Take one block of exactly ``2**order`` units, splitting as needed."""
        free_list = self._free_by_order.get(order)
        if free_list is not None:
            available = free_list.pop_first()
            if available is not None:
                return available
        # Split the smallest larger block (lowest address among that order).
        for larger in range(order + 1, self.max_order + 1):
            larger_list = self._free_by_order.get(larger)
            if larger_list is None:
                continue
            candidate = larger_list.pop_first()
            if candidate is None:
                continue
            # Peel halves downward, keeping the low half each time.
            for current in range(larger - 1, order - 1, -1):
                self._free_list(current).add(candidate + (1 << current))
            return candidate
        raise self._fail(1 << order)

    def _free_block(self, address: int, order: int) -> None:
        """Return a block, coalescing with free buddies as far as possible.

        Each rung costs one bisect: ``discard`` both answers "is my buddy
        free" and takes it when it is.
        """
        while True:
            buddy = self._buddy_of(address, order)
            if buddy is None:
                break
            free_list = self._free_by_order.get(order)
            if free_list is None or not free_list.discard(buddy):
                break
            address = min(address, buddy)
            order += 1
        self._free_list(order).add(address)

    # -- policy hooks -------------------------------------------------------

    def _allocate_descriptor(self, handle: AllocFile, size_hint_units: int) -> Extent:
        start = self._allocate_block(0)
        return Extent(start, 1)

    def _extend(self, handle: AllocFile, n_units: int) -> list[Extent]:
        added: list[Extent] = []
        try:
            while n_units > 0:
                current_total = handle.allocated_units + sum(
                    extent.length for extent in added
                )
                if current_total == 0:
                    # First extent: the smallest power of two holding the
                    # request (Koch's initial allocation).
                    size = next_power_of_two(n_units)
                else:
                    # Doubling: the new extent equals the current file size.
                    size = next_power_of_two(current_total)
                size = min(size, 1 << self.max_order)
                order = size.bit_length() - 1
                start = self._allocate_block(order)
                added.append(Extent(start, size))
                n_units -= size
        except Exception:
            for extent in added:
                self._free_block(extent.start, extent.length.bit_length() - 1)
            raise
        return added

    def _release_extent(self, handle: AllocFile, extent: Extent) -> None:
        self._release_power_block(extent)

    def _release_descriptor(self, handle: AllocFile, extent: Extent) -> None:
        self._release_power_block(extent)

    def _release_power_block(self, extent: Extent) -> None:
        if extent.length & (extent.length - 1):
            raise ConfigurationError(f"non power-of-two extent {extent}")
        self._free_block(extent.start, extent.length.bit_length() - 1)

    # -- Koch's nightly reallocator (extension; excluded from the paper's
    # -- measurements, provided for the ablation) --------------------------------

    def reallocate(
        self, used_units_by_file: dict[int, int], max_extents: int = 3
    ) -> int:
        """Koch's background reallocation, run "once every day" in DTSS.

        "This reallocator shuffles extents around to reduce both the
        internal and external fragmentation.  Using this combination, most
        files are allocated in 3 extents and average under 4% internal
        fragmentation."  [KOCH87]

        For each live file: allocate its *used* size as at most
        ``max_extents`` power-of-two extents (largest first, tail rounded
        up) in fresh space, then free the old extents — the scratch-space
        order a real reallocator uses (the data must be copied somewhere
        before its old blocks can be released).  A file whose reshaped
        form cannot be placed right now is skipped, not failed.  Returns
        the number of files reshaped.  Callers owning extent maps (the
        file system) must rebuild them afterwards.
        """
        reshaped = 0
        for file_id in sorted(self.files):
            handle = self.files[file_id]
            if not handle.extents:
                continue
            used = max(1, min(used_units_by_file.get(file_id, 0),
                              handle.allocated_units))
            sizes = decompose_power_of_two(used, max_extents)
            already_minimal = sorted(
                extent.length for extent in handle.extents
            ) == sorted(sizes)
            if already_minimal:
                continue
            old_extents = list(handle.extents)
            old_units = handle.allocated_units
            new_extents: list[Extent] = []
            try:
                for size in sizes:
                    start = self._allocate_block(size.bit_length() - 1)
                    new_extents.append(Extent(start, size))
            except DiskFullError:
                for extent in new_extents:
                    self._free_block(extent.start, extent.length.bit_length() - 1)
                continue  # no room to reshape this file tonight
            for extent in old_extents:
                self._free_block(extent.start, extent.length.bit_length() - 1)
            handle.extents[:] = new_extents
            self._allocated_units += handle.allocated_units - old_units
            reshaped += 1
        return reshaped

    # -- introspection ----------------------------------------------------------

    def free_block_counts(self) -> dict[int, int]:
        """Free blocks per order (order -> count), orders with any blocks."""
        return {
            order: len(addresses)
            for order, addresses in sorted(self._free_by_order.items())
            if len(addresses)
        }

    def snapshot_free_state(self) -> dict:
        """Free blocks per order, sorted by address (fingerprint hook)."""
        return {
            "allocated_units": self._allocated_units,
            "free_by_order": {
                str(order): list(addresses)
                for order, addresses in sorted(self._free_by_order.items())
                if len(addresses)
            },
        }

    def check_free_space(self) -> None:
        """Validate accounting: free-list units + allocated == capacity."""
        free = sum(
            len(addresses) << order
            for order, addresses in self._free_by_order.items()
        )
        if free != self.free_units:
            raise ConfigurationError(
                f"buddy free lists hold {free} units, accounting says "
                f"{self.free_units}"
            )
