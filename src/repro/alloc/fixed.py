"""Fixed-block allocation: the comparison baseline.

Section 5 compares every multiblock policy "against a 4K and a 16K fixed
block system which does not bias towards automatic striping or contiguous
layout".  This is the UNIX V7 lineage: files are chains of equal-size
blocks, free blocks live on a free list, and allocation comes "off the
head of this list", so as the system ages logically sequential blocks
scatter across the disk.

The free list starts in address order (a fresh mkfs), and frees push on
the head (LIFO) — so the aging behaviour the paper describes emerges from
the churn of the workload itself rather than being injected artificially.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..sim.rng import RandomStream
from .base import AllocFile, Allocator, Extent


class FixedBlockAllocator(Allocator):
    """Equal-size blocks from a LIFO free list.

    Args:
        capacity_units: address space size in disk units.
        block_units: block size in disk units (4 or 16 for the paper's
            4K/16K baselines with a 1K disk unit).
        aged: start from a scrambled free list (default).  "As file
            systems age, logically sequential blocks within a file get
            spread across the entire disk"; the paper's baseline is such
            an aged system, not a fresh mkfs whose free list happens to
            hand out sequential blocks.  Pass False to model a fresh disk.
    """

    name = "fixed"

    def __init__(
        self,
        capacity_units: int,
        block_units: int,
        rng: RandomStream | None = None,
        aged: bool = True,
    ) -> None:
        super().__init__(capacity_units, rng)
        if block_units <= 0:
            raise ConfigurationError(f"block size must be positive: {block_units}")
        self.block_units = block_units
        self.aged = aged
        n_blocks = capacity_units // block_units
        if n_blocks == 0:
            raise ConfigurationError("capacity smaller than one block")
        # Head of the list is the *end* of this Python list (O(1) pop/push).
        # A fresh list hands out ascending addresses; an aged one is
        # scrambled, as years of allocation churn leave it.
        self._free_blocks: list[int] = [
            (n_blocks - 1 - i) * block_units for i in range(n_blocks)
        ]
        if aged:
            self.rng.fork("aging").shuffle(self._free_blocks)
        self._usable_units = n_blocks * block_units

    # -- policy hooks -------------------------------------------------------

    def _take_block(self, n_units: int) -> int:
        if not self._free_blocks:
            raise self._fail(n_units)
        return self._free_blocks.pop()

    def _allocate_descriptor(self, handle: AllocFile, size_hint_units: int) -> Extent:
        # Descriptors occupy a whole block: without sub-block sizes there
        # is nothing smaller to give out (the meta-data overhead criticism
        # of fixed-block systems, [STON81]).
        start = self._take_block(self.block_units)
        return Extent(start, self.block_units)

    def _extend(self, handle: AllocFile, n_units: int) -> list[Extent]:
        n_blocks = -(-n_units // self.block_units)
        if len(self._free_blocks) < n_blocks:
            raise self._fail(n_units)
        added = []
        for _ in range(n_blocks):
            start = self._take_block(n_units)
            added.append(Extent(start, self.block_units))
        return added

    def _release_extent(self, handle: AllocFile, extent: Extent) -> None:
        if extent.length != self.block_units or extent.start % self.block_units:
            raise ConfigurationError(f"foreign extent {extent} returned")
        self._free_blocks.append(extent.start)

    def _release_descriptor(self, handle: AllocFile, extent: Extent) -> None:
        self._release_extent(handle, extent)

    # -- introspection ----------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        """Blocks currently on the free list."""
        return len(self._free_blocks)

    @property
    def usable_units(self) -> int:
        """Units coverable by whole blocks (capacity minus the tail sliver)."""
        return self._usable_units

    def snapshot_free_state(self) -> dict:
        """The free list in LIFO order (fingerprint hook).

        Order matters here: the list *is* the allocation order, so two
        runs in identical logical state must render identical lists.
        """
        return {
            "allocated_units": self._allocated_units,
            "block_units": self.block_units,
            "free_blocks": list(self._free_blocks),
        }

    def check_free_space(self) -> None:
        """Validate free-list units against the accounting."""
        free = len(self._free_blocks) * self.block_units
        if free != self._usable_units - self._allocated_units:
            raise ConfigurationError(
                f"fixed free list holds {free} units, accounting says "
                f"{self._usable_units - self._allocated_units}"
            )
