"""Retained reference free store for the restricted buddy policy.

This module preserves the pre-optimization free-space structures —
the paper-literal :class:`ReferenceFreeBlockList` (a circular doubly
linked list kept in lock step with an address dict and a bisect index)
and the :class:`ReferenceLadderFreeStore` built on it — exactly as they
shipped before the allocator hot-path rewrite.

It is the allocation-layer analogue of the reference event engine
(``Simulator(immediate_queue=False)``): a slow, structurally independent
implementation whose decisions define correctness.  The randomized
differential tests drive the production :class:`~repro.alloc.freestore.
LadderFreeStore` and this reference store through identical operation
sequences and require identical answers and identical snapshots at every
step.  Do not optimize this module; its value is that it stays simple
and different.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..structures.bitmap import Bitmap
from ..structures.dll import CircularDll, DllNode
from ..structures.sortedlist import SortedAddresses


class ReferenceFreeBlockList:
    """Sorted circular doubly-linked free list with fast indexes."""

    __slots__ = ("_dll", "_nodes", "_index")

    def __init__(self) -> None:
        self._dll = CircularDll()
        self._nodes: dict[int, DllNode] = {}
        self._index = SortedAddresses()

    def __len__(self) -> int:
        return len(self._dll)

    def __contains__(self, address: int) -> bool:
        return address in self._nodes

    def add(self, address: int) -> None:
        """Insert a free block (error if already present — double free)."""
        if address in self._nodes:
            raise SimulationError(f"block {address} already free")
        node = DllNode(address)
        # Place via the bisect index: O(log n) to find the predecessor,
        # O(1) to link, versus the paper's linear walk.
        predecessor = self._index.predecessor(address)
        self._index.add(address)
        if predecessor is None:
            self._dll.insert(node)  # becomes head (or list was empty)
        else:
            self._dll.insert_after(self._nodes[predecessor], node)
        self._nodes[address] = node

    def remove(self, address: int) -> None:
        """Remove a block known to be on the list."""
        node = self._nodes.pop(address, None)
        if node is None:
            raise SimulationError(f"block {address} not on free list")
        self._dll.remove(node)
        self._index.remove(address)

    def first(self) -> int | None:
        """Lowest free address, or None."""
        return self._index.first()

    def first_at_or_after(self, address: int) -> int | None:
        """Lowest free address >= ``address``, or None."""
        return self._index.successor(address)

    def first_in_range(self, low: int, high: int) -> int | None:
        """Lowest free address in ``[low, high)``, or None."""
        candidate = self._index.successor(low)
        if candidate is not None and candidate < high:
            return candidate
        return None

    def addresses(self) -> list[int]:
        """All free addresses in order."""
        return list(self._index)

    def check_consistent(self) -> None:
        """Verify DLL, dict, and index agree (test hook)."""
        dll_keys = self._dll.keys()
        if dll_keys != self.addresses():
            raise SimulationError("DLL and index disagree")
        if set(dll_keys) != set(self._nodes):
            raise SimulationError("DLL and node dict disagree")


class ReferenceLadderFreeStore:
    """The pre-rewrite aligned multi-size free store (reference copy).

    Same contract as :class:`~repro.alloc.freestore.LadderFreeStore`
    (without the region summaries): aligned split/coalesce over a ladder
    of block sizes, a bitmap for maximum-size blocks, one free list per
    smaller size.  Kept verbatim so the differential property tests have
    an independent implementation to compare against.
    """

    def __init__(self, capacity_units: int, sizes: tuple[int, ...]) -> None:
        if not sizes or any(s <= 0 for s in sizes):
            raise SimulationError(f"bad ladder {sizes}")
        if list(sizes) != sorted(set(sizes)):
            raise SimulationError(f"ladder must be ascending/unique: {sizes}")
        for small, large in zip(sizes, sizes[1:]):
            if large % small:
                raise SimulationError(f"{small} does not divide {large}")
        self.capacity_units = capacity_units
        self.sizes = tuple(sizes)
        self.max_size = sizes[-1]
        self._size_index = {size: i for i, size in enumerate(sizes)}
        self._max_slots = capacity_units // self.max_size
        self._bitmap = Bitmap(self._max_slots, all_set=True)
        self._lists: dict[int, ReferenceFreeBlockList] = {
            s: ReferenceFreeBlockList() for s in sizes[:-1]
        }
        self._free_units = self._max_slots * self.max_size
        self._seed_tail()

    def _seed_tail(self) -> None:
        """Cover the partial tail past the last max-size block."""
        position = self._max_slots * self.max_size
        remaining = self.capacity_units - position
        for size in reversed(self.sizes[:-1]):
            while remaining >= size and position % size == 0:
                self._lists[size].add(position)
                position += size
                remaining -= size
                self._free_units += size
        # Any residue smaller than the smallest block is unaddressable.

    # -- queries ------------------------------------------------------------

    @property
    def free_units(self) -> int:
        """Units on free lists + free max blocks."""
        return self._free_units

    def region_has_exact(self, size: int, region: int) -> bool:
        """Conservative answer: always scan.

        The production store's region summaries may only *skip* regions
        that hold nothing; answering True for every region reproduces the
        pre-summary behaviour exactly, which is what lets this reference
        store drop into a :class:`~repro.alloc.restricted.
        RestrictedBuddyAllocator` for differential runs.
        """
        return True

    def region_has_splittable(self, size: int, region: int) -> bool:
        """Conservative answer: always scan (see :meth:`region_has_exact`)."""
        return True

    def is_max_size(self, size: int) -> bool:
        """True for the ladder's largest size (bitmap-managed)."""
        return size == self.max_size

    def free_exact(
        self, size: int, low: int, high: int, prefer: int | None = None
    ) -> int | None:
        """Find a free block of exactly ``size`` within ``[low, high)``."""
        if size == self.max_size:
            return self._free_max_in(low, high, prefer)
        free_list = self._lists[size]
        if prefer is not None and prefer % size == 0:
            if low <= prefer < high and prefer in free_list:
                return prefer
        if prefer is not None:
            candidate = free_list.first_at_or_after(max(prefer, low))
            if candidate is not None and candidate < high:
                return candidate
        return free_list.first_in_range(low, high)

    def _free_max_in(
        self, low: int, high: int, prefer: int | None
    ) -> int | None:
        low_slot = -(-low // self.max_size)
        high_slot = min(high // self.max_size, self._max_slots)
        if prefer is not None and prefer % self.max_size == 0:
            slot = prefer // self.max_size
            if low_slot <= slot < high_slot and self._bitmap.test(slot):
                return prefer
            found = self._bitmap.first_set_in_range(
                max(slot, low_slot), high_slot
            )
            if found is not None:
                return found * self.max_size
        found = self._bitmap.first_set_in_range(low_slot, high_slot)
        if found is None:
            return None
        return found * self.max_size

    def splittable(
        self, size: int, low: int, high: int, prefer: int | None = None
    ) -> tuple[int, int] | None:
        """Find a *larger* free block in range that could be split."""
        start_index = self._size_index[size] + 1
        for larger in self.sizes[start_index:]:
            candidate = self.free_exact(larger, low, high, prefer)
            if candidate is not None:
                return candidate, larger
        return None

    def take_in_region(
        self, size: int, low: int, high: int, prefer: int | None = None
    ) -> int | None:
        """Find and take an exact-size block (compositional reference
        form of the production store's fused hot-path method)."""
        found = self.free_exact(size, low, high, prefer)
        if found is None:
            return None
        self.take(found, size)
        return found

    def take_split_in_region(
        self, size: int, low: int, high: int, prefer: int | None = None
    ) -> int | None:
        """Find, split, and take from a larger block (reference form)."""
        found = self.splittable(size, low, high, prefer)
        if found is None:
            return None
        return self.take_split(found[0], found[1], size)

    def take_run_in_region(
        self,
        size: int,
        low: int,
        high: int,
        prefer: int | None,
        max_blocks: int,
    ) -> tuple[int, int] | None:
        """Take a run of consecutive exact-size blocks (reference form).

        Compositional mirror of the production store's batched streak:
        one find-and-take for the first block, then repeated probes that
        stop the moment a probe would not land exactly on the previous
        block's end.  Returns ``(start, count)`` or None.
        """
        start = self.take_in_region(size, low, high, prefer)
        if start is None:
            return None
        taken = 1
        expected = start + size
        while taken < max_blocks:
            found = self.free_exact(size, low, high, expected)
            if found != expected:
                break
            self.take(expected, size)
            taken += 1
            expected += size
        return start, taken

    # -- mutation ------------------------------------------------------------

    def take(self, address: int, size: int) -> None:
        """Take a known-free block of exactly ``size`` at ``address``."""
        if address % size:
            raise SimulationError(f"misaligned take: {address} % {size}")
        if size == self.max_size:
            self._bitmap.clear(address // self.max_size)
        else:
            self._lists[size].remove(address)
        self._free_units -= size

    def take_split(self, address: int, block_size: int, want_size: int) -> int:
        """Split a free ``block_size`` block, taking its leading ``want_size``."""
        if block_size <= want_size:
            raise SimulationError("split target not larger than want size")
        self.take(address, block_size)
        current_index = self._size_index[block_size]
        want_index = self._size_index[want_size]
        for level in range(current_index, want_index, -1):
            child = self.sizes[level - 1]
            parent = self.sizes[level]
            for sibling in range(address + child, address + parent, child):
                self._lists[child].add(sibling)
                self._free_units += child
        return address

    def release(self, address: int, size: int) -> None:
        """Free a block, coalescing full sibling groups up the ladder."""
        if address % size:
            raise SimulationError(f"misaligned release: {address} % {size}")
        self._check_not_already_free(address, size)
        released_units = size  # net change: coalesced siblings were already free
        index = self._size_index[size]
        while size != self.max_size:
            parent = self.sizes[index + 1]
            group_start = address - (address % parent)
            if group_start + parent > self.capacity_units:
                break  # tail group is incomplete; cannot coalesce
            free_list = self._lists[size]
            siblings = [
                sibling
                for sibling in range(group_start, group_start + parent, size)
                if sibling != address
            ]
            if not all(sibling in free_list for sibling in siblings):
                break
            for sibling in siblings:
                free_list.remove(sibling)
            address = group_start
            size = parent
            index += 1
        if size == self.max_size:
            self._bitmap.set(address // self.max_size)
        else:
            self._lists[size].add(address)
        self._free_units += released_units

    def _check_not_already_free(self, address: int, size: int) -> None:
        """Detect double frees: the block, or any block containing it,
        must not already be free."""
        for candidate in self.sizes:
            if candidate < size:
                continue
            covering = address - (address % candidate)
            if candidate == self.max_size:
                slot = covering // self.max_size
                if slot < self._max_slots and self._bitmap.test(slot):
                    raise SimulationError(
                        f"double free: [{address}, {address + size}) lies in "
                        f"free maximum block at {covering}"
                    )
            elif covering in self._lists[candidate]:
                raise SimulationError(
                    f"double free: [{address}, {address + size}) lies in "
                    f"free {candidate}-block at {covering}"
                )

    # -- validation -----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe rendering of the free structures (fingerprint hook)."""
        return {
            "free_units": self._free_units,
            "max_slots": [
                slot
                for slot in range(self._max_slots)
                if self._bitmap.test(slot)
            ],
            "lists": {
                str(size): self._lists[size].addresses()
                for size in self.sizes[:-1]
                if len(self._lists[size])
            },
        }

    def check_invariants(self) -> None:
        """Verify alignment, accounting, and the coalescing invariant."""
        total = self._bitmap.set_count * self.max_size
        for size, free_list in self._lists.items():
            free_list.check_consistent()
            for address in free_list.addresses():
                if address % size:
                    raise SimulationError(f"misaligned free block {address}/{size}")
            total += len(free_list) * size
        if total != self._free_units:
            raise SimulationError(
                f"free accounting {self._free_units} != structures {total}"
            )
        # Coalescing invariant: no complete free sibling group may linger.
        for size_index, size in enumerate(self.sizes[:-1]):
            parent = self.sizes[size_index + 1]
            free_list = self._lists[size]
            addresses = free_list.addresses()
            by_group: dict[int, int] = {}
            for address in addresses:
                group = address - (address % parent)
                by_group[group] = by_group.get(group, 0) + 1
            ratio = parent // size
            for group, count in by_group.items():
                if count >= ratio and group + parent <= self.capacity_units:
                    raise SimulationError(
                        f"uncoalesced sibling group at {group} size {size}"
                    )
