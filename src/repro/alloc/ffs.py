"""FFS-style allocation: blocks plus fragments (extension, paper §1).

"The BSD Fast File System is an evolutionary step from the simple fixed
block system.  Files are composed of a number of fixed sized 'blocks' and
a few smaller 'fragments'.  In this way, tiny files may be composed of
fragments, thus avoiding excessive internal fragmentation.  At the same
time, the larger block size ... allows more data to be transferred for
each seek."  [MCKU84]

This extension policy implements that design on the simulator's address
space so FFS can be lined up against the paper's multiblock policies:

* a file is full blocks plus at most one *fragment tail* — a contiguous
  run of sub-block fragments sharing a partial block with other tails;
* when a file with a fragment tail grows, the tail is **promoted**: its
  fragments are freed and re-allocated as part of a larger tail or a full
  block (the famous FFS fragment copy; the copy's I/O is not simulated,
  matching the untimed allocation path of the other policies);
* placement is cylinder-group-aware: descriptors rotate across groups,
  a file's blocks prefer its descriptor's group.

The allocator reshapes a file's existing tail during ``extend``, so it
sets ``handle.policy_state["remapped"]`` — the file system rebuilds its
extent map when it sees the flag.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..sim.rng import RandomStream
from ..structures.sortedlist import SortedAddresses
from .base import AllocFile, Allocator, Extent

#: Default FFS geometry: 8K blocks of 1K fragments (8:1, the classic ratio).
DEFAULT_BLOCK_UNITS = 8


class FfsAllocator(Allocator):
    """Blocks + fragments with cylinder-group placement.

    Args:
        capacity_units: address-space size (1 unit == 1 fragment).
        block_units: fragments per block (8 by default).
        group_units: cylinder-group size; block-aligned.  Defaults to
            ~1/16 of capacity (at least one block).
    """

    name = "ffs"

    def __init__(
        self,
        capacity_units: int,
        block_units: int = DEFAULT_BLOCK_UNITS,
        group_units: int | None = None,
        rng: RandomStream | None = None,
    ) -> None:
        super().__init__(capacity_units, rng)
        if block_units <= 1:
            raise ConfigurationError(f"block must exceed one fragment: {block_units}")
        self.block_units = block_units
        n_blocks = capacity_units // block_units
        if n_blocks == 0:
            raise ConfigurationError("capacity smaller than one block")
        if group_units is None:
            group_units = max(block_units, (capacity_units // 16))
        group_units -= group_units % block_units
        self.group_units = max(block_units, group_units)
        self._n_groups = -(-capacity_units // self.group_units)
        #: whole free blocks, by start address.
        self._free_blocks = SortedAddresses(
            [i * block_units for i in range(n_blocks)]
        )
        #: partial blocks: block start -> bitmask of free fragments
        #: (bit i set == fragment i free).
        self._partial: dict[int, int] = {}
        self._usable_units = n_blocks * block_units
        self._next_group = 0

    # -- placement helpers ----------------------------------------------------

    def _group_of(self, address: int) -> int:
        return address // self.group_units

    def _group_bounds(self, group: int) -> tuple[int, int]:
        low = group * self.group_units
        return low, min(low + self.group_units, self.capacity_units)

    def _take_block(self, preferred_group: int) -> int | None:
        """A whole free block, preferring the given cylinder group."""
        for distance in range(self._n_groups):
            group = (preferred_group + distance) % self._n_groups
            low, high = self._group_bounds(group)
            candidate = self._free_blocks.successor(low)
            if candidate is not None and candidate < high:
                self._free_blocks.remove(candidate)
                return candidate
        return None

    def _take_fragments(self, n_fragments: int, preferred_group: int) -> int | None:
        """A contiguous run of ``n_fragments``, sharing partial blocks.

        Scans partial blocks in the preferred group first (then anywhere)
        for a long-enough run of free fragments; only if none exists is a
        whole block broken, FFS's rule for keeping blocks intact.
        """
        run_mask = (1 << n_fragments) - 1

        def from_partials(in_group: bool) -> int | None:
            for block_start, mask in self._partial.items():
                if (self._group_of(block_start) == preferred_group) != in_group:
                    continue
                offset = self._find_run(mask, n_fragments)
                if offset is not None:
                    self._partial[block_start] = mask & ~(run_mask << offset)
                    if self._partial[block_start] == 0:
                        del self._partial[block_start]
                    return block_start + offset
            return None

        def break_block(group: int) -> int | None:
            low, high = self._group_bounds(group)
            candidate = self._free_blocks.successor(low)
            if candidate is None or candidate >= high:
                return None
            self._free_blocks.remove(candidate)
            remainder = ((1 << self.block_units) - 1) & ~run_mask
            if remainder:
                self._partial[candidate] = remainder
            return candidate

        # FFS order: a partial block in this group; break a block in this
        # group; a partial block anywhere; break a block anywhere.
        found = from_partials(in_group=True)
        if found is None:
            found = break_block(preferred_group)
        if found is None:
            found = from_partials(in_group=False)
        if found is None:
            block_start = self._take_block(preferred_group)
            if block_start is None:
                return None
            remainder = ((1 << self.block_units) - 1) & ~run_mask
            if remainder:
                self._partial[block_start] = remainder
            found = block_start
        return found

    def _find_run(self, mask: int, n_fragments: int) -> int | None:
        """Lowest offset of ``n_fragments`` consecutive set bits in mask.

        Run-collapse on the integer itself: after ``mask &= mask >> t``
        bit ``i`` survives iff bits ``i .. i+r+t-1`` were all set, so
        doubling ``t`` reaches run length ``n`` in O(log n) big-int ops
        instead of a per-offset scan.  The mask holds no bits at or above
        ``block_units``, so a surviving offset always fits the block.
        """
        collapsed = mask
        length = 1
        while collapsed and length < n_fragments:
            take = min(length, n_fragments - length)
            collapsed &= collapsed >> take
            length += take
        if not collapsed:
            return None
        return (collapsed & -collapsed).bit_length() - 1

    def _release_run(self, start: int, length: int) -> None:
        """Return fragments/blocks; whole-free blocks rejoin the block pool."""
        position = start
        remaining = length
        while remaining > 0:
            block_start = position - (position % self.block_units)
            offset = position - block_start
            take = min(self.block_units - offset, remaining)
            run_mask = ((1 << take) - 1) << offset
            mask = self._partial.get(block_start, 0)
            if mask & run_mask:
                raise ConfigurationError(
                    f"double free of fragments in block {block_start}"
                )
            mask |= run_mask
            if mask == (1 << self.block_units) - 1:
                self._partial.pop(block_start, None)
                self._free_blocks.add(block_start)
            else:
                self._partial[block_start] = mask
            position += take
            remaining -= take

    # -- policy hooks -------------------------------------------------------

    def _allocate_descriptor(self, handle: AllocFile, size_hint_units: int) -> Extent:
        group = self._next_group
        self._next_group = (self._next_group + 1) % self._n_groups
        start = self._take_fragments(1, group)
        if start is None:
            raise self._fail(1)
        handle.policy_state["group"] = self._group_of(start)
        return Extent(start, 1)

    def _extend(self, handle: AllocFile, n_units: int) -> list[Extent]:
        group = handle.policy_state.get("group", 0)
        # Promote an existing fragment tail: free it and fold its length
        # into this request (the FFS fragment copy).
        tail_units = 0
        if handle.extents and handle.extents[-1].length % self.block_units:
            tail = handle.extents.pop()
            self._release_run(tail.start, tail.length)
            self._allocated_units -= tail.length
            tail_units = tail.length
            handle.policy_state["remapped"] = True
        need = n_units + tail_units

        added: list[Extent] = []
        try:
            full_blocks, tail_fragments = divmod(need, self.block_units)
            for _ in range(full_blocks):
                start = self._take_block(group)
                if start is None:
                    raise self._fail(self.block_units)
                added.append(Extent(start, self.block_units))
            if tail_fragments:
                start = self._take_fragments(tail_fragments, group)
                if start is None:
                    raise self._fail(tail_fragments)
                added.append(Extent(start, tail_fragments))
        except Exception:
            for extent in added:
                self._release_run(extent.start, extent.length)
            if tail_units:
                # Re-allocate a replacement tail so the file is unchanged
                # in length (its exact placement may differ).
                start = self._take_fragments(tail_units, group)
                if start is None:  # pragma: no cover - freed it ourselves
                    raise
                handle.extents.append(Extent(start, tail_units))
                self._allocated_units += tail_units
            raise
        return added

    def _release_extent(self, handle: AllocFile, extent: Extent) -> None:
        self._release_run(extent.start, extent.length)

    def _release_descriptor(self, handle: AllocFile, extent: Extent) -> None:
        self._release_run(extent.start, extent.length)

    # -- introspection ----------------------------------------------------------

    @property
    def free_whole_blocks(self) -> int:
        """Blocks still intact (not broken into fragments)."""
        return len(self._free_blocks)

    @property
    def partial_block_count(self) -> int:
        """Blocks currently shared by fragment tails."""
        return len(self._partial)

    def snapshot_free_state(self) -> dict:
        """Whole free blocks plus fragment masks (fingerprint hook)."""
        return {
            "allocated_units": self._allocated_units,
            "whole_blocks": list(self._free_blocks),
            "partial_masks": [
                [start, mask] for start, mask in sorted(self._partial.items())
            ],
        }

    def check_free_space(self) -> None:
        """Validate fragment masks and unit accounting (test hook)."""
        free = len(self._free_blocks) * self.block_units
        for block_start, mask in self._partial.items():
            if block_start % self.block_units:
                raise ConfigurationError(f"misaligned partial block {block_start}")
            if mask <= 0 or mask >= (1 << self.block_units):
                raise ConfigurationError(f"bad fragment mask {mask:#x}")
            free += bin(mask).count("1")
        expected = self._usable_units - self._allocated_units
        if free != expected:
            raise ConfigurationError(
                f"ffs free structures hold {free}, accounting says {expected}"
            )
