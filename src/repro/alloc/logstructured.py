"""Log-structured allocation — the paper's §6 suggestion, implemented.

"In the small file environment we might want to incorporate policies from
a log structured file system to allocate blocks [ROSE90]."  This
extension policy (not part of the paper's measured comparison) allocates
every request at a rolling *log head*: new data always lands in the next
free space after the most recent allocation, threading through holes left
by deletes and wrapping at the end of the address space — the "threaded
log" variant of LFS allocation, which needs no segment cleaner.

Consequences the small-file environment cares about:

* writes are contiguous regardless of which file they belong to (one seek
  per burst of creation activity, the write-optimized property),
* files written together sit together (temporal locality becomes spatial),
* a file overwritten or grown later fragments — the read-optimized
  policies' weakness/strength trade, inverted.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..sim.rng import RandomStream
from ..structures.intervals import FreeExtentMap
from .base import AllocFile, Allocator, Extent


class LogStructuredAllocator(Allocator):
    """Threaded-log allocation: everything goes at the log head."""

    name = "log-structured"

    def __init__(
        self, capacity_units: int, rng: RandomStream | None = None
    ) -> None:
        super().__init__(capacity_units, rng)
        self._free = FreeExtentMap(capacity_units)
        self._head = 0

    # -- the log head --------------------------------------------------------

    @property
    def head(self) -> int:
        """Current log-head address (next allocation lands at/after it)."""
        return self._head

    def _take_from_head(self, n_units: int) -> list[Extent]:
        """Take ``n_units`` starting at the head, threading through holes."""
        taken: list[Extent] = []
        remaining = n_units
        while remaining > 0:
            piece = self._free.take_up_to_from(self._head, remaining)
            if piece is None:
                for extent in taken:
                    self._free.release(extent.start, extent.length)
                raise self._fail(n_units)
            start, length = piece
            if taken and taken[-1].end == start:
                taken[-1] = Extent(taken[-1].start, taken[-1].length + length)
            else:
                taken.append(Extent(start, length))
            self._head = (start + length) % self.capacity_units
            remaining -= length
        return taken

    # -- policy hooks -------------------------------------------------------

    def _allocate_descriptor(self, handle: AllocFile, size_hint_units: int) -> Extent:
        pieces = self._take_from_head(1)
        return pieces[0]

    def _extend(self, handle: AllocFile, n_units: int) -> list[Extent]:
        return self._take_from_head(n_units)

    def _release_extent(self, handle: AllocFile, extent: Extent) -> None:
        self._free.release(extent.start, extent.length)

    def _release_descriptor(self, handle: AllocFile, extent: Extent) -> None:
        self._free.release(extent.start, extent.length)

    # -- introspection ----------------------------------------------------------

    @property
    def hole_count(self) -> int:
        """Number of free holes threaded by the log."""
        return self._free.fragment_count

    def snapshot_free_state(self) -> dict:
        """Log head plus free holes in address order (fingerprint hook)."""
        return {
            "allocated_units": self._allocated_units,
            "head": self._head,
            "holes": [[start, length] for start, length in self._free.intervals()],
        }

    def check_free_space(self) -> None:
        """Validate the hole map against the unit accounting (test hook)."""
        self._free.check_invariants()
        if self._free.free_units != self.free_units:
            raise ConfigurationError(
                f"free map {self._free.free_units} != accounting {self.free_units}"
            )
