"""Allocation policies: the systems under evaluation.

* :class:`BinaryBuddyAllocator` — Koch's buddy system (§4.1).
* :class:`RestrictedBuddyAllocator` — the restricted buddy system (§4.2).
* :class:`ExtentAllocator` — the XPRS extent-based system (§4.3).
* :class:`FixedBlockAllocator` — the 4K/16K fixed-block baseline (§5).

plus the shared :class:`Allocator` interface, :class:`Extent`, and the
fragmentation metrics of §3.
"""

from .base import AllocFile, Allocator, Extent
from .buddy import BinaryBuddyAllocator
from .extent import (
    DEVIATION_FRACTION,
    ExtentAllocator,
    ExtentSizeConfig,
    FitPolicy,
)
from .ffs import FfsAllocator
from .fixed import FixedBlockAllocator
from .logstructured import LogStructuredAllocator
from .freestore import FreeBlockList, LadderFreeStore
from .metrics import FragmentationReport, measure_fragmentation
from .restricted import (
    DEFAULT_REGION_BYTES,
    RestrictedBuddyAllocator,
    RestrictedBuddyConfig,
    ladder_from_sizes,
)

__all__ = [
    "Allocator",
    "AllocFile",
    "Extent",
    "BinaryBuddyAllocator",
    "RestrictedBuddyAllocator",
    "RestrictedBuddyConfig",
    "DEFAULT_REGION_BYTES",
    "ladder_from_sizes",
    "ExtentAllocator",
    "ExtentSizeConfig",
    "FitPolicy",
    "DEVIATION_FRACTION",
    "FfsAllocator",
    "FixedBlockAllocator",
    "LogStructuredAllocator",
    "FreeBlockList",
    "LadderFreeStore",
    "FragmentationReport",
    "measure_fragmentation",
]
