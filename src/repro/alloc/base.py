"""Allocator interface shared by all four policies.

An allocator manages the disk system's linear address space (in disk
units).  The file-system layer asks it to grow, shrink, create, and delete
files; the allocator decides *placement* and returns :class:`Extent`
lists.  Placement is the entire difference between the policies the paper
compares — the disk model and workload never change.

Every allocator also owns one disk unit of metadata per file (the file
descriptor), so the meta-data bandwidth story is consistent across
policies; the restricted buddy policy additionally places descriptors
region-consciously.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass, field

from ..errors import (
    AllocatorStateError,
    DiskFullError,
    FileSystemError,
    SimulationError,
)
from ..sim.rng import RandomStream


class Extent:
    """A contiguous run of disk units: ``[start, start + length)``.

    An immutable value type.  Hand-rolled rather than a frozen dataclass:
    allocation churn builds one per block, and the explicit ``__init__``
    roughly halves construction cost while keeping plain-slot reads,
    value equality, and the read-only field contract.
    """

    __slots__ = ("start", "length")

    def __init__(self, start: int, length: int) -> None:
        if start < 0 or length <= 0:
            raise FileSystemError(f"invalid extent {start}+{length}")
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "length", length)

    @property
    def end(self) -> int:
        """One past the last unit."""
        return self.start + self.length

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"extent field {name!r} is read-only")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"extent field {name!r} is read-only")

    def __repr__(self) -> str:
        return f"Extent(start={self.start}, length={self.length})"

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Extent:
            return self.start == other.start and self.length == other.length
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.start, self.length))


@dataclass
class AllocFile:
    """Per-file allocation state.

    The allocator creates these and keeps whatever policy-specific fields
    it needs in ``policy_state``; the file system reads ``extents`` to map
    logical offsets to disk addresses.

    Attributes:
        file_id: unique id assigned at creation.
        extents: allocation in logical order — extent ``i`` holds the bytes
            that logically follow extent ``i-1``.
        descriptor: the one-unit metadata extent.
        policy_state: allocator-private bookkeeping.
    """

    file_id: int
    extents: list[Extent] = field(default_factory=list)
    descriptor: Extent | None = None
    policy_state: dict = field(default_factory=dict)
    deleted: bool = False

    @property
    def allocated_units(self) -> int:
        """Data units currently allocated to the file."""
        return sum(extent.length for extent in self.extents)

    @property
    def extent_count(self) -> int:
        """Number of data extents (the paper's Table 4 statistic)."""
        return len(self.extents)


class Allocator(abc.ABC):
    """Base class: address-space accounting plus the policy hooks.

    Subclasses implement :meth:`_allocate_descriptor`, :meth:`_extend`,
    :meth:`_release_extent` and may override :meth:`create` for placement
    hints.  The base class tracks allocated totals and file liveness so
    fragmentation metrics and invariant checks are uniform.
    """

    #: Human-readable policy name (subclasses override).
    name = "abstract"

    def __init__(self, capacity_units: int, rng: RandomStream | None = None) -> None:
        if capacity_units <= 0:
            raise FileSystemError(f"capacity must be positive: {capacity_units}")
        self.capacity_units = capacity_units
        self.rng = rng or RandomStream(0, "allocator")
        self._ids = itertools.count(1)
        self.files: dict[int, AllocFile] = {}
        self._allocated_units = 0  # data + descriptors
        self.allocation_requests = 0
        self.failed_requests = 0

    def counters(self) -> dict[str, int]:
        """Request-level counters for the metrics snapshot."""
        return {
            "alloc.requests": self.allocation_requests,
            "alloc.failed_requests": self.failed_requests,
            "alloc.live_files": len(self.files),
        }

    # -- public API ---------------------------------------------------------

    def _wrap_state_error(
        self, op: str, error: SimulationError
    ) -> AllocatorStateError:
        """Attach policy/op context to a structural error escaping ``op``.

        A bare :class:`SimulationError` from deep inside the free
        structures ("block N already free") is unattributable when it
        surfaces from a fuzz run; re-raise it as
        :class:`~repro.errors.AllocatorStateError` naming the policy and
        the public operation.  Already-wrapped errors pass through
        (callers re-raise them before reaching this).
        """
        return AllocatorStateError(self.name, op, error)

    def create(self, size_hint_units: int = 0) -> AllocFile:
        """Create a file: allocate its descriptor, no data yet.

        Args:
            size_hint_units: expected eventual size; extent-based policies
                use it to pick the file's extent size.

        Raises:
            DiskFullError: no room for even the descriptor.
        """
        handle = AllocFile(file_id=next(self._ids))
        try:
            handle.descriptor = self._allocate_descriptor(handle, size_hint_units)
        except AllocatorStateError:
            raise
        except SimulationError as error:
            raise self._wrap_state_error("create", error) from error
        self._allocated_units += handle.descriptor.length
        self.files[handle.file_id] = handle
        return handle

    def extend(self, handle: AllocFile, n_units: int) -> list[Extent]:
        """Grow the file's allocation by at least ``n_units``.

        Returns the extents added (policies may round up — buddy doubles).

        Raises:
            DiskFullError: the request cannot be satisfied; the file is
                left unchanged (no partial allocations survive a failure).
        """
        if handle.deleted or handle.file_id not in self.files:
            raise FileSystemError(f"file {handle.file_id} is not live")
        if n_units <= 0:
            raise FileSystemError(f"extend by non-positive size: {n_units}")
        self.allocation_requests += 1
        try:
            added = self._extend(handle, n_units)
        except DiskFullError:
            self.failed_requests += 1
            raise
        except AllocatorStateError:
            raise
        except SimulationError as error:
            raise self._wrap_state_error("extend", error) from error
        handle.extents.extend(added)
        added_units = 0
        for extent in added:
            added_units += extent.length
        self._allocated_units += added_units
        return added

    def truncate(self, handle: AllocFile, n_units: int) -> int:
        """Free whole extents from the tail covering up to ``n_units``.

        Frees trailing extents while their cumulative length stays within
        ``n_units`` (a partial extent is never split off — block-organized
        policies shrink in block steps).  Returns units actually freed.
        """
        self._check_live(handle)
        if n_units < 0:
            raise FileSystemError(f"truncate by negative size: {n_units}")
        freed = 0
        try:
            while handle.extents and freed + handle.extents[-1].length <= n_units:
                extent = handle.extents.pop()
                self._release_extent(handle, extent)
                freed += extent.length
        except AllocatorStateError:
            raise
        except SimulationError as error:
            raise self._wrap_state_error("truncate", error) from error
        self._allocated_units -= freed
        return freed

    def delete(self, handle: AllocFile) -> None:
        """Free all data extents and the descriptor; retire the file."""
        self._check_live(handle)
        try:
            for extent in reversed(handle.extents):
                self._release_extent(handle, extent)
                self._allocated_units -= extent.length
            handle.extents.clear()
            if handle.descriptor is not None:
                self._release_descriptor(handle, handle.descriptor)
                self._allocated_units -= handle.descriptor.length
                handle.descriptor = None
        except AllocatorStateError:
            raise
        except SimulationError as error:
            raise self._wrap_state_error("delete", error) from error
        handle.deleted = True
        del self.files[handle.file_id]

    # -- accounting -----------------------------------------------------------

    @property
    def allocated_units(self) -> int:
        """Units currently allocated (data + descriptors)."""
        return self._allocated_units

    @property
    def free_units(self) -> int:
        """Units not allocated to any file."""
        return self.capacity_units - self._allocated_units

    @property
    def utilization(self) -> float:
        """Allocated fraction of the address space."""
        return self._allocated_units / self.capacity_units

    def _check_live(self, handle: AllocFile) -> None:
        if handle.deleted or handle.file_id not in self.files:
            raise FileSystemError(f"file {handle.file_id} is not live")

    def _fail(self, n_units: int) -> DiskFullError:
        """Build the disk-full error for a request of ``n_units``."""
        return DiskFullError(n_units, self.free_units)

    # -- policy hooks -------------------------------------------------------

    @abc.abstractmethod
    def _allocate_descriptor(self, handle: AllocFile, size_hint_units: int) -> Extent:
        """Place the file's one-unit descriptor."""

    @abc.abstractmethod
    def _extend(self, handle: AllocFile, n_units: int) -> list[Extent]:
        """Allocate at least ``n_units`` more for the file."""

    @abc.abstractmethod
    def _release_extent(self, handle: AllocFile, extent: Extent) -> None:
        """Return a data extent to the free space."""

    @abc.abstractmethod
    def _release_descriptor(self, handle: AllocFile, extent: Extent) -> None:
        """Return a descriptor to the free space."""

    # -- validation -----------------------------------------------------------

    def check_free_space(self) -> None:
        """Cross-check the policy's free structures against accounting.

        Subclasses override with their structure-specific conservation
        check (free + allocated + unaddressable == capacity).  The base
        implementation accepts anything — a policy without auxiliary
        free structures has nothing extra to verify.
        """

    def audit_check(self) -> None:
        """Run every structural self-check the policy provides.

        The invariant auditor's allocator sweep: overlap detection plus
        the policy's conservation check.  Raises a
        :class:`~repro.errors.ReproError` subclass on violation.
        """
        self.check_no_overlap()
        self.check_free_space()

    def snapshot_free_state(self) -> dict:
        """JSON-safe snapshot of the policy's free structures.

        Fingerprint hook: the rendering must be a pure function of
        allocator state (primitives only, canonical ordering).
        Subclasses override; the base form carries only the accounting
        totals every policy shares.
        """
        return {"allocated_units": self._allocated_units}

    def check_no_overlap(self) -> None:
        """Assert no two live allocations overlap (test hook, O(n log n))."""
        spans: list[tuple[int, int]] = []
        for handle in self.files.values():
            for extent in handle.extents:
                spans.append((extent.start, extent.end))
            if handle.descriptor is not None:
                spans.append((handle.descriptor.start, handle.descriptor.end))
        spans.sort()
        for (start_a, end_a), (start_b, _) in zip(spans, spans[1:]):
            if start_b < end_a:
                raise FileSystemError(
                    f"overlapping allocations at {start_b} (< {end_a})"
                )
        if spans and spans[-1][1] > self.capacity_units:
            raise FileSystemError("allocation beyond end of address space")
