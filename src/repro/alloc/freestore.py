"""Free-space management for the restricted buddy policy (§4.2).

"Free space is managed both by bit maps and free lists.  A bit map is used
to record the state (free or used) of every maximum sized block in the
system.  For smaller blocks, a circular doubly linked list of free blocks
is maintained in sorted order. ... Maximum sized blocks which are
completely unused require one bit.  Smaller blocks are represented only if
one of their buddies is in use."

This is the hot-path implementation.  :class:`FreeBlockList` keeps one
flat sorted address list per block size — a single container answering
membership, successor, and range queries by bisection, with whole sibling
runs spliced in and out as one C-level slice operation (the batched form
of the paper's split and coalesce walks).  :class:`LadderFreeStore` owns
the maximum-size bitmap plus one list per smaller ladder size, and
optionally maintains per-region, per-size free-block counts so the
restricted policy's region ring scans skip empty regions in O(1) instead
of bisecting into every region.

Every allocation decision is bit-identical to the retained reference
implementation in :mod:`repro.alloc.reference` (the pre-rewrite circular
DLL + dict + bisect-index triple); the differential property tests in
``tests/alloc/test_differential.py`` drive both through identical
operation sequences and require identical answers and snapshots at every
step.
"""

from __future__ import annotations

from bisect import bisect_left

from ..errors import SimulationError


class FreeBlockList:
    """Sorted free-block addresses in one flat list.

    A single container replaces the former DLL + dict + bisect-index
    triple: bisection serves membership and ordered queries, and slice
    splices serve the batched sibling-run operations (`add_run`,
    `remove_group_run`) the split/coalesce paths use.  Addresses on one
    list are all multiples of the list's block size, which is what makes
    a sibling group a contiguous slice.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: list[int] = []

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, address: int) -> bool:
        items = self._items
        index = bisect_left(items, address)
        return index < len(items) and items[index] == address

    def add(self, address: int) -> None:
        """Insert a free block (error if already present — double free)."""
        items = self._items
        index = bisect_left(items, address)
        if index < len(items) and items[index] == address:
            raise SimulationError(f"block {address} already free")
        items.insert(index, address)

    def add_run(self, start: int, step: int, count: int) -> None:
        """Splice in ``count`` ascending addresses ``start, start+step, …``.

        One bisect and one slice assignment, versus ``count`` separate
        inserts.  The run's span must be disjoint from existing members
        (its addresses are every multiple of ``step`` in the span, so any
        overlap is a double free).
        """
        items = self._items
        span_end = start + step * count
        index = bisect_left(items, start)
        if index < len(items) and items[index] < span_end:
            raise SimulationError(f"block {items[index]} already free")
        items[index:index] = range(start, span_end, step)

    def remove(self, address: int) -> None:
        """Remove a block known to be on the list."""
        items = self._items
        index = bisect_left(items, address)
        if index >= len(items) or items[index] != address:
            raise SimulationError(f"block {address} not on free list")
        del items[index]

    def remove_group_run(self, start: int, span: int, expected: int) -> bool:
        """Remove all members in ``[start, start+span)`` iff exactly
        ``expected`` are present; return whether they were removed.

        The coalescing step: a sibling group is complete when every
        sibling except the block being freed is on the list, i.e. when
        the span holds exactly ``expected`` members.  One bisect pair and
        one slice delete, versus per-sibling membership checks and
        removals.
        """
        items = self._items
        lo = bisect_left(items, start)
        hi = bisect_left(items, start + span, lo)
        if hi - lo != expected:
            return False
        del items[lo:hi]
        return True

    def first(self) -> int | None:
        """Lowest free address, or None."""
        items = self._items
        return items[0] if items else None

    def first_at_or_after(self, address: int) -> int | None:
        """Lowest free address >= ``address``, or None."""
        items = self._items
        index = bisect_left(items, address)
        return items[index] if index < len(items) else None

    def first_in_range(self, low: int, high: int) -> int | None:
        """Lowest free address in ``[low, high)``, or None."""
        items = self._items
        index = bisect_left(items, low)
        if index < len(items) and items[index] < high:
            return items[index]
        return None

    def count_in_range(self, low: int, high: int) -> int:
        """Number of free addresses in ``[low, high)``."""
        items = self._items
        lo = bisect_left(items, low)
        return bisect_left(items, high, lo) - lo

    def addresses(self) -> list[int]:
        """All free addresses in order."""
        return list(self._items)

    def check_consistent(self) -> None:
        """Verify strict ascending order (test hook)."""
        items = self._items
        if any(b <= a for a, b in zip(items, items[1:])):
            raise SimulationError("free list out of order")


class LadderFreeStore:
    """Aligned multi-size free space over ``[0, capacity)``.

    Args:
        capacity_units: address-space size.
        sizes: the block-size ladder, ascending; each size must divide the
            next ("each block size is an integral multiple ... of all the
            smaller block sizes") and blocks of size N start at multiples
            of N.
        region_units: when given, the store additionally maintains
            per-region, per-size counts of free blocks (a block belongs
            to region ``address // region_units``), serving the
            restricted policy's "which region has a block of this size"
            ring scans without probing each region's structures.

    The store knows nothing about files or grow policies — it answers
    "give me a free block of size s near address a" style queries and
    keeps the buddy-coalescing invariant: a block appears on a free list
    only if its enclosing next-size block is not entirely free.

    A ``capacity_units`` that is not a multiple of the largest ladder
    size leaves a *partial tail* past the last maximum-size block.  The
    bitmap covers only whole maximum-size blocks (``capacity // max``
    slots); the tail is represented exactly, as the largest aligned
    ladder blocks that fit, seeded onto the free lists at construction
    (any residue smaller than the smallest block is unaddressable and
    excluded from ``free_units``).  Tail blocks can never coalesce into
    a phantom maximum-size block because the coalescing walk refuses any
    sibling group extending past ``capacity_units``.
    """

    def __init__(
        self,
        capacity_units: int,
        sizes: tuple[int, ...],
        region_units: int | None = None,
    ) -> None:
        if not sizes or any(s <= 0 for s in sizes):
            raise SimulationError(f"bad ladder {sizes}")
        if list(sizes) != sorted(set(sizes)):
            raise SimulationError(f"ladder must be ascending/unique: {sizes}")
        for small, large in zip(sizes, sizes[1:]):
            if large % small:
                raise SimulationError(f"{small} does not divide {large}")
        if region_units is not None and region_units <= 0:
            raise SimulationError(f"region_units must be positive: {region_units}")
        self.capacity_units = capacity_units
        self.sizes = tuple(sizes)
        self.max_size = sizes[-1]
        self._size_index = {size: i for i, size in enumerate(sizes)}
        self._max_slots = capacity_units // self.max_size
        self._free_slots = self._max_slots  # set bits in the bitmap
        self._bits = (1 << self._max_slots) - 1  # bit i set == max block i free
        self._lists: dict[int, FreeBlockList] = {s: FreeBlockList() for s in sizes[:-1]}
        self._free_units = self._max_slots * self.max_size
        # Region summaries: _region_counts[size_index][region] counts free
        # blocks of that size whose start address falls in the region.
        # Maintained only when they can ever discriminate (>1 region).
        self.region_units = region_units
        if region_units is not None:
            self.n_regions = -(-capacity_units // region_units)
        else:
            self.n_regions = 1
        if self.n_regions > 1:
            self._region_counts: list[list[int]] | None = [
                [0] * self.n_regions for _ in self.sizes
            ]
            counts = self._region_counts[-1]
            for slot in range(self._max_slots):
                counts[(slot * self.max_size) // region_units] += 1
        else:
            self._region_counts = None
        self._seed_tail()

    def _seed_tail(self) -> None:
        """Cover the partial tail past the last max-size block."""
        position = self._max_slots * self.max_size
        remaining = self.capacity_units - position
        for size in reversed(self.sizes[:-1]):
            while remaining >= size and position % size == 0:
                self._lists[size].add(position)
                self._count_delta(self._size_index[size], position, 1)
                position += size
                remaining -= size
                self._free_units += size
        # Any residue smaller than the smallest block is unaddressable.

    # -- region summaries ---------------------------------------------------

    def _count_delta(self, size_index: int, address: int, delta: int) -> None:
        counts = self._region_counts
        if counts is not None:
            counts[size_index][address // self.region_units] += delta

    def _count_run_delta(
        self, size_index: int, start: int, step: int, count: int, delta: int
    ) -> None:
        """Count update for ``count`` blocks at ``start, start+step, …``."""
        counts = self._region_counts
        if counts is None:
            return
        region_units = self.region_units
        first_region = start // region_units
        last_region = (start + step * (count - 1)) // region_units
        if first_region == last_region:
            counts[size_index][first_region] += delta * count
        else:
            row = counts[size_index]
            for address in range(start, start + step * count, step):
                row[address // region_units] += delta

    def region_has_exact(self, size: int, region: int) -> bool:
        """True when the region holds a free block of exactly ``size``.

        With region summaries enabled this is one array read; without
        them there is a single region and the global structures answer.
        """
        counts = self._region_counts
        if counts is not None:
            return counts[self._size_index[size]][region] > 0
        if size == self.max_size:
            return self._free_slots > 0
        return len(self._lists[size]) > 0

    def region_has_splittable(self, size: int, region: int) -> bool:
        """True when the region holds any free block *larger* than ``size``."""
        counts = self._region_counts
        start_index = self._size_index[size] + 1
        if counts is not None:
            return any(
                counts[index][region] for index in range(start_index, len(self.sizes))
            )
        for larger in self.sizes[start_index:]:
            if self.region_has_exact(larger, region):
                return True
        return False

    # -- queries ------------------------------------------------------------

    @property
    def free_units(self) -> int:
        """Units on free lists + free max blocks."""
        return self._free_units

    def is_max_size(self, size: int) -> bool:
        """True for the ladder's largest size (bitmap-managed)."""
        return size == self.max_size

    def free_exact(
        self, size: int, low: int, high: int, prefer: int | None = None
    ) -> int | None:
        """Find a free block of exactly ``size`` within ``[low, high)``.

        Preference order: the exact ``prefer`` address (contiguity with the
        file's previous block), then the first free block at or after
        ``prefer``, then the first in range.  Returns an address without
        taking it.
        """
        if size == self.max_size:
            return self._free_max_in(low, high, prefer)
        # Hot path: operate on the list's backing array directly — one
        # bisect per probe, no per-query method dispatch.
        items = self._lists[size]._items
        n_items = len(items)
        if prefer is not None:
            start = prefer if prefer >= low else low
            index = bisect_left(items, start)
            if index < n_items:
                candidate = items[index]
                if candidate == prefer and low <= prefer < high:
                    return prefer  # prefer is free: contiguity wins
                if candidate < high:
                    return candidate
        index = bisect_left(items, low)
        if index < n_items and items[index] < high:
            return items[index]
        return None

    def _free_max_in(
        self, low: int, high: int, prefer: int | None
    ) -> int | None:
        max_size = self.max_size
        low_slot = -(-low // max_size)
        high_slot = min(high // max_size, self._max_slots)
        if prefer is not None and prefer % max_size == 0:
            slot = prefer // max_size
            if low_slot <= slot < high_slot and (self._bits >> slot) & 1:
                return prefer
            found = self._first_set_in_range(max(slot, low_slot), high_slot)
            if found is not None:
                return found * max_size
        found = self._first_set_in_range(low_slot, high_slot)
        if found is None:
            return None
        return found * max_size

    def _first_set_in_range(self, low_slot: int, high_slot: int) -> int | None:
        """Lowest free bitmap slot in ``[low_slot, high_slot)``, or None.

        One big-int shift + isolate-lowest-bit, regardless of width.
        """
        if low_slot >= high_slot:
            return None
        if low_slot < 0:
            low_slot = 0
        shifted = self._bits >> low_slot
        if shifted == 0:
            return None
        slot = low_slot + (shifted & -shifted).bit_length() - 1
        return slot if slot < high_slot else None

    def take_in_region(
        self, size: int, low: int, high: int, prefer: int | None = None
    ) -> int | None:
        """Find *and take* a free block of exactly ``size`` in ``[low, high)``.

        Fused form of :meth:`free_exact` + :meth:`take` for the allocation
        hot path: the bisect that finds the block also locates it for
        removal, so a successful probe costs one search instead of two.
        Same selection order as :meth:`free_exact`; returns the taken
        address or None.
        """
        if size == self.max_size:
            address = self._free_max_in(low, high, prefer)
            if address is None:
                return None
            self._bits &= ~(1 << (address // size))
            self._free_slots -= 1
            counts = self._region_counts
            if counts is not None:
                counts[-1][address // self.region_units] -= 1
            self._free_units -= size
            return address
        items = self._lists[size]._items
        n_items = len(items)
        index = -1
        if prefer is not None:
            probe = bisect_left(items, prefer if prefer >= low else low)
            if probe < n_items and items[probe] < high:
                index = probe
        if index < 0:
            probe = bisect_left(items, low)
            if probe < n_items and items[probe] < high:
                index = probe
            else:
                return None
        address = items[index]
        del items[index]
        counts = self._region_counts
        if counts is not None:
            counts[self._size_index[size]][address // self.region_units] -= 1
        self._free_units -= size
        return address

    def take_split_in_region(
        self, size: int, low: int, high: int, prefer: int | None = None
    ) -> int | None:
        """Find a larger free block in range, split it, take ``size``.

        Fused form of :meth:`splittable` + :meth:`take_split`: the bisect
        that finds the smallest adequate larger block also locates it for
        removal, and the split's sibling runs splice straight in.  Same
        selection order as the unfused pair; returns the allocated
        address or None when no larger block exists in range.
        """
        sizes = self.sizes
        max_size = self.max_size
        counts = self._region_counts
        start_index = self._size_index[size] + 1
        for larger_index in range(start_index, len(sizes)):
            larger = sizes[larger_index]
            if larger == max_size:
                address = self._free_max_in(low, high, prefer)
                if address is None:
                    return None  # the ladder's last size: nothing anywhere
                self._bits &= ~(1 << (address // max_size))
                self._free_slots -= 1
                if counts is not None:
                    counts[-1][address // self.region_units] -= 1
            else:
                items = self._lists[larger]._items
                n_items = len(items)
                index = -1
                if prefer is not None:
                    probe = bisect_left(items, prefer if prefer >= low else low)
                    if probe < n_items and items[probe] < high:
                        index = probe
                if index < 0:
                    probe = bisect_left(items, low)
                    if probe < n_items and items[probe] < high:
                        index = probe
                    else:
                        continue
                address = items[index]
                del items[index]
                if counts is not None:
                    counts[larger_index][address // self.region_units] -= 1
            self._free_units -= larger
            for level in range(larger_index, start_index - 1, -1):
                child = sizes[level - 1]
                count = sizes[level] // child - 1
                run_start = address + child
                span_end = address + sizes[level]
                # add_run, inlined: one bisect, one slice assignment.
                items = self._lists[child]._items
                probe = bisect_left(items, run_start)
                if probe < len(items) and items[probe] < span_end:
                    raise SimulationError(f"block {items[probe]} already free")
                items[probe:probe] = range(run_start, span_end, child)
                if counts is not None:
                    region_units = self.region_units
                    first = run_start // region_units
                    row = counts[level - 1]
                    if first == (span_end - child) // region_units:
                        row[first] += count
                    else:
                        for member in range(run_start, span_end, child):
                            row[member // region_units] += 1
                self._free_units += child * count
            return address
        return None

    def take_run_in_region(
        self,
        size: int,
        low: int,
        high: int,
        prefer: int | None,
        max_blocks: int,
    ) -> tuple[int, int] | None:
        """Take a run of up to ``max_blocks`` consecutive same-size blocks.

        The first block is chosen exactly as :meth:`take_in_region`
        chooses it (the preferred address when free, else the nearest
        block at or after it, else the first in ``[low, high)``); the run
        then extends over immediately adjacent free blocks while they
        start below ``high``.  Returns ``(start, count)`` or None when
        the region holds no exact-size block.

        This is the sequential-contiguity streak, batched: block by
        block, the caller's next preferred address would be exactly the
        previous block's end, so each adjacent free block taken here is
        the block a :meth:`take_in_region` loop would have taken — at one
        bisect and one list splice (or one big-int mask) for the whole
        run instead of a bisect and an O(n) element delete per block.
        """
        counts = self._region_counts
        if size == self.max_size:
            # Bitmap ladder rung: mirror _free_max_in's probe order, then
            # clear the whole run of consecutive set bits with one mask.
            low_slot = -(-low // size)
            high_slot = min(high // size, self._max_slots)
            bits = self._bits
            slot = -1
            if prefer is not None and prefer % size == 0:
                pslot = prefer // size
                if low_slot <= pslot < high_slot and (bits >> pslot) & 1:
                    slot = pslot
                else:
                    found = self._first_set_in_range(
                        pslot if pslot > low_slot else low_slot, high_slot
                    )
                    if found is not None:
                        slot = found
            if slot < 0:
                found = self._first_set_in_range(low_slot, high_slot)
                if found is None:
                    return None
                slot = found
            shifted = bits >> slot
            inverted = ~shifted
            run = (inverted & -inverted).bit_length() - 1
            taken = min(max_blocks, high_slot - slot, run)
            self._bits = bits & ~(((1 << taken) - 1) << slot)
            self._free_slots -= taken
            start = slot * size
        else:
            items = self._lists[size]._items
            n_items = len(items)
            index = -1
            if prefer is not None:
                probe = bisect_left(items, prefer if prefer >= low else low)
                if probe < n_items and items[probe] < high:
                    index = probe
            if index < 0:
                probe = bisect_left(items, low)
                if probe < n_items and items[probe] < high:
                    index = probe
                else:
                    return None
            start = items[index]
            taken = 1
            expected = start + size
            limit = max_blocks if max_blocks < n_items - index else n_items - index
            while (
                taken < limit
                and expected < high
                and items[index + taken] == expected
            ):
                taken += 1
                expected += size
            del items[index:index + taken]
        if counts is not None:
            region_units = self.region_units
            row = counts[self._size_index[size]]
            first = start // region_units
            last = (start + (taken - 1) * size) // region_units
            if first == last:
                row[first] -= taken
            else:
                for address in range(start, start + taken * size, size):
                    row[address // region_units] -= 1
        self._free_units -= taken * size
        return start, taken

    def splittable(
        self, size: int, low: int, high: int, prefer: int | None = None
    ) -> tuple[int, int] | None:
        """Find a *larger* free block in range that could be split for ``size``.

        Returns ``(address, block size)`` of the smallest adequate larger
        block, preferring one starting exactly at ``prefer`` (the "next
        sequential block" the paper says splits should favour).  Does not
        take the block.
        """
        start_index = self._size_index[size] + 1
        for larger in self.sizes[start_index:]:
            candidate = self.free_exact(larger, low, high, prefer)
            if candidate is not None:
                return candidate, larger
        return None

    # -- mutation ------------------------------------------------------------

    def take(self, address: int, size: int) -> None:
        """Take a known-free block of exactly ``size`` at ``address``."""
        if address % size:
            raise SimulationError(f"misaligned take: {address} % {size}")
        if size == self.max_size:
            slot = address // size
            if not 0 <= slot < self._max_slots:
                raise SimulationError(
                    f"bit {slot} outside bitmap of {self._max_slots}"
                )
            mask = 1 << slot
            if not self._bits & mask:
                raise SimulationError(f"bit {slot} already clear")
            self._bits &= ~mask
            self._free_slots -= 1
            counts = self._region_counts
            if counts is not None:
                counts[-1][address // self.region_units] -= 1
        else:
            items = self._lists[size]._items
            index = bisect_left(items, address)
            if index >= len(items) or items[index] != address:
                raise SimulationError(f"block {address} not on free list")
            del items[index]
            counts = self._region_counts
            if counts is not None:
                counts[self._size_index[size]][address // self.region_units] -= 1
        self._free_units -= size

    def take_split(self, address: int, block_size: int, want_size: int) -> int:
        """Split a free ``block_size`` block, taking its leading ``want_size``.

        The unused pieces are returned to the appropriate free lists (no
        coalescing needed: their siblings are what we just took), each
        level's sibling run spliced in as one slice operation.  Returns
        the allocated address (== ``address``).
        """
        if block_size <= want_size:
            raise SimulationError("split target not larger than want size")
        self.take(address, block_size)
        sizes = self.sizes
        current_index = self._size_index[block_size]
        want_index = self._size_index[want_size]
        for level in range(current_index, want_index, -1):
            child = sizes[level - 1]
            parent = sizes[level]
            count = parent // child - 1
            self._lists[child].add_run(address + child, child, count)
            counts = self._region_counts
            if counts is not None:
                self._count_run_delta(level - 1, address + child, child, count, 1)
            self._free_units += child * count
        return address

    def release(self, address: int, size: int) -> None:
        """Free a block, coalescing full sibling groups up the ladder.

        The coalescing walk visits each rung once, and the single bisect
        that locates ``address`` in the rung's free list does triple
        duty: it answers the double-free check for the rung (is
        ``address`` itself a member?), decides group completeness by
        arithmetic on the insert position, and is reused as the insert
        position when the walk stops — so the common release costs one
        bisect, not a full pre-scan over the ladder plus a separate
        insert search.

        The one containment the walk cannot see is an *empty* span whose
        whole group lies inside a free larger block; only that case
        falls through to the upward scan in :meth:`_check_covering_free`.
        This detects exactly the double frees the pre-scan did: a free
        covering block at any larger size leaves zero members at every
        rung below it, so the walk breaks on its first empty span (before
        mutating anything) and the upward scan finds that covering.
        """
        if address % size:
            raise SimulationError(f"misaligned release: {address} % {size}")
        sizes = self.sizes
        max_size = self.max_size
        counts = self._region_counts
        if size == max_size:
            slot = address // max_size
            if not 0 <= slot < self._max_slots:
                raise SimulationError(
                    f"bit {slot} outside bitmap of {self._max_slots}"
                )
            mask = 1 << slot
            if self._bits & mask:
                raise SimulationError(
                    f"double free: [{address}, {address + size}) lies in "
                    f"free maximum block at {address}"
                )
            self._bits |= mask
            self._free_slots += 1
            if counts is not None:
                counts[-1][address // self.region_units] += 1
            self._free_units += size
            return
        released_units = size  # net change: coalesced siblings were already free
        capacity = self.capacity_units
        index = self._size_index[size]
        insert_at = 0
        while size != max_size:
            parent = sizes[index + 1]
            group_start = address - (address % parent)
            group_end = group_start + parent
            # One bisect per rung.  Every list member is size-aligned and
            # distinct, so whether the sibling group is complete follows
            # arithmetically from the insert position: below it there
            # must be exactly k = (address - group_start)/size entries
            # starting at group_start, above it exactly m entries ending
            # at group_end - size — pigeonhole then forces them to be
            # precisely the k + m = ratio - 1 siblings.
            items = self._lists[size]._items
            n_items = len(items)
            insert_at = bisect_left(items, address)
            if insert_at < n_items and items[insert_at] == address:
                raise SimulationError(
                    f"double free: [{address}, {address + size}) lies in "
                    f"free {size}-block at {address}"
                )
            if group_end > capacity:
                break  # tail group is incomplete; cannot coalesce
            k = (address - group_start) // size
            m = (group_end - address) // size - 1
            lo = insert_at - k
            hi = insert_at + m
            if (
                lo < 0
                or hi > n_items
                or (k and items[lo] != group_start)
                or (m and items[hi - 1] != group_end - size)
            ):
                # Incomplete group: no coalesce.  An *empty* span may
                # mean the whole group lies inside a free larger block —
                # the walk cannot see that, so finish the scan upward.
                if (insert_at == 0 or items[insert_at - 1] < group_start) and (
                    insert_at == n_items or items[insert_at] >= group_end
                ):
                    self._check_covering_free(address, size, index + 1)
                break
            del items[lo:hi]
            if counts is not None:
                # Count-run update, inlined: the whole group's counts go
                # down, then the freed block (never counted) nets back.
                region_units = self.region_units
                first = group_start // region_units
                row = counts[index]
                if first == (group_end - size) // region_units:
                    row[first] -= parent // size
                else:
                    for member in range(group_start, group_end, size):
                        row[member // region_units] -= 1
                row[address // region_units] += 1
            address = group_start
            size = parent
            index += 1
        if size == max_size:
            slot = address // max_size
            mask = 1 << slot
            if self._bits & mask:
                raise SimulationError(f"bit {slot} already set")
            self._bits |= mask
            self._free_slots += 1
            if counts is not None:
                counts[-1][address // self.region_units] += 1
        else:
            self._lists[size]._items.insert(insert_at, address)
            if counts is not None:
                counts[index][address // self.region_units] += 1
        self._free_units += released_units

    def _check_covering_free(
        self, address: int, size: int, start_index: int
    ) -> None:
        """Raise if a free block at any ladder size >= ``start_index``
        contains ``[address, address + size)`` (double free).

        The suffix of the old full pre-scan: :meth:`release` calls this
        only when a rung's sibling span is empty, the one case where the
        coalescing walk itself cannot rule out a free covering block.
        """
        max_size = self.max_size
        for candidate in self.sizes[start_index:]:
            covering = address - (address % candidate)
            if candidate == max_size:
                slot = covering // max_size
                if slot < self._max_slots and (self._bits >> slot) & 1:
                    raise SimulationError(
                        f"double free: [{address}, {address + size}) lies in "
                        f"free maximum block at {covering}"
                    )
            else:
                items = self._lists[candidate]._items
                probe = bisect_left(items, covering)
                if probe < len(items) and items[probe] == covering:
                    raise SimulationError(
                        f"double free: [{address}, {address + size}) lies in "
                        f"free {candidate}-block at {covering}"
                    )

    # -- validation -----------------------------------------------------------

    def _set_slots(self) -> list[int]:
        """All set (free) bitmap slot numbers, via the big-int fast path."""
        result = []
        bits = self._bits
        position = 0
        while bits:
            lowest = bits & -bits
            index = position + lowest.bit_length() - 1
            result.append(index)
            bits >>= index - position + 1
            position = index + 1
        return result

    def snapshot(self) -> dict:
        """JSON-safe rendering of the free structures (fingerprint hook).

        Pure function of store state: the bitmap renders as the sorted
        slot numbers still set, each free list as its sorted addresses.
        """
        return {
            "free_units": self._free_units,
            "max_slots": self._set_slots(),
            "lists": {
                str(size): self._lists[size].addresses()
                for size in self.sizes[:-1]
                if len(self._lists[size])
            },
        }

    def check_invariants(self) -> None:
        """Verify alignment, accounting, coalescing, and region summaries."""
        if self._free_slots != bin(self._bits).count("1"):
            raise SimulationError("bitmap set count out of sync")
        total = self._free_slots * self.max_size
        for size, free_list in self._lists.items():
            free_list.check_consistent()
            for address in free_list.addresses():
                if address % size:
                    raise SimulationError(f"misaligned free block {address}/{size}")
            total += len(free_list) * size
        if total != self._free_units:
            raise SimulationError(
                f"free accounting {self._free_units} != structures {total}"
            )
        # Coalescing invariant: no complete free sibling group may linger.
        for size_index, size in enumerate(self.sizes[:-1]):
            parent = self.sizes[size_index + 1]
            free_list = self._lists[size]
            addresses = free_list.addresses()
            by_group: dict[int, int] = {}
            for address in addresses:
                group = address - (address % parent)
                by_group[group] = by_group.get(group, 0) + 1
            ratio = parent // size
            for group, count in by_group.items():
                if count >= ratio and group + parent <= self.capacity_units:
                    raise SimulationError(
                        f"uncoalesced sibling group at {group} size {size}"
                    )
        # Region summaries must agree with a from-scratch recount.
        if self._region_counts is not None:
            recount = [[0] * self.n_regions for _ in self.sizes]
            for slot in self._set_slots():
                recount[-1][(slot * self.max_size) // self.region_units] += 1
            for size, free_list in self._lists.items():
                row = recount[self._size_index[size]]
                for address in free_list.addresses():
                    row[address // self.region_units] += 1
            if recount != self._region_counts:
                raise SimulationError("region summaries out of sync")
