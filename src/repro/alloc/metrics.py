"""Fragmentation metrics, as defined in the paper's §3.

* **External fragmentation** — "the amount of space still available in the
  disk system when a request cannot be serviced ... expressed as a
  percentage of the total available disk space."
* **Internal fragmentation** — "the amount of space allocated to files,
  but not being used by the file ... expressed as a percentage of the
  total allocated space."  (A 1K file in a 4K block is 75 % internally
  fragmented.)
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import Allocator


@dataclass(frozen=True)
class FragmentationReport:
    """Fragmentation snapshot at the moment an allocation first failed.

    Attributes:
        internal_fraction: unused-but-allocated / allocated.
        external_fraction: free / total capacity.
        allocated_units: units allocated when measured.
        used_units: units actually holding file bytes (plus descriptors,
            which are fully used by definition).  Fractional: partially
            filled units carry their exact fill so that
            ``internal_fraction`` can be recomputed from this field.
        capacity_units: address-space size.
    """

    internal_fraction: float
    external_fraction: float
    allocated_units: int
    used_units: float
    capacity_units: int

    @property
    def internal_percent(self) -> float:
        """Internal fragmentation as the paper reports it (percent)."""
        return 100.0 * self.internal_fraction

    @property
    def external_percent(self) -> float:
        """External fragmentation as the paper reports it (percent)."""
        return 100.0 * self.external_fraction


def measure_fragmentation(
    allocator: Allocator, used_units_by_file: dict[int, float]
) -> FragmentationReport:
    """Compute both fragmentation metrics from live allocator state.

    Args:
        allocator: the policy under test (any live state).
        used_units_by_file: for each live ``file_id``, how many units of
            its data allocation actually hold file bytes (file length in
            units, capped at its allocation).

    Descriptors count as fully used: every policy pays them equally and
    the paper's metric targets data-block slack.
    """
    allocated = 0
    used = 0.0
    for file_id, handle in allocator.files.items():
        data_units = handle.allocated_units
        allocated += data_units
        if handle.descriptor is not None:
            allocated += handle.descriptor.length
            used += handle.descriptor.length
        used += min(float(data_units), used_units_by_file.get(file_id, 0.0))
    internal = (allocated - used) / allocated if allocated else 0.0
    external = allocator.free_units / allocator.capacity_units
    # Carry the float: truncating here made used_units disagree with the
    # internal_fraction computed from the exact value.
    return FragmentationReport(
        internal_fraction=internal,
        external_fraction=external,
        allocated_units=allocated,
        used_units=used,
        capacity_units=allocator.capacity_units,
    )
