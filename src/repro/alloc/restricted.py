"""The restricted buddy policy (§4.2) — the paper's central design.

"As in the buddy system, the restricted buddy system applies the principle
that as a file's size grows, so does its block size" — but only a few
block sizes exist (e.g. 1K, 8K, 64K, 1M, 16M), logically sequential blocks
are placed physically contiguously whenever possible, and the disk may be
divided into 32M *bookkeeping regions* that cluster a file's blocks and
metadata to bound seeks when contiguity fails.

Three configuration knobs, exactly the paper's:

* the block-size ladder (Figures 1 & 2 sweep 2, 3, 4, and 5 sizes),
* the **grow factor** g: allocation moves from size ``a_i`` to ``a_{i+1}``
  "when the total size of all blocks of size a_i is equal to g * a_{i+1}",
* **clustered** vs **unclustered** free-list bookkeeping.

The allocation algorithm follows the paper's region-selection summary:

1. Select the optimal region (same as the file's last block; same as its
   descriptor; or, for descriptors, the region after the last satisfied
   request) and within it prefer the block contiguous to the file's
   previous allocation, then the nearest following block, then any exact
   block, then split a larger block (preferably the next sequential one).
2. Select any region holding a block of the correct size.
3. Only if no exact-size block exists anywhere, split a larger block in
   the next region with available space.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AllocatorStateError, ConfigurationError, SimulationError
from ..sim.rng import RandomStream
from ..units import KIB, MIB, parse_size
from .base import AllocFile, Allocator, Extent
from .freestore import LadderFreeStore

#: The paper's bookkeeping region size: 32 M.
DEFAULT_REGION_BYTES = 32 * MIB


@dataclass(frozen=True)
class RestrictedBuddyConfig:
    """Configuration of one restricted buddy file system.

    Attributes:
        block_sizes_units: ascending ladder, each size dividing the next.
        grow_factor: the paper's g (1 or 2 in the sweeps).
        clustered: per-region free lists and region-conscious placement
            when True; a single global region when False.
        region_units: bookkeeping region size (32 M default).
    """

    block_sizes_units: tuple[int, ...]
    grow_factor: int = 1
    clustered: bool = True
    region_units: int = DEFAULT_REGION_BYTES // KIB

    def __post_init__(self) -> None:
        sizes = self.block_sizes_units
        if not sizes:
            raise ConfigurationError("empty block-size ladder")
        if list(sizes) != sorted(set(sizes)):
            raise ConfigurationError(f"ladder must be ascending: {sizes}")
        for small, large in zip(sizes, sizes[1:]):
            if large % small:
                raise ConfigurationError(f"{small} does not divide {large}")
        if self.grow_factor < 1:
            raise ConfigurationError(f"grow factor must be >= 1: {self.grow_factor}")
        if self.region_units <= 0:
            raise ConfigurationError("region size must be positive")

    @property
    def n_block_sizes(self) -> int:
        """Ladder length (the x-axis grouping of Figures 1 and 2)."""
        return len(self.block_sizes_units)

    def label(self) -> str:
        """Short human-readable label, e.g. ``5 sizes/grow 1/clustered``."""
        mode = "clustered" if self.clustered else "unclustered"
        return f"{self.n_block_sizes} sizes/grow {self.grow_factor}/{mode}"


def ladder_from_sizes(sizes_bytes: list[str | int], disk_unit_bytes: int) -> tuple[int, ...]:
    """Convert human block sizes (e.g. ``["1K", "8K"]``) to disk units."""
    ladder = []
    for size in sizes_bytes:
        n_bytes = parse_size(size)
        if n_bytes % disk_unit_bytes:
            raise ConfigurationError(
                f"block size {size} is not a multiple of the disk unit"
            )
        ladder.append(n_bytes // disk_unit_bytes)
    return tuple(ladder)


class RestrictedBuddyAllocator(Allocator):
    """Multi-size aligned blocks, grow policy, and region clustering."""

    name = "restricted-buddy"

    def __init__(
        self,
        capacity_units: int,
        config: RestrictedBuddyConfig,
        rng: RandomStream | None = None,
    ) -> None:
        super().__init__(capacity_units, rng)
        self.config = config
        self.store = LadderFreeStore(
            capacity_units,
            config.block_sizes_units,
            region_units=config.region_units if config.clustered else None,
        )
        if config.clustered:
            self._region_units = config.region_units
        else:
            self._region_units = capacity_units  # one region == no clustering
        self._n_regions = -(-capacity_units // self._region_units)
        self._last_satisfied_region = 0
        # Everything _extend reads per call that cannot change after
        # construction (config is a frozen dataclass; capacity is fixed
        # here), packed so the hot loop pays one attribute lookup and a
        # tuple unpack instead of six lookups.  The store is deliberately
        # NOT cached: tests swap in a shadow store after construction.
        self._extend_hot = (
            config.block_sizes_units,
            config.grow_factor,
            self._region_units,
            capacity_units,
            len(config.block_sizes_units) - 1,
        )
        # Tier bookkeeping lives in handle.policy_state:
        #   "tier": index into the ladder of the current allocation size
        #   "tier_units": units allocated at that tier so far
        #   "prev_end": end address of the most recent allocation

    # -- region helpers ----------------------------------------------------------

    def _region_of(self, address: int) -> int:
        return address // self._region_units

    def _region_bounds(self, region: int) -> tuple[int, int]:
        low = region * self._region_units
        return low, min(low + self._region_units, self.capacity_units)

    # -- the block hunt ------------------------------------------------------------

    def _find_block(
        self, size: int, optimal_region: int, prefer: int | None
    ) -> tuple[int, int]:
        """Locate a block of ``size``; returns ``(address, found size)``.

        ``found size`` exceeds ``size`` when a split is required.  Raises
        DiskFullError when nothing anywhere can satisfy the request.
        """
        store = self.store
        low, high = self._region_bounds(optimal_region)

        # Step 1: the optimal region — exact size, contiguity first.
        address = store.free_exact(size, low, high, prefer)
        if address is not None:
            return address, size
        # Still step 1: adequate contiguous space in-region -> split a
        # larger block, preferably the next sequential one.
        split = store.splittable(size, low, high, prefer)
        if split is not None:
            return split

        # Step 2: any region with a block of the correct size, scanning
        # from the next region around the ring.  The store's per-region
        # summaries answer "does this region even have one" in O(1), so
        # only candidate regions pay for a real range query.
        for distance in range(1, self._n_regions):
            region = (optimal_region + distance) % self._n_regions
            if not store.region_has_exact(size, region):
                continue
            region_low, region_high = self._region_bounds(region)
            address = store.free_exact(size, region_low, region_high, None)
            if address is not None:
                return address, size

        # Step 3: next region with available space — split a larger block.
        for distance in range(1, self._n_regions):
            region = (optimal_region + distance) % self._n_regions
            if not store.region_has_splittable(size, region):
                continue
            region_low, region_high = self._region_bounds(region)
            split = store.splittable(size, region_low, region_high, None)
            if split is not None:
                return split

        raise self._fail(size)

    def _allocate_block(
        self,
        size: int,
        optimal_region: int,
        prefer: int | None,
        *,
        skip_exact_probe: bool = False,
    ) -> int:
        """Hot-path form of :meth:`_find_block` that also takes the block.

        Same three-step search order, but each probe uses the store's
        fused find-and-take methods so a hit costs one search instead of
        a find followed by a re-locating take.  :meth:`_find_block` stays
        as the non-mutating query form; the differential tests hold the
        two to identical decisions via the reference store.

        ``skip_exact_probe`` lets a caller whose own exact-block probe of
        the optimal region just missed (take_run_in_region returning None
        implies take_in_region would too) skip step 1's repeat of it.
        """
        store = self.store
        region_units = self._region_units
        capacity = self.capacity_units
        low = optimal_region * region_units
        high = low + region_units
        if high > capacity:
            high = capacity
        # Step 1: exact block in the optimal region, contiguity first;
        # then an in-region split of a larger block.
        address = (
            None
            if skip_exact_probe
            else store.take_in_region(size, low, high, prefer)
        )
        if address is None:
            address = store.take_split_in_region(size, low, high, prefer)
        if address is None:
            # Step 2: any region with an exact-size block, ring order.
            n_regions = self._n_regions
            for distance in range(1, n_regions):
                region = (optimal_region + distance) % n_regions
                if not store.region_has_exact(size, region):
                    continue
                region_low = region * region_units
                region_high = min(region_low + region_units, capacity)
                address = store.take_in_region(size, region_low, region_high)
                if address is not None:
                    break
        if address is None:
            # Step 3: next region with available space — split there.
            n_regions = self._n_regions
            for distance in range(1, n_regions):
                region = (optimal_region + distance) % n_regions
                if not store.region_has_splittable(size, region):
                    continue
                region_low = region * region_units
                region_high = min(region_low + region_units, capacity)
                address = store.take_split_in_region(size, region_low, region_high)
                if address is not None:
                    break
        if address is None:
            raise self._fail(size)
        self._last_satisfied_region = address // region_units
        return address

    # -- grow policy ---------------------------------------------------------------

    def _retier_after_truncate(self, handle: AllocFile) -> None:
        """Recompute tier state from the surviving extents."""
        state = handle.policy_state
        if not handle.extents:
            state["tier"] = 0
            state["tier_units"] = 0
            state["prev_end"] = (
                handle.descriptor.end if handle.descriptor is not None else None
            )
            return
        last_size = handle.extents[-1].length
        tier_units = 0
        for extent in reversed(handle.extents):
            if extent.length != last_size:
                break
            tier_units += extent.length
        state["tier"] = self.config.block_sizes_units.index(last_size)
        state["tier_units"] = tier_units
        state["prev_end"] = handle.extents[-1].end

    # -- policy hooks -------------------------------------------------------

    def _allocate_descriptor(self, handle: AllocFile, size_hint_units: int) -> Extent:
        smallest = self.config.block_sizes_units[0]
        # "If the allocation request is for a file descriptor, the optimal
        # region is the region after the region in which the last request
        # was satisfied."
        region = (self._last_satisfied_region + 1) % self._n_regions
        address = self._allocate_block(smallest, region, None)
        handle.policy_state["prev_end"] = None
        handle.policy_state["tier"] = 0
        handle.policy_state["tier_units"] = 0
        return Extent(address, smallest)

    def _extend(self, handle: AllocFile, n_units: int) -> list[Extent]:
        # The hot loop: tier, tier_units, and prev_end live in locals and
        # are written back once on success.  On failure the rollback
        # recomputes them from the surviving extents (which never include
        # ``added``), so deferring the writes cannot change the outcome.
        sizes, grow_factor, region_units, capacity, last_tier = self._extend_hot
        take_run_in_region = self.store.take_run_in_region
        state = handle.policy_state
        tier = state.get("tier", 0)
        tier_units = state.get("tier_units", 0)
        prev_end = state.get("prev_end")
        descriptor = handle.descriptor
        added: list[Extent] = []
        try:
            remaining = n_units
            while remaining > 0:
                size = sizes[tier]
                if prev_end is not None:
                    optimal = (prev_end - 1) // region_units
                    prefer = prev_end
                elif descriptor is not None:
                    optimal = descriptor.start // region_units
                    # First data block: near the descriptor is "close to
                    # related blocks (meta data)".
                    prefer = descriptor.end
                else:
                    optimal = self._last_satisfied_region
                    prefer = None
                # Step 1's exact-block probe, batched: take the whole run
                # of blocks the block-at-a-time loop would have taken —
                # first block by take_in_region's selection order, then
                # adjacent free blocks while each starts inside the same
                # region window (block by block, the next preferred
                # address is exactly the previous block's end, and a
                # block straddling the region edge would shift the next
                # iteration's window — precisely where the run stops).
                # Capped at the blocks this tier still owes before its
                # size bump and at the request's remainder.  A miss falls
                # into the full three-step search, whose own step-1
                # re-probe is a no-op repeat of this failed one.
                low = optimal * region_units
                high = low + region_units
                if high > capacity:
                    high = capacity
                want = -(-remaining // size)
                # The bump cap never lowers a single-block request (it is
                # clamped to >= 1), so skip its divisions when want == 1.
                if want > 1 and tier < last_tier:
                    until_bump = -(
                        -(grow_factor * sizes[tier + 1] - tier_units)
                        // size
                    )
                    if until_bump < 1:
                        until_bump = 1
                    if until_bump < want:
                        want = until_bump
                hit = take_run_in_region(size, low, high, prefer, want)
                if hit is None:
                    start = self._allocate_block(
                        size, optimal, prefer, skip_exact_probe=True
                    )
                    run = 1
                else:
                    start, run = hit
                    self._last_satisfied_region = (
                        (start + (run - 1) * size) // region_units
                    )
                address = start
                for _ in range(run):
                    added.append(Extent(address, size))
                    address += size
                prev_end = address
                tier_units += run * size
                if tier < last_tier and tier_units >= grow_factor * sizes[tier + 1]:
                    tier += 1
                    tier_units = 0
                remaining -= run * size
        except Exception:
            for extent in reversed(added):
                self.store.release(extent.start, extent.length)
            self._retier_after_truncate(handle)
            raise
        state["tier"] = tier
        state["tier_units"] = tier_units
        state["prev_end"] = prev_end
        return added

    def _release_extent(self, handle: AllocFile, extent: Extent) -> None:
        self.store.release(extent.start, extent.length)
        # Caller (base truncate/delete) pops extents tail-first; retier
        # lazily afterwards via _retier_after_truncate in truncate().

    def _release_descriptor(self, handle: AllocFile, extent: Extent) -> None:
        self.store.release(extent.start, extent.length)

    def truncate(self, handle: AllocFile, n_units: int) -> int:
        """Truncate, then recompute the file's grow-policy tier."""
        freed = super().truncate(handle, n_units)
        if freed:
            self._retier_after_truncate(handle)
        return freed

    def delete(self, handle: AllocFile) -> None:
        """Free all data extents and the descriptor; retire the file.

        Same contract and same per-extent ordering as the base
        implementation, with the release-hook indirection inlined to the
        store — one call per extent instead of two on the churn-heavy
        path (this policy's release hooks add nothing over the store
        call, so the shortcut cannot change behaviour).
        """
        self._check_live(handle)
        release = self.store.release
        try:
            for extent in reversed(handle.extents):
                release(extent.start, extent.length)
                self._allocated_units -= extent.length
            handle.extents.clear()
            descriptor = handle.descriptor
            if descriptor is not None:
                release(descriptor.start, descriptor.length)
                self._allocated_units -= descriptor.length
                handle.descriptor = None
        except AllocatorStateError:
            raise
        except SimulationError as error:
            raise self._wrap_state_error("delete", error) from error
        handle.deleted = True
        del self.files[handle.file_id]

    # -- introspection ----------------------------------------------------------

    def average_extents_per_file(self) -> float:
        """Mean data-extent (block) count across live files."""
        if not self.files:
            return 0.0
        return sum(h.extent_count for h in self.files.values()) / len(self.files)

    def contiguity_fraction(self) -> float:
        """Fraction of inter-block transitions that are contiguous.

        A direct measure of how well "the allocator attempts to allocate
        logically sequential blocks of a file to physically contiguous
        regions" is succeeding.
        """
        contiguous = 0
        transitions = 0
        for handle in self.files.values():
            for previous, current in zip(handle.extents, handle.extents[1:]):
                transitions += 1
                if previous.end == current.start:
                    contiguous += 1
        return contiguous / transitions if transitions else 1.0

    def snapshot_free_state(self) -> dict:
        """Ladder-store bitmap and free lists (fingerprint hook)."""
        return {
            "allocated_units": self._allocated_units,
            "store": self.store.snapshot(),
        }

    def check_free_space(self) -> None:
        """Validate store invariants and unit accounting (test hook)."""
        self.store.check_invariants()
        unaddressable = self.capacity_units - self._initial_store_units()
        if self.store.free_units + self.allocated_units + unaddressable != (
            self.capacity_units
        ):
            raise ConfigurationError("restricted buddy accounting mismatch")

    def _initial_store_units(self) -> int:
        """Units the store could address at construction time."""
        smallest = self.config.block_sizes_units[0]
        return self.capacity_units - (self.capacity_units % smallest)
