"""Extent-based allocation (§4.3), the XPRS/[STON89] policy.

"In the extent based models, every file has an extent size associated with
it.  Each time a file grows beyond its current allocation, additional disk
storage is allocated in extent sized chunks. ... an extent may begin at
any address.  When an extent is freed, it is coalesced with its adjoining
extents if they are free."

Design parameters, as in the paper:

* **fit policy** — first-fit (address order; tends to cluster allocations
  "toward the beginning of the disk system") or best-fit (smallest
  adequate hole).
* **extent size ranges** — each range is a normal distribution whose
  standard deviation is 10 % of its mean.  A file draws its extent size
  once, at creation, from the range its :class:`ExtentSizeConfig`
  assignment rule selects (by the file's allocation-size hint).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim.rng import RandomStream
from ..structures.intervals import FreeExtentMap
from .base import AllocFile, Allocator, Extent

#: The paper's deviation rule: sigma = 10 % of the range mean.
DEVIATION_FRACTION = 0.10


class FitPolicy(enum.Enum):
    """Hole-selection rule for new extents."""

    FIRST_FIT = "first-fit"
    BEST_FIT = "best-fit"


@dataclass(frozen=True)
class ExtentSizeConfig:
    """The extent-size ranges of one configuration.

    Attributes:
        range_means_units: the means of the normal extent-size ranges,
            ascending, in disk units (e.g. Fig. 4's "1K, 8K, 1M" for TS).
    """

    range_means_units: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.range_means_units:
            raise ConfigurationError("need at least one extent range")
        if any(mean <= 0 for mean in self.range_means_units):
            raise ConfigurationError("extent range means must be positive")
        if list(self.range_means_units) != sorted(self.range_means_units):
            raise ConfigurationError("extent range means must be ascending")

    @property
    def n_ranges(self) -> int:
        """Number of ranges (the x-axis of Figures 4 and 5)."""
        return len(self.range_means_units)

    def pick_range_mean(self, allocation_hint_units: int) -> int:
        """Select the range a file uses, from its allocation-size hint.

        The hint is the file type's *Allocation Size* parameter (Table 2:
        "For extent based systems, mean extent size").  The closest range
        mean wins (log-scale distance, since ranges span 1K..16M); with no
        hint the smallest range is used.
        """
        if allocation_hint_units <= 0:
            return self.range_means_units[0]
        best_mean = self.range_means_units[0]
        best_distance = None
        for mean in self.range_means_units:
            larger = max(mean, allocation_hint_units)
            smaller = min(mean, allocation_hint_units)
            distance = larger / smaller  # ratio distance == log-scale
            if best_distance is None or distance < best_distance:
                best_distance = distance
                best_mean = mean
        return best_mean


class ExtentAllocator(Allocator):
    """First-fit / best-fit extent allocation over a coalescing hole list."""

    name = "extent"

    def __init__(
        self,
        capacity_units: int,
        size_config: ExtentSizeConfig,
        fit: FitPolicy = FitPolicy.FIRST_FIT,
        rng: RandomStream | None = None,
    ) -> None:
        super().__init__(capacity_units, rng)
        self.size_config = size_config
        self.fit = fit
        self._free = FreeExtentMap(capacity_units)
        self._size_stream = self.rng.fork("extent-sizes")

    # -- placement ------------------------------------------------------------

    def _take(self, n_units: int) -> int:
        """Carve ``n_units`` from the free map per the fit policy."""
        if self.fit is FitPolicy.FIRST_FIT:
            start = self._free.take_first_fit(n_units)
        else:
            start = self._free.take_best_fit(n_units)
        if start is None:
            raise self._fail(n_units)
        return start

    def _file_extent_units(self, handle: AllocFile, size_hint_units: int) -> int:
        """Draw the file's extent size (once, at creation)."""
        mean = self.size_config.pick_range_mean(size_hint_units)
        drawn = self._size_stream.normal(
            float(mean), DEVIATION_FRACTION * mean, minimum=1.0
        )
        return max(1, int(round(drawn)))

    # -- policy hooks -------------------------------------------------------

    def _allocate_descriptor(self, handle: AllocFile, size_hint_units: int) -> Extent:
        handle.policy_state["extent_units"] = self._file_extent_units(
            handle, size_hint_units
        )
        start = self._take(1)
        return Extent(start, 1)

    def _extend(self, handle: AllocFile, n_units: int) -> list[Extent]:
        extent_units = handle.policy_state["extent_units"]
        added: list[Extent] = []
        allocated = 0
        try:
            while allocated < n_units:
                start = self._take(extent_units)
                added.append(Extent(start, extent_units))
                allocated += extent_units
        except Exception:
            # No partial growth on failure: hand back what we carved.
            for extent in added:
                self._free.release(extent.start, extent.length)
            raise
        return added

    def _release_extent(self, handle: AllocFile, extent: Extent) -> None:
        self._free.release(extent.start, extent.length)

    def _release_descriptor(self, handle: AllocFile, extent: Extent) -> None:
        self._free.release(extent.start, extent.length)

    # -- introspection ----------------------------------------------------------

    @property
    def hole_count(self) -> int:
        """Number of free holes (external-fragmentation texture)."""
        return self._free.fragment_count

    @property
    def largest_hole_units(self) -> int:
        """Largest single free hole."""
        return self._free.largest_free()

    def average_extents_per_file(self) -> float:
        """Mean data-extent count over live files (Table 4's statistic)."""
        if not self.files:
            return 0.0
        total = sum(handle.extent_count for handle in self.files.values())
        return total / len(self.files)

    def snapshot_free_state(self) -> dict:
        """Free holes in address order (fingerprint hook)."""
        return {
            "allocated_units": self._allocated_units,
            "holes": [[start, length] for start, length in self._free.intervals()],
        }

    def check_free_space(self) -> None:
        """Validate the hole list and the unit accounting (test hook)."""
        self._free.check_invariants()
        if self._free.free_units != self.free_units:
            raise ConfigurationError(
                f"free map {self._free.free_units} != accounting {self.free_units}"
            )
