"""Size units and helpers.

All byte quantities in the library use binary units (1 K = 1024 bytes), as
the paper's block sizes (1K, 8K, 64K, 1M, 16M) are conventional binary file
system block sizes.  Disk addresses are expressed in *disk units* (see
:mod:`repro.disk`); these helpers convert between the two.
"""

from __future__ import annotations

from .errors import ConfigurationError

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Suffix multipliers accepted by :func:`parse_size`.
_SUFFIXES = {
    "": 1,
    "B": 1,
    "K": KIB,
    "KB": KIB,
    "KIB": KIB,
    "M": MIB,
    "MB": MIB,
    "MIB": MIB,
    "G": GIB,
    "GB": GIB,
    "GIB": GIB,
}


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable size such as ``"8K"`` or ``"2.8G"`` into bytes.

    Integers and floats pass through (floats are rounded).  Strings consist
    of a number followed by an optional suffix from K/M/G (optionally with a
    trailing ``B`` or ``iB``); matching is case-insensitive.

    >>> parse_size("8K")
    8192
    >>> parse_size("1.5M")
    1572864
    >>> parse_size(4096)
    4096
    """
    if isinstance(text, (int, float)):
        return int(round(text))
    stripped = text.strip().upper()
    index = len(stripped)
    while index > 0 and stripped[index - 1].isalpha():
        index -= 1
    number_part, suffix = stripped[:index].strip(), stripped[index:]
    if suffix not in _SUFFIXES:
        raise ConfigurationError(f"unknown size suffix {suffix!r} in {text!r}")
    try:
        value = float(number_part)
    except ValueError as exc:
        raise ConfigurationError(f"cannot parse size {text!r}") from exc
    return int(round(value * _SUFFIXES[suffix]))


def format_size(n_bytes: int) -> str:
    """Format a byte count using the largest clean binary unit.

    >>> format_size(8192)
    '8K'
    >>> format_size(2936012800)
    '2.7G'
    """
    for suffix, factor in (("G", GIB), ("M", MIB), ("K", KIB)):
        if n_bytes >= factor:
            value = n_bytes / factor
            if value == int(value):
                return f"{int(value)}{suffix}"
            return f"{value:.1f}{suffix}"
    return f"{n_bytes}B"


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer division rounding up; denominator must be positive."""
    if denominator <= 0:
        raise ConfigurationError(f"denominator must be positive: {denominator}")
    return -(-numerator // denominator)


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def next_power_of_two(value: int) -> int:
    """Round ``value`` up to the nearest power of two (minimum 1)."""
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()
