"""Seeded, deterministic fault injection for the simulated disk system.

The paper evaluates allocation policies on healthy hardware; the value of
the redundant organizations in :mod:`repro.disk.raid` only shows up when
drives misbehave.  This package injects three fault families into a
running simulation — transient read errors, whole-disk failures (with an
optional repair + background rebuild), and slow-disk latency multipliers —
all driven by a declarative :class:`FaultSpec` and a seeded RNG stream, so
the same ``(spec, seed)`` pair reproduces bit-identical degraded-mode
results in any process, at any ``--jobs`` count, on either engine variant.

Layering: :class:`FaultSpec` (declarative, hashable, lives inside
:class:`~repro.core.configs.ExperimentConfig`) → :class:`FaultInjector`
(runtime: schedules the spec's events onto a simulator, flips per-drive
:class:`DriveFaultState`, runs rebuilds, and meters degraded-mode
throughput as a fraction of healthy throughput).
"""

from .injector import DriveFaultState, FaultInjector, FaultSummary
from .plan import (
    DiskFailure,
    FaultSpec,
    SlowDisk,
    TransientFaults,
    parse_fault_spec,
)

__all__ = [
    "DiskFailure",
    "DriveFaultState",
    "FaultInjector",
    "FaultSpec",
    "FaultSummary",
    "SlowDisk",
    "TransientFaults",
    "parse_fault_spec",
]
