"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultSpec` is a frozen, hashable description of every fault to
inject into one simulation.  It deliberately contains no runtime state —
no RNG, no simulator — so it can live inside an
:class:`~repro.core.configs.ExperimentConfig`, participate in the
runner's content-addressed cache keys, and cross process boundaries by
pickling.  The runtime half (scheduling, per-drive state, meters) is
:class:`~repro.fault.injector.FaultInjector`.

Three fault families, mirroring what degrades real arrays:

* :class:`DiskFailure` — the drive stops serving at ``at_ms``; with
  ``repair_after_ms`` set, a replacement arrives that much later and a
  background rebuild streams the drive's contents back (competing with
  foreground traffic for bandwidth).
* :class:`TransientFaults` — each read on the affected drive(s) fails
  with probability ``rate`` and is retried after a full revolution, the
  classic soft-error/ECC-retry cost.
* :class:`SlowDisk` — service times on one drive scale by ``factor``
  for ``duration_ms`` (a degraded spindle / remapped-sector region).

``parse_fault_spec`` turns the CLI's compact ``--inject`` string into a
spec, e.g. ``"fail:drive=2,at=5000,repair=20000;transient:rate=0.001"``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import FaultError

#: Sentinel drive index meaning "every drive in the system".
ALL_DRIVES = -1


@dataclass(frozen=True)
class DiskFailure:
    """One whole-disk failure, optionally followed by repair + rebuild.

    Attributes:
        at_ms: simulated time the drive stops serving.
        drive: index into the disk system's ``drives`` list.
        repair_after_ms: delay from failure to the replacement drive
            coming online (rebuild starts then).  ``None`` means the
            drive never returns.
    """

    at_ms: float
    drive: int
    repair_after_ms: float | None = None

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise FaultError(f"failure scheduled in the past: {self.at_ms}")
        if self.drive < 0:
            raise FaultError(f"bad drive index: {self.drive}")
        if self.repair_after_ms is not None and self.repair_after_ms < 0:
            raise FaultError(f"negative repair delay: {self.repair_after_ms}")


@dataclass(frozen=True)
class SlowDisk:
    """A latency multiplier on one drive for a bounded window.

    Attributes:
        at_ms: when the slowdown begins.
        drive: affected drive index (or :data:`ALL_DRIVES`).
        factor: service-time multiplier, must be >= 1.
        duration_ms: window length; ``inf`` means "until the end".
    """

    at_ms: float
    drive: int
    factor: float
    duration_ms: float = math.inf

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise FaultError(f"slowdown scheduled in the past: {self.at_ms}")
        if self.factor < 1.0:
            raise FaultError(f"slowdown factor must be >= 1: {self.factor}")
        if self.duration_ms <= 0:
            raise FaultError(f"non-positive slowdown window: {self.duration_ms}")


@dataclass(frozen=True)
class TransientFaults:
    """Per-read transient error probability over a time window.

    Attributes:
        rate: probability any single read fails once and is retried.
        drive: affected drive index, or :data:`ALL_DRIVES` (default).
        start_ms / end_ms: window bounds; ``end_ms=inf`` (default) keeps
            the fault process active for the whole run.
    """

    rate: float
    drive: int = ALL_DRIVES
    start_ms: float = 0.0
    end_ms: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise FaultError(f"transient rate outside [0, 1]: {self.rate}")
        if self.start_ms < 0 or self.end_ms < self.start_ms:
            raise FaultError(
                f"bad transient window [{self.start_ms}, {self.end_ms}]"
            )


@dataclass(frozen=True)
class FaultSpec:
    """Everything to inject into one simulation, declaratively.

    Hashable and canonically serializable (it is an ordinary nested
    frozen dataclass), so configs carrying a spec produce stable runner
    cache keys.  ``describe()`` gives the one-line form used in logs.
    """

    failures: tuple[DiskFailure, ...] = ()
    slowdowns: tuple[SlowDisk, ...] = ()
    transients: tuple[TransientFaults, ...] = ()
    #: Extra seed salt so two otherwise-identical experiments can draw
    #: different transient-fault streams.
    seed_salt: int = 0
    #: Rebuild request size, in stripe rows per chunk (bigger chunks
    #: rebuild faster but hold the queues longer per request).
    rebuild_rows_per_chunk: int = 8

    def __post_init__(self) -> None:
        if self.rebuild_rows_per_chunk <= 0:
            raise FaultError(
                f"rebuild chunk must be positive: {self.rebuild_rows_per_chunk}"
            )

    @property
    def empty(self) -> bool:
        """True when the spec injects nothing."""
        return not (self.failures or self.slowdowns or self.transients)

    def describe(self) -> str:
        """Compact one-line description for logs and reports."""
        parts = []
        for f in self.failures:
            repair = (
                f",repair+{f.repair_after_ms:g}ms"
                if f.repair_after_ms is not None
                else ""
            )
            parts.append(f"fail(d{f.drive}@{f.at_ms:g}ms{repair})")
        for s in self.slowdowns:
            who = "all" if s.drive == ALL_DRIVES else f"d{s.drive}"
            parts.append(f"slow({who}@{s.at_ms:g}ms x{s.factor:g})")
        for t in self.transients:
            who = "all" if t.drive == ALL_DRIVES else f"d{t.drive}"
            parts.append(f"transient({who} p={t.rate:g})")
        return " ".join(parts) if parts else "no-faults"


# ---------------------------------------------------------------------------
# The CLI's compact spec syntax
# ---------------------------------------------------------------------------

_REQUIRED = object()


def _fields(body: str, clause: str, **spec: object) -> dict[str, float]:
    """Parse ``k=v,k=v`` with per-key defaults; unknown keys are errors."""
    values: dict[str, float] = {}
    if body:
        for pair in body.split(","):
            if "=" not in pair:
                raise FaultError(f"expected key=value in {clause!r}: {pair!r}")
            key, _, raw = pair.partition("=")
            key = key.strip()
            if key not in spec:
                raise FaultError(f"unknown key {key!r} in {clause!r}")
            try:
                values[key] = float(raw)
            except ValueError:
                raise FaultError(f"bad number {raw!r} in {clause!r}") from None
    for key, default in spec.items():
        if key not in values:
            if default is _REQUIRED:
                raise FaultError(f"{clause!r} requires {key}=")
            values[key] = default  # type: ignore[assignment]
    return values


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the ``--inject`` syntax into a :class:`FaultSpec`.

    Clauses are ``;``-separated; each is ``kind:key=value,...``:

    * ``fail:drive=2,at=5000[,repair=20000]``
    * ``slow:drive=1,at=0,factor=4[,for=30000]``
    * ``transient:rate=0.001[,drive=2][,from=0][,until=60000]``

    Times are simulated milliseconds.  ``drive`` omitted on ``transient``
    means every drive.
    """
    failures: list[DiskFailure] = []
    slowdowns: list[SlowDisk] = []
    transients: list[TransientFaults] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, body = clause.partition(":")
        kind = kind.strip().lower()
        if kind == "fail":
            v = _fields(
                body, clause, drive=_REQUIRED, at=_REQUIRED, repair=math.nan
            )
            failures.append(
                DiskFailure(
                    at_ms=v["at"],
                    drive=int(v["drive"]),
                    repair_after_ms=None if math.isnan(v["repair"]) else v["repair"],
                )
            )
        elif kind == "slow":
            v = _fields(
                body,
                clause,
                drive=_REQUIRED,
                at=0.0,
                factor=_REQUIRED,
                **{"for": math.inf},
            )
            slowdowns.append(
                SlowDisk(
                    at_ms=v["at"],
                    drive=int(v["drive"]),
                    factor=v["factor"],
                    duration_ms=v["for"],
                )
            )
        elif kind == "transient":
            v = _fields(
                body,
                clause,
                rate=_REQUIRED,
                drive=float(ALL_DRIVES),
                **{"from": 0.0, "until": math.inf},
            )
            transients.append(
                TransientFaults(
                    rate=v["rate"],
                    drive=int(v["drive"]),
                    start_ms=v["from"],
                    end_ms=v["until"],
                )
            )
        else:
            raise FaultError(
                f"unknown fault kind {kind!r} (expected fail/slow/transient)"
            )
    return FaultSpec(
        failures=tuple(failures),
        slowdowns=tuple(slowdowns),
        transients=tuple(transients),
    )
