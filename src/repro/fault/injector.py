"""Runtime fault injection: scheduling, per-drive state, degraded meters.

The :class:`FaultInjector` binds a declarative
:class:`~repro.fault.plan.FaultSpec` to one simulation: it attaches a
:class:`DriveFaultState` to every drive (read by
:class:`~repro.disk.queue.QueuedDrive` on its service path), schedules
the spec's failures/slowdowns through the event engine, launches the
organization's background rebuild when a replacement drive arrives, and
meters how the system performs while degraded.

Determinism: every stochastic decision (transient-fault draws) comes from
a :class:`~repro.sim.rng.RandomStream` derived from ``(seed, spec
seed_salt, drive index)``, and every state flip is an ordinary simulator
event — so a fixed ``(spec, seed)`` reproduces bit-identical results in
any process, at any worker count, and on both engine variants
(``immediate_queue`` on or off), which the test suite asserts.

Metering: the injector snapshots the system's cumulative byte counter at
every degraded/healthy transition, attributing each simulated interval's
traffic to the mode it ran under.  Rebuild traffic is counted separately
(``rebuild_bytes``) and excluded from the degraded-mode number, so
``degraded_percent_of_healthy`` compares *foreground* service rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import FaultError
from ..sim.engine import FaultEvent, Simulator
from ..sim.rng import RandomStream
from .plan import ALL_DRIVES, FaultSpec


class DriveFaultState:
    """Mutable per-drive fault flags, read on the drive's service path.

    ``available`` gates routing: organizations skip (mirror), reconstruct
    around (RAID-5), or reject (plain stripe) requests for an unavailable
    drive.  ``slow_factor`` scales service times.  ``sample_transient``
    draws whether one read fails and must be retried.
    """

    __slots__ = (
        "index",
        "available",
        "status",
        "slow_factor",
        "_slow_stack",
        "_windows",
        "_rng",
        "transient_errors",
        "failures",
    )

    def __init__(self, index: int, rng: RandomStream) -> None:
        self.index = index
        self.available = True
        self.status = "healthy"  # healthy | failed | rebuilding
        self.slow_factor = 1.0
        self._slow_stack: list[float] = []
        #: (rate, start_ms, end_ms) transient windows affecting this drive.
        self._windows: list[tuple[float, float, float]] = []
        self._rng = rng
        self.transient_errors = 0
        self.failures = 0

    def add_transient_window(self, rate: float, start: float, end: float) -> None:
        self._windows.append((rate, start, end))

    @property
    def has_transients(self) -> bool:
        return bool(self._windows)

    def sample_transient(self, now: float) -> bool:
        """Draw whether a read starting at ``now`` suffers a soft error.

        One RNG draw per active window, in registration order, so the
        stream is a pure function of the request sequence.
        """
        failed = False
        for rate, start, end in self._windows:
            if start <= now <= end and self._rng.random() < rate:
                failed = True
        if failed:
            self.transient_errors += 1
        return failed

    def push_slow(self, factor: float) -> None:
        self._slow_stack.append(factor)
        self._recompute_slow()

    def pop_slow(self, factor: float) -> None:
        self._slow_stack.remove(factor)
        self._recompute_slow()

    def _recompute_slow(self) -> None:
        product = 1.0
        for factor in self._slow_stack:
            product *= factor
        self.slow_factor = product


@dataclass(frozen=True)
class FaultSummary:
    """What the injector observed over one run (deterministic per seed).

    ``degraded_bytes``/``degraded_ms`` cover intervals where at least one
    drive was failed or rebuilding, with rebuild traffic excluded; the
    healthy fields cover everything else.  The headline meter is
    :attr:`degraded_percent_of_healthy` — degraded-mode foreground
    throughput as a percentage of healthy-mode throughput.
    """

    disk_failures: int
    transient_errors: int
    slowdowns: int
    rebuilds_completed: int
    healthy_ms: float
    degraded_ms: float
    healthy_bytes: float
    degraded_bytes: float
    rebuild_bytes: float

    @property
    def healthy_throughput(self) -> float:
        """Healthy-mode foreground bytes/ms (0 when never healthy)."""
        return self.healthy_bytes / self.healthy_ms if self.healthy_ms > 0 else 0.0

    @property
    def degraded_throughput(self) -> float:
        """Degraded-mode foreground bytes/ms (0 when never degraded)."""
        return (
            self.degraded_bytes / self.degraded_ms if self.degraded_ms > 0 else 0.0
        )

    @property
    def degraded_percent_of_healthy(self) -> float | None:
        """Degraded throughput as % of healthy throughput (the meter the
        mirrored/RAID-5 organizations exist to keep high).

        ``None`` when there is no healthy baseline to compare against —
        a run that spent its whole window degraded, or one that moved no
        bytes while healthy.  Returning 0.0 there (as this once did)
        read as "degraded mode moved nothing", which is a different and
        usually false claim; reports render the ``None`` as ``n/a``.
        """
        if self.healthy_ms <= 0 or self.healthy_bytes <= 0:
            return None
        return 100.0 * self.degraded_throughput / self.healthy_throughput


class FaultInjector:
    """Wires a :class:`FaultSpec` into one simulator + disk system."""

    def __init__(
        self,
        sim: Simulator,
        system,
        spec: FaultSpec,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.system = system
        self.spec = spec
        self.seed = seed
        n = len(system.drives)
        root = RandomStream(seed, f"faults/{spec.seed_salt}")
        self.states = [
            DriveFaultState(i, root.fork(f"drive/{i}")) for i in range(n)
        ]
        self._unavailable: set[int] = set()
        self.rebuild_bytes = 0
        self.rebuilds_completed = 0
        self.slowdowns_applied = 0
        # Degraded-window accounting (byte counters snapshotted at flips).
        self._healthy_ms = 0.0
        self._degraded_ms = 0.0
        self._healthy_bytes = 0.0
        self._degraded_bytes = 0.0
        self._window_started = sim.now
        self._bytes_at_window_start = system.total_bytes_moved
        self._rebuild_bytes_at_window_start = 0

        self._validate(n)
        for drive, state in zip(system.drives, self.states):
            drive.fault_state = state
        for spec_t in spec.transients:
            targets = (
                range(n) if spec_t.drive == ALL_DRIVES else (spec_t.drive,)
            )
            for index in targets:
                self.states[index].add_transient_window(
                    spec_t.rate, spec_t.start_ms, spec_t.end_ms
                )
        system.fault_injector = self
        self._schedule()

    # -- setup -------------------------------------------------------------

    def _validate(self, n: int) -> None:
        for f in self.spec.failures:
            if f.drive >= n:
                raise FaultError(
                    f"failure targets drive {f.drive} but system has {n}"
                )
        for s in self.spec.slowdowns:
            if s.drive != ALL_DRIVES and s.drive >= n:
                raise FaultError(
                    f"slowdown targets drive {s.drive} but system has {n}"
                )
        for t in self.spec.transients:
            if t.drive != ALL_DRIVES and t.drive >= n:
                raise FaultError(
                    f"transients target drive {t.drive} but system has {n}"
                )
        seen: set[int] = set()
        for f in self.spec.failures:
            if f.drive in seen:
                raise FaultError(
                    f"drive {f.drive} fails twice in one plan (unsupported)"
                )
            seen.add(f.drive)

    def _schedule(self) -> None:
        sim = self.sim
        for f in self.spec.failures:
            sim.schedule_at(f.at_ms, self._fail_drive, f.drive)
            if f.repair_after_ms is not None:
                sim.schedule_at(
                    f.at_ms + f.repair_after_ms, self._repair_drive, f.drive
                )
        for s in self.spec.slowdowns:
            targets = (
                range(len(self.states))
                if s.drive == ALL_DRIVES
                else (s.drive,)
            )
            for index in targets:
                sim.schedule_at(s.at_ms, self._slow_start, index, s.factor)
                if not math.isinf(s.duration_ms):
                    sim.schedule_at(
                        s.at_ms + s.duration_ms, self._slow_end, index, s.factor
                    )

    # -- event callbacks ---------------------------------------------------

    def _fail_drive(self, sim: Simulator, index: int) -> None:
        state = self.states[index]
        state.available = False
        state.status = "failed"
        state.failures += 1
        self._mark_unavailable(index)
        sim.emit_fault(FaultEvent("disk-failure", index, sim.now))

    def _repair_drive(self, sim: Simulator, index: int) -> None:
        state = self.states[index]
        if state.status != "failed":  # pragma: no cover - plan validation
            raise FaultError(f"repair of drive {index} which is not failed")
        rebuild = self.system.start_rebuild(
            index, self.spec.rebuild_rows_per_chunk
        )
        if rebuild is None:
            # No redundancy to rebuild from: the replacement simply comes
            # online (contents restored out of band, e.g. from backup).
            self._drive_back(sim, index)
        else:
            state.status = "rebuilding"
            sim.emit_fault(FaultEvent("rebuild-start", index, sim.now))
            sim.process(
                self._run_rebuild(index, rebuild), name=f"rebuild/d{index}"
            )

    def _run_rebuild(self, index: int, rebuild):
        yield from rebuild
        self.rebuilds_completed += 1
        self._drive_back(self.sim, index)

    def _drive_back(self, sim: Simulator, index: int) -> None:
        state = self.states[index]
        state.status = "healthy"
        state.available = True
        self._mark_available(index)
        sim.emit_fault(FaultEvent("drive-restored", index, sim.now))

    def _slow_start(self, sim: Simulator, index: int, factor: float) -> None:
        self.states[index].push_slow(factor)
        self.slowdowns_applied += 1
        sim.emit_fault(FaultEvent("slowdown-start", index, sim.now))

    def _slow_end(self, sim: Simulator, index: int, factor: float) -> None:
        self.states[index].pop_slow(factor)
        sim.emit_fault(FaultEvent("slowdown-end", index, sim.now))

    # -- degraded-window accounting ---------------------------------------

    @property
    def degraded(self) -> bool:
        """True while at least one drive is failed or rebuilding."""
        return bool(self._unavailable)

    def note_rebuild_bytes(self, n_bytes: int) -> None:
        """Called by the organizations' rebuild loops, chunk by chunk."""
        self.rebuild_bytes += n_bytes

    def _close_window(self, degraded: bool) -> None:
        now = self.sim.now
        elapsed = now - self._window_started
        moved = (
            self.system.total_bytes_moved - self._bytes_at_window_start
        ) - (self.rebuild_bytes - self._rebuild_bytes_at_window_start)
        if degraded:
            self._degraded_ms += elapsed
            self._degraded_bytes += moved
        else:
            self._healthy_ms += elapsed
            self._healthy_bytes += moved
        self._window_started = now
        self._bytes_at_window_start = self.system.total_bytes_moved
        self._rebuild_bytes_at_window_start = self.rebuild_bytes

    def _mark_unavailable(self, index: int) -> None:
        if not self._unavailable:
            self._close_window(degraded=False)
        self._unavailable.add(index)

    def _mark_available(self, index: int) -> None:
        self._unavailable.discard(index)
        if not self._unavailable:
            self._close_window(degraded=True)

    # -- reporting ---------------------------------------------------------

    def summary(self, up_to_time: float | None = None) -> FaultSummary:
        """Snapshot the meters, closing the currently-open window.

        Safe to call repeatedly; does not disturb the accounting state
        (the open window is closed and immediately reopened).
        """
        if up_to_time is not None and up_to_time > self.sim.now:
            raise FaultError("summary time is in the simulated future")
        self._close_window(degraded=self.degraded)
        return FaultSummary(
            disk_failures=sum(s.failures for s in self.states),
            transient_errors=sum(s.transient_errors for s in self.states),
            slowdowns=self.slowdowns_applied,
            rebuilds_completed=self.rebuilds_completed,
            healthy_ms=self._healthy_ms,
            degraded_ms=self._degraded_ms,
            healthy_bytes=self._healthy_bytes,
            degraded_bytes=self._degraded_bytes,
            rebuild_bytes=float(self.rebuild_bytes),
        )
