"""Workload characterization: file types, profiles, and drivers."""

from .driver import (
    DEFAULT_LOWER_BOUND,
    DEFAULT_UPPER_BOUND,
    AllocationTestResult,
    WorkloadDriver,
    run_allocation_until_full,
)
from .filetype import AccessPattern, FileType, Operation
from .ops import (
    PlannedOp,
    pick_offset,
    pick_operation,
    plan_operation,
    sample_initial_size,
    sample_rw_size,
)
from .trace import (
    ReplayResult,
    Trace,
    TraceEvent,
    TraceFile,
    record_trace,
    replay_trace,
)
from .profiles import (
    Profile,
    mini,
    profile_by_name,
    supercomputer,
    time_sharing,
    transaction_processing,
)

__all__ = [
    "FileType",
    "Operation",
    "AccessPattern",
    "Profile",
    "time_sharing",
    "transaction_processing",
    "supercomputer",
    "mini",
    "profile_by_name",
    "WorkloadDriver",
    "AllocationTestResult",
    "run_allocation_until_full",
    "DEFAULT_LOWER_BOUND",
    "DEFAULT_UPPER_BOUND",
    "PlannedOp",
    "plan_operation",
    "pick_operation",
    "pick_offset",
    "sample_rw_size",
    "sample_initial_size",
    "Trace",
    "TraceEvent",
    "TraceFile",
    "ReplayResult",
    "record_trace",
    "replay_trace",
]
