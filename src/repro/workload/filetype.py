"""File types: the paper's Table 2 workload parameters.

"The workload is characterized in terms of file types and their reference
patterns. ... Each file type defines the size characteristics, access
patterns, and growth characteristics of a set of files."  Every field of
Table 2 appears here under the same name; two fields the table implies but
does not name are made explicit:

* ``truncate_ratio`` — Table 2 defines *Delete Ratio* as "of the
  deallocate operations, percent which are file deletes"; we carry the
  deallocate split as two explicit percentages (delete + truncate), which
  is how §2.2 quotes every workload anyway ("5% deletes and 5%
  truncates").
* ``access`` — whether reads/writes land at random offsets (TS, TP) or
  march sequentially through the file in bursts (SC).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

from ..errors import ConfigurationError


class AccessPattern(enum.Enum):
    """Where within a file read/write operations land."""

    RANDOM = "random"
    SEQUENTIAL = "sequential"


class Operation(enum.Enum):
    """The operations a user event can issue against its file."""

    READ = "read"
    WRITE = "write"
    EXTEND = "extend"
    TRUNCATE = "truncate"
    DELETE = "delete"


@dataclass(frozen=True)
class FileType:
    """One row of Table 2 (plus the access pattern).

    Ratios are percentages and must sum to 100.  All sizes are in bytes,
    all times in milliseconds.
    """

    name: str
    n_files: int
    n_users: int
    process_time_ms: float
    hit_frequency_ms: float
    rw_size_bytes: int
    rw_deviation_bytes: int
    allocation_size_bytes: int
    truncate_size_bytes: int
    initial_size_bytes: int
    initial_deviation_bytes: int
    read_ratio: float
    write_ratio: float
    extend_ratio: float
    truncate_ratio: float
    delete_ratio: float
    access: AccessPattern = AccessPattern.RANDOM

    def __post_init__(self) -> None:
        if self.n_files < 0 or self.n_users <= 0:
            raise ConfigurationError(f"{self.name}: bad file or user count")
        if self.process_time_ms < 0 or self.hit_frequency_ms < 0:
            raise ConfigurationError(f"{self.name}: negative timing parameter")
        for field_name in (
            "rw_size_bytes",
            "rw_deviation_bytes",
            "allocation_size_bytes",
            "truncate_size_bytes",
            "initial_size_bytes",
            "initial_deviation_bytes",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{self.name}: negative {field_name}")
        total = (
            self.read_ratio
            + self.write_ratio
            + self.extend_ratio
            + self.truncate_ratio
            + self.delete_ratio
        )
        if not math.isclose(total, 100.0, abs_tol=1e-6):
            raise ConfigurationError(
                f"{self.name}: operation ratios sum to {total}, not 100"
            )

    # -- derived -----------------------------------------------------------

    @property
    def operation_weights(self) -> dict[Operation, float]:
        """Ratio of each operation, keyed by :class:`Operation`."""
        return {
            Operation.READ: self.read_ratio,
            Operation.WRITE: self.write_ratio,
            Operation.EXTEND: self.extend_ratio,
            Operation.TRUNCATE: self.truncate_ratio,
            Operation.DELETE: self.delete_ratio,
        }

    @property
    def allocation_weights(self) -> dict[Operation, float]:
        """Weights for the allocation test: "only the extend, truncate,
        delete, and create operations in the proportion as expressed by
        the file type parameters"."""
        return {
            Operation.EXTEND: self.extend_ratio,
            Operation.TRUNCATE: self.truncate_ratio,
            Operation.DELETE: self.delete_ratio,
        }

    @property
    def sequential_weights(self) -> dict[Operation, float]:
        """Weights for the sequential test: reads and writes only.

        A type that never reads or writes (pure log growth) defaults to
        all-reads so the test still touches its files.
        """
        if self.read_ratio + self.write_ratio <= 0:
            return {Operation.READ: 100.0, Operation.WRITE: 0.0}
        return {
            Operation.READ: self.read_ratio,
            Operation.WRITE: self.write_ratio,
        }

    @property
    def event_rate(self) -> float:
        """Relative stream of requests this type generates (users / think)."""
        if self.process_time_ms <= 0:
            return float(self.n_users)
        return self.n_users / self.process_time_ms

    @property
    def expected_bytes(self) -> int:
        """Expected total initial bytes across the type's files."""
        return self.n_files * self.initial_size_bytes

    def with_files(self, n_files: int) -> "FileType":
        """Copy with a different population size (fill-fraction solving)."""
        return replace(self, n_files=n_files)

    def scaled_sizes(self, factor: float, floor_bytes: int = 1024) -> "FileType":
        """Copy with *file* sizes scaled by ``factor``.

        Used to shrink the big-file workloads (TP/SC) together with the
        disk so experiment shapes survive at laptop scale.  Only the
        initial file size (and its deviation) scales: request, truncate,
        and extent-hint sizes are workload properties — an 8K database
        page or a 512K supercomputer burst is the same size on a small
        disk — and scaling them would change the per-request disk
        behaviour the paper measures.  File sizes never drop below
        ``floor_bytes``.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive: {factor}")
        return replace(
            self,
            initial_size_bytes=max(
                floor_bytes, int(round(self.initial_size_bytes * factor))
            ),
            initial_deviation_bytes=int(round(self.initial_deviation_bytes * factor)),
        )
