"""Trace-driven workloads (extension, paper §6).

"And as always, applying the allocation policies to genuine workloads
will yield a much more convincing argument."  This module provides the
machinery for that: an operation trace — a timestamped sequence of
(operation, file, size, offset) records — that can be *recorded* from the
stochastic workload model, saved/loaded as JSON, and *replayed* against
any file system.  Replaying one trace against several policies gives a
perfectly controlled comparison: every policy sees byte-identical
requests in the same order at the same times, so every difference in the
outcome is the allocation policy's doing.  The same format accepts traces
converted from real systems.

Trace files are JSON: a header (capacity, generator parameters) plus an
``initial`` file population and an ``events`` list.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass, field

from ..errors import ConfigurationError, DiskFullError
from ..fs.filesystem import FileSystem, FsFile
from ..sim.engine import Simulator
from ..sim.rng import RandomStream
from .filetype import FileType, Operation
from .ops import pick_offset, plan_operation, sample_initial_size
from .profiles import Profile

#: Trace format version written into every file.
TRACE_FORMAT = 1


@dataclass(frozen=True)
class TraceFile:
    """A file in the trace's initial population."""

    key: str
    size_bytes: int
    allocation_hint_bytes: int
    step_bytes: int


@dataclass(frozen=True)
class TraceEvent:
    """One operation in a trace.

    Attributes:
        time_ms: when the operation is issued.
        op: ``read`` / ``write`` / ``extend`` / ``truncate`` / ``delete``
            (a delete is immediately followed by a create of the same key
            with ``size_bytes`` as the replacement's initial size).
        key: the file the operation targets.
        size_bytes: request size.
        offset_bytes: for reads/writes; None means append/irrelevant.
    """

    time_ms: float
    op: str
    key: str
    size_bytes: int
    offset_bytes: int | None = None


@dataclass
class Trace:
    """An initial population plus a timestamped operation stream."""

    initial: list[TraceFile] = field(default_factory=list)
    events: list[TraceEvent] = field(default_factory=list)
    source: str = ""

    @property
    def duration_ms(self) -> float:
        """Timestamp of the final event (0 for an empty trace)."""
        return self.events[-1].time_ms if self.events else 0.0

    def operation_counts(self) -> dict[str, int]:
        """Events per operation type."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.op] = counts.get(event.op, 0) + 1
        return counts

    # -- persistence ------------------------------------------------------------

    def save(self, path: str | pathlib.Path) -> None:
        """Write the trace as JSON."""
        payload = {
            "format": TRACE_FORMAT,
            "source": self.source,
            "initial": [asdict(f) for f in self.initial],
            "events": [asdict(e) for e in self.events],
        }
        pathlib.Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Trace":
        """Read a trace written by :meth:`save`."""
        payload = json.loads(pathlib.Path(path).read_text())
        if payload.get("format") != TRACE_FORMAT:
            raise ConfigurationError(
                f"unsupported trace format {payload.get('format')!r}"
            )
        return cls(
            initial=[TraceFile(**f) for f in payload["initial"]],
            events=[TraceEvent(**e) for e in payload["events"]],
            source=payload.get("source", ""),
        )


def record_trace(
    profile: Profile,
    duration_ms: float,
    seed: int = 0,
) -> Trace:
    """Generate a trace from the stochastic workload model.

    Runs the §2.2 user-event logic *without any disk* — operations take
    zero service time, so the trace's timestamps reflect pure think-time
    arrival processes.  File lengths are tracked logically so offsets and
    truncations are consistent.  Deterministic per ``(profile, seed)``.
    """
    rng = RandomStream(seed, f"trace/{profile.name}")
    trace = Trace(source=f"{profile.name}/seed={seed}")
    lengths: dict[str, int] = {}
    cursors: dict[str, int] = {}
    keys_by_type: dict[str, list[str]] = {}

    for file_type in profile.types:
        init_rng = rng.fork(f"init/{file_type.name}")
        keys = []
        for index in range(file_type.n_files):
            key = f"{file_type.name}#{index}"
            size = sample_initial_size(init_rng, file_type)
            trace.initial.append(
                TraceFile(
                    key=key,
                    size_bytes=size,
                    allocation_hint_bytes=file_type.allocation_size_bytes,
                    step_bytes=file_type.allocation_size_bytes
                    or file_type.rw_size_bytes,
                )
            )
            lengths[key] = size
            cursors[key] = 0
            keys.append(key)
        keys_by_type[file_type.name] = keys

    # One virtual clock per user; merge-sort their events by time.
    arrivals: list[tuple[float, FileType, RandomStream]] = []
    for file_type in profile.types:
        stagger = file_type.n_users * file_type.hit_frequency_ms
        for user in range(file_type.n_users):
            user_rng = rng.fork(f"user/{file_type.name}/{user}")
            arrivals.append(
                (user_rng.uniform(0.0, max(stagger, 0.0)), file_type, user_rng)
            )

    import heapq

    heap = [(t, i) for i, (t, _, _) in enumerate(arrivals)]
    heapq.heapify(heap)
    while heap:
        time_ms, index = heapq.heappop(heap)
        if time_ms > duration_ms:
            continue
        _, file_type, user_rng = arrivals[index]
        keys = keys_by_type[file_type.name]
        if keys:
            key = user_rng.choice(keys)
            planned = plan_operation(
                user_rng, file_type, file_type.operation_weights
            )
            event = _apply_virtual(
                time_ms, key, planned.op, planned.size_bytes,
                file_type, user_rng, lengths, cursors,
            )
            trace.events.append(event)
        next_time = time_ms + user_rng.exponential(file_type.process_time_ms)
        arrivals[index] = (next_time, file_type, user_rng)
        heapq.heappush(heap, (next_time, index))
    return trace


def _apply_virtual(
    time_ms, key, op, size, file_type, rng, lengths, cursors
) -> TraceEvent:
    """Update the virtual file state and emit the trace event."""
    if op in (Operation.READ, Operation.WRITE):
        offset, cursors[key] = pick_offset(
            rng, file_type, lengths[key], cursors[key], size
        )
        if op is Operation.WRITE:
            lengths[key] = max(lengths[key], min(offset, lengths[key]) + size)
        return TraceEvent(time_ms, op.value, key, size, offset)
    if op is Operation.EXTEND:
        lengths[key] += size
        return TraceEvent(time_ms, op.value, key, size, None)
    if op is Operation.TRUNCATE:
        removed = min(file_type.truncate_size_bytes, lengths[key])
        lengths[key] -= removed
        cursors[key] = min(cursors[key], lengths[key])
        return TraceEvent(
            time_ms, op.value, key, max(1, file_type.truncate_size_bytes), None
        )
    # DELETE: replacement with a fresh initial size.
    lengths[key] = size
    cursors[key] = 0
    return TraceEvent(time_ms, op.value, key, size, None)


@dataclass
class ReplayResult:
    """Outcome of replaying a trace against one file system."""

    operations: int = 0
    disk_full_events: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    completed_ms: float = 0.0
    lag_ms_total: float = 0.0

    @property
    def mean_lag_ms(self) -> float:
        """Mean delay between an event's timestamp and its completion —
        how far the system falls behind the trace's demand."""
        return self.lag_ms_total / self.operations if self.operations else 0.0


def replay_trace(sim: Simulator, fs: FileSystem, trace: Trace) -> ReplayResult:
    """Replay a trace against a file system; returns after completion.

    The initial population is allocated instantly; events are issued at
    their recorded timestamps (never early; an op whose predecessor on the
    same file is still running waits for it — per-file ordering is
    preserved, cross-file operations overlap as they did in the source).
    """
    result = ReplayResult()
    files: dict[str, FsFile] = {}
    hints: dict[str, tuple[int, int]] = {}
    for entry in trace.initial:
        fs_file = fs.create(
            size_hint_bytes=entry.allocation_hint_bytes, tag=entry.key
        )
        try:
            fs.allocate_to(
                fs_file, entry.size_bytes, step_bytes=entry.step_bytes or None
            )
        except DiskFullError:
            result.disk_full_events += 1
        files[entry.key] = fs_file
        hints[entry.key] = (entry.allocation_hint_bytes, entry.step_bytes)

    busy_until: dict[str, float] = {}

    def worker(event: TraceEvent):
        delay = max(0.0, event.time_ms - sim.now)
        if delay:
            yield delay
        fs_file = files.get(event.key)
        if fs_file is None:
            return
        try:
            if event.op == "read":
                n = yield from fs.read(fs_file, event.offset_bytes or 0,
                                       event.size_bytes)
                result.bytes_read += n
            elif event.op == "write":
                n = yield from fs.write(fs_file, event.offset_bytes or 0,
                                        event.size_bytes)
                result.bytes_written += n
            elif event.op == "extend":
                n = yield from fs.extend(fs_file, event.size_bytes)
                result.bytes_written += n
            elif event.op == "truncate":
                fs.truncate(fs_file, event.size_bytes)
            elif event.op == "delete":
                fs.delete(fs_file)
                hint, step = hints[event.key]
                replacement = fs.create(size_hint_bytes=hint, tag=event.key)
                files[event.key] = replacement
                n = yield from fs.write(replacement, 0, event.size_bytes)
                result.bytes_written += n
            else:
                raise ConfigurationError(f"unknown trace op {event.op!r}")
        except DiskFullError:
            result.disk_full_events += 1
        result.operations += 1
        result.lag_ms_total += max(0.0, sim.now - event.time_ms)

    def controller():
        for event in trace.events:
            delay = max(0.0, event.time_ms - sim.now)
            if delay:
                yield delay
            # Per-file ordering: wait for this file's previous operation.
            previous = busy_until.get(event.key)
            if previous is not None and not previous.done:
                yield previous
            busy_until[event.key] = sim.process(worker(event))
        # Wait for every straggler.
        for process in list(busy_until.values()):
            if not process.done:
                yield process
        result.completed_ms = sim.now

    done = sim.process(controller())
    sim.run()
    if not done.done:  # pragma: no cover - controller always completes
        raise ConfigurationError("trace replay did not complete")
    return result
