"""The three simulated workloads of §2.2: TS, TP, and SC.

Every number the paper states is used verbatim; the handful it omits
(user counts, think times, request sizes for the TP relations, size
deviations) are filled with documented defaults chosen to produce the
paper's qualitative load (saturating concurrency for the large-file
workloads, a small-file-dominated request mix for TS).  DESIGN.md §5
records each substitution.

Profiles are parameterized by the disk capacity and a ``scale`` factor so
the same shapes run on a laptop-sized address space: TS file sizes are
*never* scaled (8K files on 1K blocks are the point of the workload) —
only their count shrinks with capacity; TP and SC scale their big files
with the disk, preserving the file-size-to-block-size contrasts that
drive the results.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import KIB, MIB, parse_size
from .filetype import AccessPattern, FileType


@dataclass(frozen=True)
class Profile:
    """A named set of file types driving one experiment."""

    name: str
    types: tuple[FileType, ...]

    def __post_init__(self) -> None:
        if not self.types:
            raise ConfigurationError("profile has no file types")
        names = [t.name for t in self.types]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate type names in {self.name}")

    @property
    def total_initial_bytes(self) -> int:
        """Expected bytes of the initial population."""
        return sum(t.expected_bytes for t in self.types)

    def type_named(self, name: str) -> FileType:
        """Look up a file type by name."""
        for file_type in self.types:
            if file_type.name == name:
                return file_type
        raise ConfigurationError(f"no type {name!r} in profile {self.name}")


# ---------------------------------------------------------------------------
# TS: time sharing / software development
# ---------------------------------------------------------------------------

#: Fraction of the fill target held in small files (assumption; the paper
#: gives the *request* split — two-thirds to small files — not the
#: capacity split).
TS_SMALL_CAPACITY_SHARE = 0.7


def time_sharing(
    capacity_bytes: int,
    fill_fraction: float = 0.91,
    scale: float = 1.0,
) -> Profile:
    """The TS workload: "an abundance of small files (mean size 8K) which
    are created, read, and deleted.  Two-thirds of all requests are to
    these files.  In addition there are larger files (mean size 96K)"
    with 60 % reads, 15 % writes, 15 % extends, 5 % deletes, 5 % truncates.

    ``scale`` shrinks file *counts* (sizes stay at 8K / 96K); counts are
    solved from the capacity and fill target.
    """
    if not 0 < fill_fraction <= 1:
        raise ConfigurationError(f"bad fill fraction {fill_fraction}")
    budget = capacity_bytes * fill_fraction * scale
    small_mean = 8 * KIB
    large_mean = 96 * KIB
    n_small = max(1, int(budget * TS_SMALL_CAPACITY_SHARE / small_mean))
    n_large = max(1, int(budget * (1 - TS_SMALL_CAPACITY_SHARE) / large_mean))
    small = FileType(
        name="ts-small",
        n_files=n_small,
        n_users=16,  # 2:1 users over the large type -> two-thirds of requests
        process_time_ms=15.0,
        hit_frequency_ms=30.0,
        rw_size_bytes=8 * KIB,
        rw_deviation_bytes=2 * KIB,
        allocation_size_bytes=2 * KIB,
        truncate_size_bytes=4 * KIB,
        initial_size_bytes=small_mean,
        initial_deviation_bytes=2 * KIB,
        read_ratio=70.0,
        write_ratio=15.0,
        extend_ratio=0.0,
        truncate_ratio=0.0,
        delete_ratio=15.0,  # "created, read, and deleted"
        access=AccessPattern.RANDOM,
    )
    large = FileType(
        name="ts-large",
        n_files=n_large,
        n_users=8,
        process_time_ms=15.0,
        hit_frequency_ms=30.0,
        rw_size_bytes=8 * KIB,
        rw_deviation_bytes=4 * KIB,
        allocation_size_bytes=8 * KIB,
        truncate_size_bytes=8 * KIB,
        initial_size_bytes=large_mean,
        initial_deviation_bytes=16 * KIB,
        read_ratio=60.0,
        write_ratio=15.0,
        extend_ratio=15.0,
        truncate_ratio=5.0,
        delete_ratio=5.0,
        access=AccessPattern.RANDOM,
    )
    return Profile(name="TS", types=(small, large))


# ---------------------------------------------------------------------------
# TP: transaction processing
# ---------------------------------------------------------------------------


def transaction_processing(scale: float = 1.0) -> Profile:
    """The TP workload: "10 large files (210M) representing data files or
    relations, 5 small application logs (5M) and one transaction log
    (10M)."  Relations: 60 % random reads / 30 % writes / 7 % extends /
    3 % truncates.  Logs: mostly extends (93 % / 94 %) with periodic
    reads (2 % / 5 %) and infrequent truncates (5 % / 1 %).

    Request sizes are unstated in the paper; relations use an 8K page
    (classic TP page I/O) and the logs append 4K records.
    """
    relation = FileType(
        name="tp-relation",
        n_files=10,
        n_users=24,
        process_time_ms=10.0,
        hit_frequency_ms=20.0,
        rw_size_bytes=8 * KIB,
        rw_deviation_bytes=2 * KIB,
        allocation_size_bytes=16 * MIB,
        truncate_size_bytes=8 * KIB,
        initial_size_bytes=210 * MIB,
        initial_deviation_bytes=8 * MIB,
        read_ratio=60.0,
        write_ratio=30.0,
        extend_ratio=7.0,
        truncate_ratio=3.0,
        delete_ratio=0.0,
        access=AccessPattern.RANDOM,
    ).scaled_sizes(scale)
    app_log = FileType(
        name="tp-applog",
        n_files=5,
        n_users=5,
        process_time_ms=20.0,
        hit_frequency_ms=40.0,
        rw_size_bytes=4 * KIB,
        rw_deviation_bytes=1 * KIB,
        allocation_size_bytes=512 * KIB,
        truncate_size_bytes=32 * KIB,
        initial_size_bytes=5 * MIB,
        initial_deviation_bytes=512 * KIB,
        read_ratio=2.0,
        write_ratio=0.0,
        extend_ratio=93.0,
        truncate_ratio=5.0,
        delete_ratio=0.0,
        access=AccessPattern.SEQUENTIAL,
    ).scaled_sizes(scale)
    sys_log = FileType(
        name="tp-syslog",
        n_files=1,
        n_users=4,
        process_time_ms=15.0,
        hit_frequency_ms=30.0,
        rw_size_bytes=4 * KIB,
        rw_deviation_bytes=1 * KIB,
        allocation_size_bytes=512 * KIB,
        truncate_size_bytes=64 * KIB,
        initial_size_bytes=10 * MIB,
        initial_deviation_bytes=1 * MIB,
        # "The system log receives a slightly higher read percentage to
        # simulate periodic transaction aborts."
        read_ratio=5.0,
        write_ratio=0.0,
        extend_ratio=94.0,
        truncate_ratio=1.0,
        delete_ratio=0.0,
        access=AccessPattern.SEQUENTIAL,
    ).scaled_sizes(scale)
    return Profile(name="TP", types=(relation, app_log, sys_log))


# ---------------------------------------------------------------------------
# SC: supercomputer / complex query processing
# ---------------------------------------------------------------------------


def supercomputer(scale: float = 1.0) -> Profile:
    """The SC workload: "1 large file (500M), 15 medium sized files (100M)
    and 10 small files (10M).  The large and medium files are all read and
    written in large contiguous bursts (32K or 512K) with a predominance
    of reads (60% reads, 30% writes, 8% extends, and 2% truncates).  The
    small files are also read and written in 32K bursts, but are
    periodically deleted and recreated (60% reads, 30% writes, 5% extends,
    5% deletes)."
    """
    large = FileType(
        name="sc-large",
        n_files=1,
        n_users=3,
        process_time_ms=25.0,
        hit_frequency_ms=50.0,
        rw_size_bytes=512 * KIB,
        rw_deviation_bytes=64 * KIB,
        allocation_size_bytes=16 * MIB,
        truncate_size_bytes=512 * KIB,
        initial_size_bytes=500 * MIB,
        initial_deviation_bytes=16 * MIB,
        read_ratio=60.0,
        write_ratio=30.0,
        extend_ratio=8.0,
        truncate_ratio=2.0,
        delete_ratio=0.0,
        access=AccessPattern.SEQUENTIAL,
    ).scaled_sizes(scale)
    medium = FileType(
        name="sc-medium",
        n_files=15,
        n_users=6,
        process_time_ms=25.0,
        hit_frequency_ms=50.0,
        rw_size_bytes=512 * KIB,
        rw_deviation_bytes=64 * KIB,
        allocation_size_bytes=1 * MIB,
        truncate_size_bytes=512 * KIB,
        initial_size_bytes=100 * MIB,
        initial_deviation_bytes=8 * MIB,
        read_ratio=60.0,
        write_ratio=30.0,
        extend_ratio=8.0,
        truncate_ratio=2.0,
        delete_ratio=0.0,
        access=AccessPattern.SEQUENTIAL,
    ).scaled_sizes(scale)
    small = FileType(
        name="sc-small",
        n_files=10,
        n_users=3,
        process_time_ms=20.0,
        hit_frequency_ms=40.0,
        rw_size_bytes=32 * KIB,
        rw_deviation_bytes=8 * KIB,
        allocation_size_bytes=512 * KIB,
        truncate_size_bytes=64 * KIB,
        initial_size_bytes=10 * MIB,
        initial_deviation_bytes=1 * MIB,
        read_ratio=60.0,
        write_ratio=30.0,
        extend_ratio=5.0,
        truncate_ratio=0.0,
        delete_ratio=5.0,
        access=AccessPattern.SEQUENTIAL,
    ).scaled_sizes(scale)
    return Profile(name="SC", types=(large, medium, small))


# ---------------------------------------------------------------------------
# A miniature profile for unit tests (fast, but every op type appears).
# ---------------------------------------------------------------------------


def mini(
    n_files: int = 8,
    initial_size: str | int = "16K",
) -> Profile:
    """A small mixed workload for tests and examples."""
    size = parse_size(initial_size)
    mixed = FileType(
        name="mini",
        n_files=n_files,
        n_users=4,
        process_time_ms=5.0,
        hit_frequency_ms=10.0,
        rw_size_bytes=max(1024, size // 4),
        rw_deviation_bytes=max(256, size // 16),
        allocation_size_bytes=max(1024, size // 4),
        truncate_size_bytes=max(1024, size // 4),
        initial_size_bytes=size,
        initial_deviation_bytes=size // 4,
        read_ratio=50.0,
        write_ratio=20.0,
        extend_ratio=15.0,
        truncate_ratio=7.5,
        delete_ratio=7.5,
        access=AccessPattern.RANDOM,
    )
    return Profile(name="MINI", types=(mixed,))


#: Registry used by experiment drivers and the CLI examples.
def profile_by_name(
    name: str, capacity_bytes: int, scale: float = 1.0
) -> Profile:
    """Build a profile by its paper name ("TS", "TP", "SC")."""
    key = name.strip().upper()
    if key == "TS":
        return time_sharing(capacity_bytes, scale=scale)
    if key == "TP":
        return transaction_processing(scale=scale)
    if key == "SC":
        return supercomputer(scale=scale)
    if key == "MINI":
        return mini()
    raise ConfigurationError(f"unknown profile {name!r}")
