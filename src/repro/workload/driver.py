"""Workload execution: user event processes and the allocation test loop.

Two execution paths share the same stochastic operation stream
(:mod:`repro.workload.ops`):

* :class:`WorkloadDriver` — timed: one simulation process per user per
  file type, staggered per the paper's initialization ("each is assigned
  a start time uniformly distributed in the range [0, number of users *
  hit frequency]"), issuing operations with exponentially distributed
  think time and applying the disk-utilization governor ("any extend
  operation occurring when the disk utilization is greater than M is
  converted into a truncate operation").
* :func:`run_allocation_until_full` — untimed: "performing only the
  extend, truncate, delete, and create operations in the proportion as
  expressed by the file type parameters" until the first allocation
  failure, at which point fragmentation is measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..alloc.metrics import FragmentationReport
from ..errors import DataUnavailableError, DiskFullError, SimulationError
from ..fs.filesystem import FileSystem, FsFile
from ..obs.tracer import TID_WORKLOAD
from ..obs.telemetry import emit, progress_frame, telemetry_enabled
from ..sim.engine import Simulator
from ..sim.rng import PreparedWeights, RandomStream
from ..sim.stats import Counter, Tally
from .filetype import FileType, Operation
from .ops import (
    pick_offset,
    plan_operation_raw,
    prepare_weights,
    sample_initial_size,
)
from .profiles import Profile

#: The paper's disk-utilization bounds for the performance tests.
DEFAULT_LOWER_BOUND = 0.90
DEFAULT_UPPER_BOUND = 0.95


def _populate_step(file_type: FileType) -> int | None:
    """Allocation-request grain for building a file of this type."""
    step = file_type.allocation_size_bytes or file_type.rw_size_bytes
    return step or None


class WorkloadDriver:
    """Timed workload execution against a file system.

    Attributes:
        mode: ``"application"`` (the §2.2 mixes) or ``"sequential"``
            (whole-file reads/writes only); may be switched between
            phases by the experiment controller.
    """

    def __init__(
        self,
        sim: Simulator,
        fs: FileSystem,
        profile: Profile,
        seed: int = 0,
        lower_bound: float = DEFAULT_LOWER_BOUND,
        upper_bound: float = DEFAULT_UPPER_BOUND,
    ) -> None:
        if not 0 < lower_bound <= upper_bound <= 1:
            raise SimulationError(
                f"bad utilization bounds [{lower_bound}, {upper_bound}]"
            )
        self.sim = sim
        self.fs = fs
        self.profile = profile
        self.rng = RandomStream(seed, f"driver/{profile.name}")
        self.lower_bound = lower_bound
        self.upper_bound = upper_bound
        self.mode = "application"
        self.files: dict[str, list[FsFile]] = {}
        self.op_counts = Counter()
        self.op_latency: dict[str, Tally] = {}
        self.disk_full_events = 0
        self.governor_conversions = 0
        self.io_failures = 0
        # Per-(type, mode) cumulative operation weights, built once: the
        # per-op weighted draw then stops rebuilding and revalidating its
        # weight lists (same single RNG draw, same selection).
        self._prepared_weights = {
            (file_type.name, mode): prepare_weights(weights)
            for file_type in profile.types
            for mode, weights in (
                ("application", file_type.operation_weights),
                ("sequential", file_type.sequential_weights),
            )
        }

    # -- setup ------------------------------------------------------------------

    def populate(self) -> None:
        """Create the initial file population (instant, untimed).

        Stops filling gracefully if the disk runs out mid-population — the
        allocation test *wants* to begin near-full.
        """
        for file_type in self.profile.types:
            init_rng = self.rng.fork(f"init/{file_type.name}")
            population: list[FsFile] = []
            try:
                for _ in range(file_type.n_files):
                    population.append(self._create_file(file_type, init_rng))
            except DiskFullError:
                self.disk_full_events += 1
            self.files[file_type.name] = population

    def start_users(self) -> None:
        """Spawn every user process with its staggered start time."""
        for file_type in self.profile.types:
            stagger_range = file_type.n_users * file_type.hit_frequency_ms
            for user_index in range(file_type.n_users):
                user_rng = self.rng.fork(f"user/{file_type.name}/{user_index}")
                delay = user_rng.uniform(0.0, max(stagger_range, 0.0))
                self.sim.process(
                    self._user_loop(file_type, user_rng, delay),
                    name=f"{file_type.name}#{user_index}",
                )

    # -- user processes -----------------------------------------------------------

    def _user_loop(self, file_type: FileType, rng: RandomStream, delay: float):
        yield delay
        while True:
            yield from self._one_operation(file_type, rng)
            yield rng.exponential(file_type.process_time_ms)

    def _mode_weights(self, file_type: FileType) -> dict[Operation, float]:
        if self.mode == "sequential":
            return file_type.sequential_weights
        return file_type.operation_weights

    def _one_operation(self, file_type: FileType, rng: RandomStream):
        population = self.files.get(file_type.name)
        if not population:
            return
        # Index-keyed pick (same draw as rng.choice of the population):
        # keeping the position makes the delete path below a positional
        # pop instead of an equality scan over the whole population.
        index = rng.choice_index(len(population))
        fs_file = population[index]
        op, size = plan_operation_raw(
            rng, file_type, self._prepared_weights[(file_type.name, self.mode)]
        )

        # The governor: extends above the upper bound become truncates.
        if op is Operation.EXTEND and self.fs.utilization > self.upper_bound:
            op = Operation.TRUNCATE
            size = max(1, file_type.truncate_size_bytes)
            self.governor_conversions += 1

        sim = self.sim
        started = sim.now
        tracer = sim.tracer
        span = None
        if tracer is not None:
            # Operations are roots of the span tree: user processes run
            # concurrently, so each operation anchors its own descent
            # (parent 0) rather than inheriting ambient context.
            span = tracer.begin(
                "op." + op.value,
                "workload",
                0,
                TID_WORKLOAD,
                {"type": file_type.name, "bytes": size},
            )
            tracer.context = span.span_id
        try:
            # Reads and writes are inlined (not delegated to _do_read /
            # _do_write) to keep one generator frame off the per-op path;
            # the sequential mode check is the same either way.
            if op is Operation.READ:
                if self.mode == "sequential":
                    yield from self.fs.read_whole(fs_file)
                else:
                    offset, new_cursor = pick_offset(
                        rng, file_type, fs_file.length_bytes,
                        fs_file.cursor_bytes, size,
                    )
                    fs_file.cursor_bytes = new_cursor
                    yield from self.fs.read(fs_file, offset, size)
            elif op is Operation.WRITE:
                if self.mode == "sequential":
                    yield from self.fs.write_whole(fs_file)
                else:
                    offset, new_cursor = pick_offset(
                        rng, file_type, fs_file.length_bytes,
                        fs_file.cursor_bytes, size,
                    )
                    fs_file.cursor_bytes = new_cursor
                    yield from self.fs.write(fs_file, offset, size)
            elif op is Operation.EXTEND:
                yield from self.fs.extend(fs_file, size)
            elif op is Operation.TRUNCATE:
                self.fs.truncate(fs_file, size)
            elif op is Operation.DELETE:
                yield from self._do_delete(
                    file_type, fs_file, population, index, size
                )
        except DiskFullError:
            # "a disk full condition is logged, and the current event is
            # rescheduled" — the user simply thinks again and retries.
            self.disk_full_events += 1
        except DataUnavailableError:
            # Injected fault exhausted the organization's redundancy for
            # this span (e.g. a failed drive in a plain striped array).
            # The application sees an I/O error; the user retries later.
            self.io_failures += 1
        finally:
            if span is not None:
                tracer.end(span)
                tracer.context = 0
        op_value = op.value
        elapsed = sim.now - started
        self.op_counts.incr(op_value)
        tally = self.op_latency.get(op_value)
        if tally is None:  # first op of this kind; setdefault would build
            tally = self.op_latency[op_value] = Tally()  # a Tally per call
        tally.add(elapsed)
        metrics = sim.metrics
        if metrics is not None:
            metrics.observe("workload.op_ms." + op_value, elapsed)

    def _do_delete(self, file_type, fs_file, population, index: int, new_size: int):
        """Delete and recreate: churn that keeps the population stable.

        ``index`` is ``fs_file``'s position in ``population`` (from the
        pick above): a positional pop removes the exact object chosen in
        O(shift) with no per-element comparisons, where ``list.remove``
        scanned the population calling ``FsFile.__eq__`` on every entry.
        The surviving files keep their relative order, so subsequent
        index draws land on the same files they always did.
        """
        popped = population.pop(index)
        assert popped is fs_file
        self.fs.delete(fs_file)
        replacement = self.fs.create(
            size_hint_bytes=file_type.allocation_size_bytes, tag=file_type.name
        )
        population.append(replacement)
        # Writing the new file's contents is real, timed I/O.
        yield from self.fs.write(replacement, 0, new_size)

    # -- shared helpers ------------------------------------------------------------

    def _create_file(self, file_type: FileType, rng: RandomStream) -> FsFile:
        """Create + instantly fill one file (initialization-phase path).

        The fill proceeds in workload-sized allocation requests ("requests
        are made until the allocation length ... is greater than or equal
        to this size"), which is what gives the buddy policy its doubling
        chain.
        """
        size = sample_initial_size(rng, file_type)
        fs_file = self.fs.create(
            size_hint_bytes=file_type.allocation_size_bytes, tag=file_type.name
        )
        self.fs.allocate_to(fs_file, size, step_bytes=_populate_step(file_type))
        return fs_file

    def live_file_count(self) -> int:
        """Total live files across all types."""
        return sum(len(v) for v in self.files.values())


# ---------------------------------------------------------------------------
# The untimed allocation test
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AllocationTestResult:
    """Outcome of one allocation test (feeds Figures 1 & 4 and Table 3/4).

    Attributes:
        filled: True when the test ended with an allocation failure (the
            paper's stopping rule).  False when the churn reached a steady
            state below full within the operation budget — the
            fragmentation snapshot is then of that steady state.
    """

    fragmentation: FragmentationReport
    operations: int
    average_extents_per_file: float
    file_count: int
    filled: bool = True


def run_allocation_until_full(
    fs: FileSystem,
    profile: Profile,
    seed: int = 0,
    max_operations: int = 5_000_000,
    auditor=None,
) -> AllocationTestResult:
    """Churn allocation operations until the first failure; measure.

    The file system must be freshly created.  The initial population is
    built first; then extend / truncate / delete(+create) operations are
    drawn per type (types weighted by their event rates) until a request
    cannot be satisfied: "As soon as the first allocation request fails,
    the external and internal fragmentation are computed."

    ``auditor`` (an :class:`~repro.audit.InvariantAuditor`) is notified
    after every churn operation; the test never enters the event loop,
    so operations stand in for executed events on the sweep cadence.
    """
    rng = RandomStream(seed, f"alloctest/{profile.name}")
    files: dict[str, list[FsFile]] = {}
    failed = False

    # Initialization phase: create the population.
    for file_type in profile.types:
        init_rng = rng.fork(f"init/{file_type.name}")
        population: list[FsFile] = []
        files[file_type.name] = population
        try:
            for _ in range(file_type.n_files):
                size = sample_initial_size(init_rng, file_type)
                fs_file = fs.create(
                    size_hint_bytes=file_type.allocation_size_bytes,
                    tag=file_type.name,
                )
                population.append(fs_file)
                fs.allocate_to(fs_file, size, step_bytes=_populate_step(file_type))
        except DiskFullError:
            failed = True
            break

    # Churn phase: alloc-affecting operations only.
    churn_types = [
        t for t in profile.types if sum(t.allocation_weights.values()) > 0
    ]
    operations = 0
    if not failed and churn_types:
        type_rates = [t.event_rate for t in churn_types]
        # Built once, drawn millions of times: prepared cumulative
        # weights for the type mix and each type's allocation ratios
        # (identical draws and selections to the unprepared calls).
        prepared_types = PreparedWeights(churn_types, type_rates)
        prepared_ops = {
            t.name: prepare_weights(t.allocation_weights) for t in churn_types
        }
        op_rng = rng.fork("churn")
        while operations < max_operations:
            file_type = op_rng.weighted_choice_prepared(prepared_types)
            population = files[file_type.name]
            if not population:
                continue
            index = op_rng.choice_index(len(population))
            fs_file = population[index]
            planned_op, planned_size = plan_operation_raw(
                op_rng, file_type, prepared_ops[file_type.name]
            )
            operations += 1
            if not operations & 0xFFFF and telemetry_enabled():
                # Progress for the live sweep display; the modulo guard
                # keeps the untimed churn loop's cost unchanged when no
                # emitter is installed.
                emit(
                    progress_frame(
                        "allocation",
                        0.0,
                        operations=operations,
                        utilization=round(fs.utilization, 4),
                    )
                )
            try:
                if planned_op is Operation.EXTEND:
                    fs.allocate_to(
                        fs_file, fs_file.length_bytes + planned_size
                    )
                elif planned_op is Operation.TRUNCATE:
                    fs.truncate(fs_file, max(1, file_type.truncate_size_bytes))
                elif planned_op is Operation.DELETE:
                    # Positional pop of the exact object picked above
                    # (identity, not first-equal); order preserved.
                    population.pop(index)
                    fs.delete(fs_file)
                    replacement = fs.create(
                        size_hint_bytes=file_type.allocation_size_bytes,
                        tag=file_type.name,
                    )
                    population.append(replacement)
                    fs.allocate_to(
                        replacement,
                        planned_size,
                        step_bytes=_populate_step(file_type),
                    )
            except DiskFullError:
                failed = True
                break
            if auditor is not None:
                auditor.after_event(fs.sim)

    report = fs.fragmentation()
    allocator = fs.allocator
    if allocator.files:
        average_extents = sum(
            h.extent_count for h in allocator.files.values()
        ) / len(allocator.files)
    else:
        average_extents = 0.0
    return AllocationTestResult(
        fragmentation=report,
        operations=operations,
        average_extents_per_file=average_extents,
        file_count=len(allocator.files),
        filled=failed,
    )
