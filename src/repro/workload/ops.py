"""Operation selection and size sampling.

"The simulation runs by selecting the first event from the heap.  Since
each event corresponds to a file and therefore a file type, an operation
may be selected based on the read, write, extend, and delete ratios.  Then
the rw size, rw deviation, and truncate size are used to generate a size
parameter."

These helpers are pure (given a :class:`~repro.sim.rng.RandomStream`), so
the timed performance tests and the untimed allocation test share exactly
the same stochastic op stream logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.rng import RandomStream
from .filetype import AccessPattern, FileType, Operation


@dataclass(frozen=True)
class PlannedOp:
    """A sampled operation before it is applied to a concrete file."""

    op: Operation
    size_bytes: int


def pick_operation(
    rng: RandomStream, weights: dict[Operation, float]
) -> Operation:
    """Draw one operation according to the ratio weights."""
    items = list(weights.keys())
    return rng.weighted_choice(items, [weights[op] for op in items])


def sample_rw_size(rng: RandomStream, file_type: FileType) -> int:
    """Request size: normal(rw size, rw deviation), at least one byte."""
    size = rng.normal(
        float(file_type.rw_size_bytes),
        float(file_type.rw_deviation_bytes),
        minimum=1.0,
    )
    return max(1, int(round(size)))


def sample_initial_size(rng: RandomStream, file_type: FileType) -> int:
    """Initial file size: "selected from a uniform distribution with mean
    equal to initial size and deviation of initial deviation"."""
    size = rng.uniform_around(
        float(file_type.initial_size_bytes),
        float(file_type.initial_deviation_bytes),
    )
    return max(1, int(round(size)))


def plan_operation(
    rng: RandomStream,
    file_type: FileType,
    weights: dict[Operation, float],
) -> PlannedOp:
    """Sample an operation and its size parameter for one event."""
    op = pick_operation(rng, weights)
    if op in (Operation.READ, Operation.WRITE, Operation.EXTEND):
        size = sample_rw_size(rng, file_type)
    elif op is Operation.TRUNCATE:
        size = max(1, file_type.truncate_size_bytes)
    else:  # DELETE: size is the replacement file's initial size
        size = sample_initial_size(rng, file_type)
    return PlannedOp(op, size)


def pick_offset(
    rng: RandomStream,
    file_type: FileType,
    length_bytes: int,
    cursor_bytes: int,
    size_bytes: int,
) -> tuple[int, int]:
    """Choose a read/write offset; returns ``(offset, new cursor)``.

    Random types land uniformly (the whole request stays inside the file
    when it fits); sequential types march a per-file cursor forward in
    bursts, wrapping at end of file.
    """
    if length_bytes <= 0:
        return 0, 0
    if file_type.access is AccessPattern.SEQUENTIAL:
        offset = cursor_bytes if cursor_bytes < length_bytes else 0
        new_cursor = offset + size_bytes
        if new_cursor >= length_bytes:
            new_cursor = 0
        return offset, new_cursor
    high = max(0, length_bytes - size_bytes)
    return rng.uniform_int(0, high), cursor_bytes
