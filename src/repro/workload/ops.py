"""Operation selection and size sampling.

"The simulation runs by selecting the first event from the heap.  Since
each event corresponds to a file and therefore a file type, an operation
may be selected based on the read, write, extend, and delete ratios.  Then
the rw size, rw deviation, and truncate size are used to generate a size
parameter."

These helpers are pure (given a :class:`~repro.sim.rng.RandomStream`), so
the timed performance tests and the untimed allocation test share exactly
the same stochastic op stream logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.rng import PreparedWeights, RandomStream
from .filetype import AccessPattern, FileType, Operation


@dataclass(frozen=True)
class PlannedOp:
    """A sampled operation before it is applied to a concrete file."""

    op: Operation
    size_bytes: int


def prepare_weights(weights: dict[Operation, float]) -> PreparedWeights:
    """Build reusable cumulative weights for an operation-ratio dict.

    The item order is ``list(weights.keys())`` — the order
    :func:`pick_operation` uses — so a prepared draw selects the same
    operation an unprepared one would at the same generator state.
    """
    items = list(weights.keys())
    return PreparedWeights(items, [weights[op] for op in items])


def pick_operation(
    rng: RandomStream, weights: dict[Operation, float]
) -> Operation:
    """Draw one operation according to the ratio weights."""
    items = list(weights.keys())
    return rng.weighted_choice(items, [weights[op] for op in items])


def sample_rw_size(rng: RandomStream, file_type: FileType) -> int:
    """Request size: normal(rw size, rw deviation), at least one byte."""
    size = rng.normal(
        float(file_type.rw_size_bytes),
        float(file_type.rw_deviation_bytes),
        minimum=1.0,
    )
    return max(1, int(round(size)))


def sample_initial_size(rng: RandomStream, file_type: FileType) -> int:
    """Initial file size: "selected from a uniform distribution with mean
    equal to initial size and deviation of initial deviation"."""
    size = rng.uniform_around(
        float(file_type.initial_size_bytes),
        float(file_type.initial_deviation_bytes),
    )
    return max(1, int(round(size)))


def plan_operation(
    rng: RandomStream,
    file_type: FileType,
    weights: dict[Operation, float] | PreparedWeights,
) -> PlannedOp:
    """Sample an operation and its size parameter for one event.

    ``weights`` is an operation-ratio dict or a :class:`PreparedWeights`
    built from one by :func:`prepare_weights`; both consume the same
    single draw and select the same operation.
    """
    op, size = plan_operation_raw(rng, file_type, weights)
    return PlannedOp(op, size)


def plan_operation_raw(
    rng: RandomStream,
    file_type: FileType,
    weights: dict[Operation, float] | PreparedWeights,
) -> tuple[Operation, int]:
    """:func:`plan_operation` without the :class:`PlannedOp` wrapper.

    The drivers call this once per simulated operation; returning the
    plain ``(op, size)`` pair skips a dataclass construction the hot
    loop would immediately unpack.
    """
    if type(weights) is PreparedWeights:
        op = rng.weighted_choice_prepared(weights)
    else:
        op = pick_operation(rng, weights)
    if op is Operation.READ or op is Operation.WRITE or op is Operation.EXTEND:
        return op, sample_rw_size(rng, file_type)
    if op is Operation.TRUNCATE:
        return op, max(1, file_type.truncate_size_bytes)
    # DELETE: size is the replacement file's initial size
    return op, sample_initial_size(rng, file_type)


def pick_offset(
    rng: RandomStream,
    file_type: FileType,
    length_bytes: int,
    cursor_bytes: int,
    size_bytes: int,
) -> tuple[int, int]:
    """Choose a read/write offset; returns ``(offset, new cursor)``.

    Random types land uniformly (the whole request stays inside the file
    when it fits); sequential types march a per-file cursor forward in
    bursts, wrapping at end of file.
    """
    if length_bytes <= 0:
        return 0, 0
    if file_type.access is AccessPattern.SEQUENTIAL:
        offset = cursor_bytes if cursor_bytes < length_bytes else 0
        new_cursor = offset + size_bytes
        if new_cursor >= length_bytes:
            new_cursor = 0
        return offset, new_cursor
    high = max(0, length_bytes - size_bytes)
    return rng.uniform_int(0, high), cursor_bytes
