"""Small statistics helpers used across the simulator.

A :class:`Tally` accumulates scalar observations with Welford's online
algorithm (numerically stable mean/variance without storing samples), and a
:class:`Counter` tracks named event counts.  Experiment drivers use these
for per-operation latency and per-policy bookkeeping such as the
extents-per-file numbers behind Table 4.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import defaultdict
from dataclasses import dataclass, field


class Tally:
    """Online mean / variance / min / max of a stream of observations."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Record one observation."""
        count = self.count + 1
        self.count = count
        delta = value - self._mean
        mean = self._mean + delta / count
        self._mean = mean
        self._m2 += delta * (value - mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 before any observation)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (0.0 with fewer than two observations)."""
        return self._m2 / self.count if self.count >= 2 else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return self._mean * self.count

    def merge(self, other: "Tally") -> None:
        """Fold another tally's observations into this one (Chan's method)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / combined
        self._mean += delta * other.count / combined
        self.count = combined
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Tally n={self.count} mean={self.mean:.3f}>"


@dataclass
class Counter:
    """Named integer counters with a defaultdict backing store."""

    counts: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def incr(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount``."""
        self.counts[name] += amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        """Snapshot of all counters as a plain dict."""
        return dict(self.counts)


class FixedHistogram:
    """Histogram over a fixed, ascending list of bucket edges.

    Bucket ``i`` counts observations ``v`` with
    ``edges[i-1] < v <= edges[i]`` (the first bucket is
    ``v <= edges[0]``); one extra overflow bucket counts everything above
    ``edges[-1]``.  A :class:`Tally` rides along for count / sum / mean /
    min / max, so the latency histograms the observability layer exports
    need no second accumulator.  Unlike :func:`histogram`, the edges are
    declared up front, so two runs (or two worker processes) produce
    directly comparable — and mergeable — buckets.
    """

    __slots__ = ("edges", "counts", "tally")

    def __init__(self, edges: list[float]) -> None:
        if not edges:
            raise ValueError("FixedHistogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"bucket edges must be strictly ascending: {edges}")
        self.edges = list(edges)
        self.counts = [0] * (len(edges) + 1)
        self.tally = Tally()

    def add(self, value: float) -> None:
        """Record one observation in its bucket."""
        self.counts[bisect_left(self.edges, value)] += 1
        self.tally.add(value)

    @property
    def count(self) -> int:
        """Total observations recorded."""
        return self.tally.count

    def merge(self, other: "FixedHistogram") -> None:
        """Fold another histogram with identical edges into this one."""
        if other.edges != self.edges:
            raise ValueError("cannot merge histograms with different edges")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.tally.merge(other.tally)

    def as_dict(self) -> dict:
        """A picklable/JSON-safe snapshot (edges, counts, summary stats)."""
        tally = self.tally
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": tally.count,
            "sum": tally.total,
            "mean": tally.mean,
            "min": tally.minimum if tally.count else None,
            "max": tally.maximum if tally.count else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FixedHistogram n={self.count} edges={len(self.edges)}>"


def histogram(values: list[float], n_bins: int) -> list[tuple[float, float, int]]:
    """Equal-width histogram: list of ``(low, high, count)`` bins.

    Used by the report layer for latency distribution summaries.  Returns
    an empty list for empty input; a single degenerate bin when all values
    are equal.
    """
    if not values:
        return []
    low, high = min(values), max(values)
    if low == high:
        return [(low, high, len(values))]
    width = (high - low) / n_bins
    bins = [0] * n_bins
    for value in values:
        index = min(int((value - low) / width), n_bins - 1)
        bins[index] += 1
    return [
        (low + i * width, low + (i + 1) * width, count)
        for i, count in enumerate(bins)
    ]
