"""Event scheduling structures for the discrete-event engine.

The paper's simulator maintains scheduled events "in a heap, sorted by their
scheduled time"; this module is that heap.  Events are ordered by
``(time, sequence)`` so that ties break in FIFO order, which keeps runs
deterministic under a fixed seed.

Hot-path design (every simulated event passes through here, so the layout
matters):

* The heap stores ``(time, seq, event)`` tuples, not :class:`Event`
  objects.  ``seq`` is unique, so heap comparisons always resolve on the
  first two tuple slots in C — ``Event.__lt__`` is kept for API
  compatibility but never called by the heap.
* Zero-delay events (waitable resumptions, already-done yields) go through
  a FIFO *immediate queue* instead of the heap.  Every immediate event
  carries the current simulated time and a globally increasing ``seq``, so
  merging the queue front with the heap head by ``(time, seq)`` reproduces
  exactly the order a single heap would produce — see
  ``docs/MODEL.md`` ("Engine hot path and determinism guarantees").
* Cancelled events are discarded lazily: entries at the front are dropped
  during ``pop``/``peek``, and when mid-heap garbage passes a threshold the
  heap is compacted in one O(n) pass (``compactions`` counts these).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable

from ..errors import SimulationError

#: Compaction triggers once at least this many cancelled entries are
#: buried in the heap *and* they make up half of it.  Small enough that
#: cancel-heavy workloads stay O(log live), large enough that compaction
#: cost amortizes to O(1) per cancellation.
COMPACTION_MIN_GARBAGE = 64


class Event:
    """A scheduled callback.

    Events are created through :meth:`repro.sim.engine.Simulator.schedule`
    and compare by scheduled time (ties broken by creation order).  A
    cancelled event stays in its queue but is skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "immediate")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.immediate = False

    def cancel(self) -> None:
        """Mark the event so the engine discards it instead of firing it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.3f} #{self.seq} {name}{state}>"


class EventHeap:
    """Min-heap of events keyed by ``(time, seq)`` plus an immediate FIFO.

    ``push`` inserts a timer event into the heap; ``push_immediate``
    appends a zero-delay event (at the caller's *current* time) to the
    FIFO.  ``pop_next`` merges the two by ``(time, seq)``, which is the
    engine's single fused "what fires next" operation.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._immediate: deque[Event] = deque()
        self._seq = 0
        self._live = 0
        self._garbage = 0  # cancelled entries still buried in _heap
        self.compactions = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self, time: float, callback: Callable[..., Any], args: tuple[Any, ...] = ()
    ) -> Event:
        """Insert a new timer event and return it (for potential cancellation)."""
        seq = self._seq
        # Allocate without the __init__ frame: this and push_immediate are
        # the two object constructions on the per-event hot path.
        event = Event.__new__(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.immediate = False
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def push_immediate(
        self, now: float, callback: Callable[..., Any], args: tuple[Any, ...] = ()
    ) -> Event:
        """Append a zero-delay event at time ``now`` to the immediate FIFO.

        ``now`` must be the engine's current clock: the determinism of the
        merge in :meth:`pop_next` relies on every queued immediate event
        sharing the current time and carrying a larger ``seq`` than any
        event created before it.
        """
        seq = self._seq
        event = Event.__new__(Event)
        event.time = now
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.immediate = True
        self._seq = seq + 1
        self._live += 1
        self._immediate.append(event)
        return event

    # -- retrieval ----------------------------------------------------------

    def pop_next(self, until: float | None = None) -> Event | None:
        """Remove and return the next live event in ``(time, seq)`` order.

        Returns None when no live event remains, or when the next one is
        scheduled strictly after ``until`` (that event stays queued).  This
        fuses the engine's former ``peek_time()`` + ``pop()`` pair into a
        single pass over the queue heads.
        """
        heap = self._heap
        immediate = self._immediate
        while immediate and immediate[0].cancelled:
            immediate.popleft()
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._garbage -= 1
        if immediate:
            front = immediate[0]
            if heap:
                head_time, head_seq, head_event = heap[0]
                if head_time < front.time or (
                    head_time == front.time and head_seq < front.seq
                ):
                    if until is not None and head_time > until:
                        return None
                    heapq.heappop(heap)
                    self._live -= 1
                    return head_event
            if until is not None and front.time > until:
                return None
            immediate.popleft()
            self._live -= 1
            return front
        if not heap:
            return None
        if until is not None and heap[0][0] > until:
            return None
        event = heapq.heappop(heap)[2]
        self._live -= 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            SimulationError: when no live events remain.
        """
        event = self.pop_next()
        if event is None:
            raise SimulationError("pop from empty event heap")
        return event

    def peek_time(self) -> float | None:
        """Return the time of the next live event, or None when empty."""
        heap = self._heap
        immediate = self._immediate
        while immediate and immediate[0].cancelled:
            immediate.popleft()
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._garbage -= 1
        if immediate:
            front = immediate[0]
            if heap and heap[0][0] < front.time:
                return heap[0][0]
            return front.time
        if not heap:
            return None
        return heap[0][0]

    def live_events(self) -> list[Event]:
        """Snapshot every live (non-cancelled) event in firing order.

        Audit/fingerprint hook: returns a fresh list sorted by
        ``(time, seq)`` regardless of which internal queue holds each
        event, so two engines in identical logical state render the
        same snapshot.  O(n log n); never called from the run loop.
        """
        events = [entry[2] for entry in self._heap if not entry[2].cancelled]
        events.extend(e for e in self._immediate if not e.cancelled)
        events.sort(key=lambda e: (e.time, e.seq))
        return events

    # -- cancellation bookkeeping ------------------------------------------

    def note_cancelled(self, event: Event | None = None) -> None:
        """Record that one previously pushed event was cancelled.

        The engine calls this when it cancels an event so that ``len`` and
        emptiness checks stay accurate without an O(n) heap scan.  Passing
        the event lets the heap attribute the garbage correctly (immediate
        events are purged FIFO and never accumulate mid-heap); calling with
        no argument conservatively counts it as heap garbage.
        """
        if self._live <= 0:
            raise SimulationError("cancellation bookkeeping underflow")
        self._live -= 1
        if event is None or not event.immediate:
            self._garbage += 1
            if (
                self._garbage >= COMPACTION_MIN_GARBAGE
                and self._garbage * 2 >= len(self._heap)
            ):
                self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry from the heap in one O(n) pass.

        Mutates the heap list in place (slice assignment) because the
        engine's run loop holds a direct reference to it.
        """
        self._heap[:] = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._garbage = 0
        self.compactions += 1
