"""Event heap for the discrete-event engine.

The paper's simulator maintains scheduled events "in a heap, sorted by their
scheduled time"; this module is that heap.  Events are ordered by
``(time, sequence)`` so that ties break in FIFO order, which keeps runs
deterministic under a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..errors import SimulationError


class Event:
    """A scheduled callback.

    Events are created through :meth:`repro.sim.engine.Simulator.schedule`
    and compare by scheduled time (ties broken by creation order).  A
    cancelled event stays in the heap but is skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine discards it instead of firing it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.3f} #{self.seq} {name}{state}>"


class EventHeap:
    """Min-heap of :class:`Event` objects keyed by ``(time, seq)``."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self, time: float, callback: Callable[..., Any], args: tuple[Any, ...] = ()
    ) -> Event:
        """Insert a new event and return it (for potential cancellation)."""
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            SimulationError: when the heap holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop from empty event heap")

    def peek_time(self) -> float | None:
        """Return the time of the next live event, or None when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Record that one previously pushed event was cancelled.

        The engine calls this when it cancels an event so that ``len`` and
        emptiness checks stay accurate without an O(n) heap scan.
        """
        if self._live <= 0:
            raise SimulationError("cancellation bookkeeping underflow")
        self._live -= 1
