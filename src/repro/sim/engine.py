"""Discrete-event simulation engine.

This is the substrate under every experiment in the study: an event-driven
simulator with a millisecond clock, a time-ordered event heap
(:mod:`repro.sim.events`), and generator-based *processes* in the style the
paper describes for its per-user event streams.

A process is a Python generator that yields *waitables*:

* a ``float``/``int`` — sleep for that many simulated milliseconds,
* a :class:`Waitable` (for example a disk-request completion or another
  :class:`Process`) — suspend until it succeeds.

Example:
    >>> sim = Simulator()
    >>> log = []
    >>> def worker():
    ...     yield 5.0
    ...     log.append(sim.now)
    >>> _ = sim.process(worker())
    >>> sim.run()
    >>> log
    [5.0]

Determinism guarantee: events fire in strictly nondecreasing
``(time, seq)`` order, where ``seq`` is a global creation counter.  The
zero-delay fast path (:meth:`Simulator.schedule_immediate`, used by
:meth:`Waitable.succeed` and already-done yields) provably preserves that
order — see ``docs/MODEL.md`` — and can be disabled with
``Simulator(immediate_queue=False)`` to fall back to the reference
pure-heap scheduler, which fires the exact same events in the exact same
order.
"""

from __future__ import annotations

import time as _time
from heapq import heappop as _heappop
from typing import Any, Callable, Generator, Iterable

from ..errors import SimulationError
from .events import Event, EventHeap

ProcessGenerator = Generator["Waitable | float | int", Any, Any]


class FaultEvent:
    """One fault-injection state change, as seen through the engine hook.

    The fault subsystem (:mod:`repro.fault`) publishes these via
    :meth:`Simulator.emit_fault` whenever a drive fails, slows, recovers,
    or a rebuild starts — so meters, reports, and tests can observe the
    injection timeline without coupling to the injector's internals.

    Attributes:
        kind: ``"disk-failure"``, ``"rebuild-start"``,
            ``"drive-restored"``, ``"slowdown-start"``, ``"slowdown-end"``.
        drive: index of the affected drive in the disk system.
        time_ms: simulated time the change took effect.
    """

    __slots__ = ("kind", "drive", "time_ms")

    def __init__(self, kind: str, drive: int, time_ms: float) -> None:
        self.kind = kind
        self.drive = drive
        self.time_ms = time_ms

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultEvent {self.kind} d{self.drive} @{self.time_ms:g}ms>"


class Waitable:
    """Something a process can wait on.

    A waitable succeeds exactly once, delivering ``value`` to every
    registered callback.  Subclasses (disk request completions, processes
    themselves) call :meth:`succeed` when their underlying activity
    finishes.
    """

    __slots__ = ("done", "value", "_waiters")

    def __init__(self) -> None:
        self.done = False
        self.value: Any = None
        self._waiters: list[Callable[["Simulator", Any], None]] = []

    def on_success(self, callback: Callable[["Simulator", Any], None]) -> None:
        """Register ``callback(sim, value)`` to run when this succeeds."""
        if self.done:
            raise SimulationError("waiting on an already-completed waitable")
        self._waiters.append(callback)

    def succeed(self, sim: "Simulator", value: Any = None) -> None:
        """Complete the waitable, resuming all waiters at the current time."""
        if self.done:
            raise SimulationError("waitable completed twice")
        self.done = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        if waiters:
            push_immediate = sim._push_immediate
            now = sim.now
            for callback in waiters:
                push_immediate(now, callback, (value,))


class AllOf(Waitable):
    """Succeeds when every child waitable has succeeded.

    The value is the list of child values in construction order.  Used by
    the disk array to join the per-disk pieces of a striped transfer: the
    transfer completes when its slowest disk does.
    """

    __slots__ = ("_remaining", "_results")

    def __init__(self, waitables: "list[Waitable]") -> None:
        # Inlined Waitable.__init__ plus direct waiter registration: a
        # join is built for every disk transfer, so the construction path
        # skips the superclass call and the on_success indirection (the
        # done-check it performs is the branch below).
        self.done = False
        self.value = None
        self._waiters = []
        results: list[Any] = [None] * len(waitables)
        self._results = results
        remaining = 0
        for index, waitable in enumerate(waitables):
            if waitable.done:
                results[index] = waitable.value
            else:
                remaining += 1
                waitable._waiters.append(self._make_child_callback(index))
        self._remaining = remaining
        if remaining == 0:
            # Nothing outstanding: complete synchronously (no waiters can
            # exist yet, so no scheduling is needed).
            self.done = True
            self.value = results

    def _make_child_callback(self, index: int) -> Callable[["Simulator", Any], None]:
        def child_done(sim: "Simulator", value: Any) -> None:
            self._results[index] = value
            self._remaining -= 1
            if self._remaining == 0:
                # The results list is handed over as-is: every slot is
                # final once the join completes, so a defensive copy per
                # transfer would buy nothing.
                self.succeed(sim, self._results)

        return child_done


class Process(Waitable):
    """A running generator-based simulation process.

    The process itself is a :class:`Waitable` that succeeds with the
    generator's return value, so processes can join each other with
    ``yield other_process``.
    """

    __slots__ = ("_generator", "name")

    def __init__(self, generator: ProcessGenerator, name: str = "") -> None:
        super().__init__()
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")

    def _start(self, sim: "Simulator") -> None:
        self._step(sim, None)

    def _resume(self, sim: "Simulator", value: Any) -> None:
        if not self.done:
            self._step(sim, value)

    def _step(self, sim: "Simulator", send_value: Any) -> None:
        try:
            target = self._generator.send(send_value)
        except StopIteration as stop:
            self.succeed(sim, stop.value)
            return
        cls = target.__class__
        if cls is float or cls is int or isinstance(target, (int, float)):
            # schedule(), inlined: one resume per yielded think time is
            # the single most common scheduling call in a run.
            delay = float(target)
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule into the past: {delay}"
                )
            if delay == 0.0:
                sim._push_immediate(sim.now, self._resume, (None,))
            else:
                sim._push_timer(sim.now + delay, self._resume, (None,))
        elif isinstance(target, Waitable):
            if target.done:
                sim.schedule_immediate(self._resume, target.value)
            else:
                target.on_success(self._resume)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; expected a delay "
                "(float) or a Waitable"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "running"
        return f"<Process {self.name} {state}>"


class SimProfile:
    """Per-subsystem event counts and wall-clock time.

    Populated by :meth:`Simulator.run` when profiling is enabled: each
    executed event is attributed to the module that defined its callback
    (``repro.disk.queue``, ``repro.sim.engine``, ...), giving a live
    breakdown of where simulation wall-clock time goes without external
    tooling.
    """

    __slots__ = ("data",)

    def __init__(self) -> None:
        #: module name -> [events executed, wall seconds in callbacks]
        self.data: dict[str, list[float]] = {}

    def record(self, callback: Callable[..., Any], seconds: float) -> None:
        """Attribute one executed event to the callback's module."""
        module = getattr(callback, "__module__", None) or "<unknown>"
        entry = self.data.get(module)
        if entry is None:
            entry = self.data[module] = [0, 0.0]
        entry[0] += 1
        entry[1] += seconds

    @property
    def total_events(self) -> int:
        """Events recorded across all subsystems."""
        return int(sum(entry[0] for entry in self.data.values()))

    @property
    def total_seconds(self) -> float:
        """Wall-clock seconds spent inside event callbacks."""
        return sum(entry[1] for entry in self.data.values())

    def as_dict(self) -> dict[str, dict[str, float]]:
        """JSON-safe snapshot: ``{subsystem: {"events": n, "seconds": s}}``."""
        return {
            name: {"events": int(n), "seconds": s}
            for name, (n, s) in sorted(self.data.items())
        }

    def rows(self) -> list[tuple[str, int, float]]:
        """(subsystem, events, seconds) rows, most expensive first."""
        return sorted(
            ((name, int(n), s) for name, (n, s) in self.data.items()),
            key=lambda row: row[2],
            reverse=True,
        )

    def render(self) -> str:
        """Human-readable table of the per-subsystem breakdown."""
        lines = [f"{'subsystem':32s} {'events':>12s} {'seconds':>10s}"]
        for name, events, seconds in self.rows():
            lines.append(f"{name:32s} {events:>12,d} {seconds:>10.3f}")
        lines.append(
            f"{'total':32s} {self.total_events:>12,d} "
            f"{self.total_seconds:>10.3f}"
        )
        return "\n".join(lines)


class Simulator:
    """The simulation clock and scheduler.

    Args:
        immediate_queue: route zero-delay events through the FIFO fast
            path (the default).  ``False`` selects the reference pure-heap
            scheduler; both fire identical events in identical order, and
            the test suite asserts it.

    Attributes:
        now: current simulated time in milliseconds.
        profile: a :class:`SimProfile` when profiling is enabled
            (:meth:`enable_profiling`), else None.
    """

    def __init__(self, immediate_queue: bool = True) -> None:
        self.now = 0.0
        self._heap = EventHeap()
        self._stopped = False
        self._events_executed = 0
        self._immediate_enabled = immediate_queue
        # Bound once: the zero-delay scheduling primitive.  With the fast
        # path disabled every "immediate" event goes through the heap at
        # the current time, which fires the same events in the same order.
        if immediate_queue:
            self._push_immediate = self._heap.push_immediate
        else:
            self._push_immediate = self._heap.push
        self._push_timer = self._heap.push
        self.profile: SimProfile | None = None
        #: Observability attachment points (:mod:`repro.obs`).  ``None``
        #: (the default) is the disabled fast path: instrumented
        #: subsystems guard every recording behind an ``is not None``
        #: check, and the run loop itself never consults either, so a
        #: simulation without observers executes the exact same event
        #: sequence at the same speed as one predating the layer.
        self.tracer = None
        self.metrics = None
        #: State-integrity attachment point (:mod:`repro.audit`).  Like
        #: the observability slots, ``None`` keeps the fused run loop
        #: untouched; an attached auditor switches :meth:`run` onto a
        #: per-event loop that sweeps invariants and fingerprints.
        self.auditor = None
        #: Fault-hook subscribers (see :meth:`on_fault`); empty for every
        #: fault-free simulation, so the hot path never touches them.
        self._fault_hooks: list[Callable[["Simulator", FaultEvent], None]] = []

    # -- scheduling -------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(self, *args)`` after ``delay`` milliseconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        if delay == 0:
            return self._push_immediate(self.now, callback, args)
        return self._push_timer(self.now + delay, callback, args)

    def schedule_immediate(
        self, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(self, *args)`` at the current time.

        Equivalent to ``schedule(0.0, ...)`` but skips the delay checks;
        this is the zero-delay resumption fast path used by
        :meth:`Waitable.succeed`.
        """
        return self._push_immediate(self.now, callback, args)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(self, *args)`` at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        if time == self.now:
            return self._push_immediate(self.now, callback, args)
        return self._heap.push(time, callback, args)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event so it never fires."""
        if not event.cancelled:
            event.cancel()
            self._heap.note_cancelled(event)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Register a generator as a process starting at the current time."""
        process = Process(generator, name)
        self.schedule_immediate(process._start)
        return process

    # -- fault hooks ------------------------------------------------------

    def on_fault(self, callback: Callable[["Simulator", FaultEvent], None]) -> None:
        """Subscribe ``callback(sim, event)`` to fault-injection events.

        The engine itself never emits faults; :mod:`repro.fault` publishes
        through :meth:`emit_fault` as its injected failures, slowdowns,
        and rebuilds take effect.  Subscribing is free for fault-free
        runs (the list stays empty and is never consulted per event).
        """
        self._fault_hooks.append(callback)

    def emit_fault(self, event: FaultEvent) -> None:
        """Deliver a fault event to every subscriber, synchronously."""
        for callback in self._fault_hooks:
            callback(self, event)

    def timeout(self, delay: float) -> Waitable:
        """A waitable that succeeds after ``delay`` ms (alternative to yielding a float)."""
        waitable = Waitable()
        self.schedule(delay, waitable.succeed)
        return waitable

    # -- execution --------------------------------------------------------

    def run(
        self,
        until: float | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> None:
        """Run events in time order.

        Stops when no live events remain, when the clock would pass
        ``until`` (the clock is then advanced to exactly ``until``), when
        ``stop_when()`` returns True after an event executes, or when
        :meth:`stop` is called from inside an event.
        """
        self._stopped = False
        if self.profile is not None:
            return self._run_profiled(until, stop_when)
        if self.auditor is not None:
            return self._run_audited(until, stop_when)
        heap = self._heap
        # The two event queues, aliased for the duration of the loop.
        # EventHeap._compact mutates the heap list in place, so these
        # references stay valid across callbacks that cancel events.
        heap_list = heap._heap
        immediate = heap._immediate
        horizon = float("inf") if until is None else until
        executed = 0
        try:
            while not self._stopped:
                # -- fused "what fires next" (mirrors EventHeap.pop_next;
                #    keep the two in sync) --------------------------------
                while immediate and immediate[0].cancelled:
                    immediate.popleft()
                while heap_list and heap_list[0][2].cancelled:
                    _heappop(heap_list)
                    heap._garbage -= 1
                event = None
                if immediate:
                    front = immediate[0]
                    if heap_list:
                        head = heap_list[0]
                        head_time = head[0]
                        if head_time < front.time or (
                            head_time == front.time and head[1] < front.seq
                        ):
                            if head_time > horizon:
                                break
                            _heappop(heap_list)
                            event = head[2]
                    if event is None:
                        if front.time > horizon:
                            break
                        immediate.popleft()
                        event = front
                elif heap_list:
                    head = heap_list[0]
                    if head[0] > horizon:
                        break
                    _heappop(heap_list)
                    event = head[2]
                else:
                    break
                event_time = event.time
                if event_time < self.now:
                    raise SimulationError(
                        "event heap returned an event in the past"
                    )
                self.now = event_time
                event.callback(self, *event.args)
                executed += 1
                if stop_when is not None and stop_when():
                    return
        finally:
            # Nothing in the simulation reads these mid-run; batching the
            # counters keeps two attribute RMWs out of the per-event loop.
            # (heap._live is read mid-run only by the cancellation
            # underflow guard, where a transiently high count is harmless,
            # and the compaction trigger compares against the raw heap
            # list, not the live count.)
            self._events_executed += executed
            heap._live -= executed
        if until is not None and not self._stopped:
            if len(heap) > 0:
                self.now = until  # next event lies beyond the horizon
            else:
                self.now = max(self.now, until)

    def _run_profiled(
        self,
        until: float | None,
        stop_when: Callable[[], bool] | None,
    ) -> None:
        """The run loop with per-subsystem accounting (see :class:`SimProfile`)."""
        heap = self._heap
        profile = self.profile
        perf_counter = _time.perf_counter
        while not self._stopped:
            event = heap.pop_next(until)
            if event is None:
                break
            if event.time < self.now:
                raise SimulationError(
                    "event heap returned an event in the past"
                )
            self.now = event.time
            callback = event.callback
            started = perf_counter()
            callback(self, *event.args)
            profile.record(callback, perf_counter() - started)
            self._events_executed += 1
            if stop_when is not None and stop_when():
                return
        if until is not None and not self._stopped:
            if len(heap) > 0:
                self.now = until
            else:
                self.now = max(self.now, until)

    def _run_audited(
        self,
        until: float | None,
        stop_when: Callable[[], bool] | None,
    ) -> None:
        """The run loop with per-event invariant/fingerprint sweeping.

        Structured like :meth:`_run_profiled`: one event per
        ``pop_next`` with the auditor consulted after each callback.
        The auditor decides internally whether this event lands on its
        sweep cadence, so most events cost one method call.  Fires the
        exact same event sequence as the fused loop.
        """
        heap = self._heap
        auditor = self.auditor
        while not self._stopped:
            event = heap.pop_next(until)
            if event is None:
                break
            if event.time < self.now:
                raise SimulationError(
                    "event heap returned an event in the past"
                )
            self.now = event.time
            event.callback(self, *event.args)
            self._events_executed += 1
            auditor.after_event(self)
            if stop_when is not None and stop_when():
                return
        if until is not None and not self._stopped:
            if len(heap) > 0:
                self.now = until
            else:
                self.now = max(self.now, until)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def enable_profiling(self) -> SimProfile:
        """Attach (or return the existing) per-subsystem profile.

        Profiling adds two clock reads per event, so leave it off for
        measurement runs; results are unaffected either way.
        """
        if self.profile is None:
            self.profile = SimProfile()
        return self.profile

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._heap)

    @property
    def events_executed(self) -> int:
        """Total number of events executed since construction."""
        return self._events_executed

    @property
    def compactions(self) -> int:
        """Lazy heap compactions performed (cancel-heavy workloads)."""
        return self._heap.compactions

    # -- convenience ------------------------------------------------------

    def run_all(self, processes: Iterable[ProcessGenerator]) -> None:
        """Start every generator as a process, then run to completion."""
        for generator in processes:
            self.process(generator)
        self.run()
