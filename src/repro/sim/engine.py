"""Discrete-event simulation engine.

This is the substrate under every experiment in the study: an event-driven
simulator with a millisecond clock, a time-ordered event heap
(:mod:`repro.sim.events`), and generator-based *processes* in the style the
paper describes for its per-user event streams.

A process is a Python generator that yields *waitables*:

* a ``float``/``int`` — sleep for that many simulated milliseconds,
* a :class:`Waitable` (for example a disk-request completion or another
  :class:`Process`) — suspend until it succeeds.

Example:
    >>> sim = Simulator()
    >>> log = []
    >>> def worker():
    ...     yield 5.0
    ...     log.append(sim.now)
    >>> _ = sim.process(worker())
    >>> sim.run()
    >>> log
    [5.0]
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from ..errors import SimulationError
from .events import Event, EventHeap

ProcessGenerator = Generator["Waitable | float | int", Any, Any]


class Waitable:
    """Something a process can wait on.

    A waitable succeeds exactly once, delivering ``value`` to every
    registered callback.  Subclasses (disk request completions, processes
    themselves) call :meth:`succeed` when their underlying activity
    finishes.
    """

    __slots__ = ("done", "value", "_waiters")

    def __init__(self) -> None:
        self.done = False
        self.value: Any = None
        self._waiters: list[Callable[["Simulator", Any], None]] = []

    def on_success(self, callback: Callable[["Simulator", Any], None]) -> None:
        """Register ``callback(sim, value)`` to run when this succeeds."""
        if self.done:
            raise SimulationError("waiting on an already-completed waitable")
        self._waiters.append(callback)

    def succeed(self, sim: "Simulator", value: Any = None) -> None:
        """Complete the waitable, resuming all waiters at the current time."""
        if self.done:
            raise SimulationError("waitable completed twice")
        self.done = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            sim.schedule(0.0, callback, value)


class AllOf(Waitable):
    """Succeeds when every child waitable has succeeded.

    The value is the list of child values in construction order.  Used by
    the disk array to join the per-disk pieces of a striped transfer: the
    transfer completes when its slowest disk does.
    """

    __slots__ = ("_remaining", "_results")

    def __init__(self, waitables: "list[Waitable]") -> None:
        super().__init__()
        self._results: list[Any] = [None] * len(waitables)
        self._remaining = 0
        for index, waitable in enumerate(waitables):
            if waitable.done:
                self._results[index] = waitable.value
            else:
                self._remaining += 1
                waitable.on_success(self._make_child_callback(index))
        if self._remaining == 0:
            # Nothing outstanding: complete synchronously (no waiters can
            # exist yet, so no scheduling is needed).
            self.done = True
            self.value = list(self._results)

    def _make_child_callback(self, index: int) -> Callable[["Simulator", Any], None]:
        def child_done(sim: "Simulator", value: Any) -> None:
            self._results[index] = value
            self._remaining -= 1
            if self._remaining == 0:
                self.succeed(sim, list(self._results))

        return child_done


class Process(Waitable):
    """A running generator-based simulation process.

    The process itself is a :class:`Waitable` that succeeds with the
    generator's return value, so processes can join each other with
    ``yield other_process``.
    """

    __slots__ = ("_generator", "name")

    def __init__(self, generator: ProcessGenerator, name: str = "") -> None:
        super().__init__()
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")

    def _start(self, sim: "Simulator") -> None:
        self._step(sim, None)

    def _resume(self, sim: "Simulator", value: Any) -> None:
        if not self.done:
            self._step(sim, value)

    def _step(self, sim: "Simulator", send_value: Any) -> None:
        try:
            target = self._generator.send(send_value)
        except StopIteration as stop:
            self.succeed(sim, stop.value)
            return
        if isinstance(target, (int, float)):
            sim.schedule(float(target), self._resume, None)
        elif isinstance(target, Waitable):
            if target.done:
                sim.schedule(0.0, self._resume, target.value)
            else:
                target.on_success(self._resume)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; expected a delay "
                "(float) or a Waitable"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "running"
        return f"<Process {self.name} {state}>"


class Simulator:
    """The simulation clock and scheduler.

    Attributes:
        now: current simulated time in milliseconds.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap = EventHeap()
        self._stopped = False
        self._events_executed = 0

    # -- scheduling -------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(self, *args)`` after ``delay`` milliseconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        return self._heap.push(self.now + delay, callback, args)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(self, *args)`` at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        return self._heap.push(time, callback, args)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event so it never fires."""
        if not event.cancelled:
            event.cancel()
            self._heap.note_cancelled()

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Register a generator as a process starting at the current time."""
        process = Process(generator, name)
        self.schedule(0.0, process._start)
        return process

    def timeout(self, delay: float) -> Waitable:
        """A waitable that succeeds after ``delay`` ms (alternative to yielding a float)."""
        waitable = Waitable()
        self.schedule(delay, waitable.succeed)
        return waitable

    # -- execution --------------------------------------------------------

    def run(
        self,
        until: float | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> None:
        """Run events in time order.

        Stops when the heap empties, when the clock would pass ``until``
        (the clock is then advanced to exactly ``until``), when
        ``stop_when()`` returns True after an event executes, or when
        :meth:`stop` is called from inside an event.
        """
        self._stopped = False
        while len(self._heap) > 0 and not self._stopped:
            next_time = self._heap.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                return
            event = self._heap.pop()
            if event.time < self.now:
                raise SimulationError("event heap returned an event in the past")
            self.now = event.time
            event.callback(self, *event.args)
            self._events_executed += 1
            if stop_when is not None and stop_when():
                return
        if until is not None and not self._stopped:
            self.now = max(self.now, until)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._heap)

    @property
    def events_executed(self) -> int:
        """Total number of events executed since construction."""
        return self._events_executed

    # -- convenience ------------------------------------------------------

    def run_all(self, processes: Iterable[ProcessGenerator]) -> None:
        """Start every generator as a process, then run to completion."""
        for generator in processes:
            self.process(generator)
        self.run()
