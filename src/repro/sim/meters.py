"""Throughput measurement and the paper's stabilization rule.

Throughput in the study is "measured as a percentage of the maximum possible
sequential throughput of the disk system" and is "considered stabilized when
the throughput calculation for 3 consecutive 10 second intervals are within
.1 % of each other".  :class:`ThroughputMeter` implements exactly that:
completed transfers are recorded as ``(time, bytes)``; the meter buckets
them into fixed intervals and reports both instantaneous and cumulative
utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError

#: The paper's interval length: 10 simulated seconds, in milliseconds.
DEFAULT_INTERVAL_MS = 10_000.0

#: The paper's tolerance: interval utilizations within 0.1 percentage
#: points of each other (utilization expressed as a fraction, so 0.001).
DEFAULT_TOLERANCE = 0.001

#: The paper's window: three consecutive intervals.
DEFAULT_WINDOW = 3


@dataclass
class ThroughputMeter:
    """Buckets completed transfer bytes into fixed wall-clock intervals.

    Args:
        max_bytes_per_ms: the disk system's maximum sustained sequential
            bandwidth, used to normalize utilization.
        interval_ms: bucketing interval (paper: 10 s).
        start_time: measurements before this simulated time are discarded
            (used to skip the warm-up phase while the disks fill).
    """

    max_bytes_per_ms: float
    interval_ms: float = DEFAULT_INTERVAL_MS
    start_time: float = 0.0
    _intervals: list[float] = field(default_factory=list, repr=False)
    _total_bytes: float = field(default=0.0, repr=False)
    _last_time: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.max_bytes_per_ms <= 0:
            raise ConfigurationError("max bandwidth must be positive")
        if self.interval_ms <= 0:
            raise ConfigurationError("interval must be positive")
        self._last_time = self.start_time

    def record(self, time: float, n_bytes: int) -> None:
        """Record ``n_bytes`` transferred, completing at simulated ``time``."""
        if n_bytes < 0:
            raise ConfigurationError(f"negative transfer size: {n_bytes}")
        if time < self.start_time:
            return
        self._credit(time, float(n_bytes))
        self._total_bytes += n_bytes
        self._last_time = max(self._last_time, time)

    def record_span(self, start: float, end: float, n_bytes: int) -> None:
        """Record a transfer that ran from ``start`` to ``end``.

        Bytes are spread uniformly over the span so that a multi-interval
        transfer (a whole-file read can run for tens of seconds) credits
        each interval with the bandwidth it actually consumed, instead of
        dumping everything into the completion interval.  The portion of
        the span before ``start_time`` is discarded (warm-up).
        """
        if n_bytes < 0:
            raise ConfigurationError(f"negative transfer size: {n_bytes}")
        if end < start:
            raise ConfigurationError(f"span ends before it starts: {start}..{end}")
        if end <= self.start_time:
            return
        if end == start:
            self.record(end, n_bytes)
            return
        rate = n_bytes / (end - start)
        clipped_start = max(start, self.start_time)
        credited = rate * (end - clipped_start)
        position = clipped_start
        while position < end:
            index = int((position - self.start_time) // self.interval_ms)
            interval_end = self.start_time + (index + 1) * self.interval_ms
            chunk_end = min(interval_end, end)
            self._credit(position, rate * (chunk_end - position))
            position = chunk_end
        self._total_bytes += credited
        self._last_time = max(self._last_time, end)

    def _credit(self, time: float, amount: float) -> None:
        index = int((time - self.start_time) // self.interval_ms)
        while len(self._intervals) <= index:
            self._intervals.append(0.0)
        self._intervals[index] += amount

    # -- utilization -------------------------------------------------------

    def interval_utilizations(self, up_to_time: float) -> list[float]:
        """Utilization (fraction of max bandwidth) per *complete* interval.

        Only intervals that ended at or before ``up_to_time`` count; the
        current partial interval is excluded, matching the paper's use of
        whole 10-second windows.
        """
        complete = int((up_to_time - self.start_time) // self.interval_ms)
        complete = max(0, min(complete, len(self._intervals)))
        per_interval_max = self.max_bytes_per_ms * self.interval_ms
        return [b / per_interval_max for b in self._intervals[:complete]]

    def cumulative_utilization(self, up_to_time: float) -> float:
        """Bytes moved so far divided by what the disks could have moved."""
        elapsed = up_to_time - self.start_time
        if elapsed <= 0:
            return 0.0
        return self._total_bytes / (self.max_bytes_per_ms * elapsed)

    @property
    def total_bytes(self) -> float:
        """Total bytes recorded since ``start_time``."""
        return self._total_bytes

    # -- stabilization -------------------------------------------------------

    def stabilized(
        self,
        up_to_time: float,
        window: int = DEFAULT_WINDOW,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> bool:
        """Apply the paper's stabilization test.

        True when the last ``window`` complete intervals all lie within
        ``tolerance`` (in utilization-fraction units) of each other.
        """
        utilizations = self.interval_utilizations(up_to_time)
        if len(utilizations) < window:
            return False
        tail = utilizations[-window:]
        return max(tail) - min(tail) <= tolerance

    def stable_utilization(
        self, up_to_time: float, window: int = DEFAULT_WINDOW
    ) -> float:
        """Mean utilization over the final ``window`` complete intervals.

        This is the number an experiment reports once :meth:`stabilized`
        fires (or at the time cap, whichever comes first).  Falls back to
        cumulative utilization when fewer than ``window`` intervals exist.
        """
        utilizations = self.interval_utilizations(up_to_time)
        if len(utilizations) < window:
            return self.cumulative_utilization(up_to_time)
        tail = utilizations[-window:]
        return sum(tail) / len(tail)
