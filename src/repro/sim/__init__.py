"""Discrete-event simulation substrate.

Public surface:

* :class:`Simulator`, :class:`Process`, :class:`Waitable` — the engine.
* :class:`RandomStream` — named, seeded distribution streams.
* :class:`ThroughputMeter` — interval throughput + stabilization rule.
* :class:`Tally`, :class:`Counter` — statistics accumulators.
"""

from .engine import AllOf, Process, Simulator, Waitable
from .events import Event, EventHeap
from .meters import (
    DEFAULT_INTERVAL_MS,
    DEFAULT_TOLERANCE,
    DEFAULT_WINDOW,
    ThroughputMeter,
)
from .rng import RandomStream
from .stats import Counter, Tally, histogram

__all__ = [
    "AllOf",
    "Simulator",
    "Process",
    "Waitable",
    "Event",
    "EventHeap",
    "RandomStream",
    "ThroughputMeter",
    "DEFAULT_INTERVAL_MS",
    "DEFAULT_TOLERANCE",
    "DEFAULT_WINDOW",
    "Tally",
    "Counter",
    "histogram",
]
