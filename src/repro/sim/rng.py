"""Seeded random streams for the stochastic workload model.

The paper's workloads are stochastic: file sizes are uniform around a mean,
request sizes are normal, think times are exponential, extent sizes are
normal with a 10 % deviation.  This module provides named, independently
seeded streams of those distribution families so that every experiment is
exactly reproducible from ``(seed, stream name)`` and two components never
share a stream (adding events to one subsystem cannot perturb another).
"""

from __future__ import annotations

import hashlib
import random
from bisect import bisect_right
from typing import Sequence, TypeVar

from ..errors import ConfigurationError

T = TypeVar("T")


class StreamLedger:
    """Registry of every stream constructed while installed (audit hook).

    The invariant auditor installs one per experiment
    (:func:`install_ledger`) so it can sweep per-stream draw counts and
    fingerprint each stream's internal state.  Registration keys are
    ``name#n`` — the stream name plus a registration ordinal — so two
    streams that legitimately share a name stay distinguishable.
    """

    def __init__(self) -> None:
        self._streams: dict[str, RandomStream] = {}
        self._by_name: dict[str, int] = {}

    def register(self, stream: "RandomStream") -> None:
        ordinal = self._by_name.get(stream.name, 0)
        self._by_name[stream.name] = ordinal + 1
        self._streams[f"{stream.name}#{ordinal}"] = stream

    def items(self):
        """``(key, stream)`` pairs in registration order."""
        return self._streams.items()

    def __len__(self) -> int:
        return len(self._streams)


#: Module-level ledger slot.  ``None`` (the default) is the
#: zero-overhead path: stream construction checks one global, sampling
#: never does.  Installed/uninstalled per experiment — both the inline
#: runner and pool workers execute one experiment at a time, so a
#: module global cannot cross-contaminate concurrent points.
_LEDGER: StreamLedger | None = None


def install_ledger(ledger: StreamLedger) -> None:
    """Register subsequently-constructed streams with ``ledger``."""
    global _LEDGER
    _LEDGER = ledger


def uninstall_ledger() -> None:
    """Stop registering streams (always pair with :func:`install_ledger`)."""
    global _LEDGER
    _LEDGER = None


def current_ledger() -> StreamLedger | None:
    """The installed ledger, or ``None``."""
    return _LEDGER


class PreparedWeights:
    """Pre-validated cumulative weights for repeated weighted draws.

    :meth:`RandomStream.weighted_choice` revalidates and re-accumulates
    its weights on every call; hot loops that draw from the same
    distribution millions of times (the workload driver's operation mix)
    build one of these once instead.  The cumulative sums are built with
    the exact left-to-right float additions ``weighted_choice`` performs,
    so :meth:`RandomStream.weighted_choice_prepared` selects the same
    item the unprepared call would for every possible draw.
    """

    __slots__ = ("items", "cumulative", "total")

    def __init__(self, items: Sequence[T], weights: Sequence[float]) -> None:
        if len(items) != len(weights):
            raise ConfigurationError("items and weights differ in length")
        for weight in weights:
            if weight < 0:
                raise ConfigurationError(f"negative weight: {weight}")
        total = float(sum(weights))
        if total <= 0:
            raise ConfigurationError("weights must sum to a positive value")
        cumulative: list[float] = []
        running = 0.0
        for weight in weights:
            running += weight
            cumulative.append(running)
        self.items = tuple(items)
        self.cumulative = cumulative
        self.total = total


def _derive_seed(seed: int, name: str) -> int:
    """Derive a child seed from a parent seed and a stream name.

    Uses SHA-256 so unrelated names give statistically independent seeds
    and the derivation is stable across Python versions and processes
    (unlike ``hash``).
    """
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """A named random stream with the distribution families the model uses.

    Wraps :class:`random.Random` (Mersenne Twister) with clamped/validated
    variants of the distributions the paper's workload description calls
    for.  Fork substreams with :meth:`fork` rather than sharing a stream.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        self._random = random.Random(_derive_seed(seed, name))
        #: Samples drawn through this stream's public methods; the audit
        #: ledger asserts this only ever grows.
        self.draws = 0
        if _LEDGER is not None:
            _LEDGER.register(self)

    def fork(self, name: str) -> "RandomStream":
        """Create an independent child stream identified by ``name``."""
        return RandomStream(self.seed, f"{self.name}/{name}")

    def state_digest(self) -> str:
        """sha256 of the underlying generator state (fingerprint hook).

        ``random.Random.getstate`` is a pure function of seed and draw
        history, so the digest is identical across processes and engine
        variants whenever the draw sequences are.
        """
        return hashlib.sha256(repr(self._random.getstate()).encode()).hexdigest()

    # -- distribution families ---------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        """Uniform value in ``[low, high]``."""
        if high < low:
            raise ConfigurationError(f"uniform range inverted: [{low}, {high}]")
        self.draws += 1
        return self._random.uniform(low, high)

    def uniform_int(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        if high < low:
            raise ConfigurationError(f"uniform range inverted: [{low}, {high}]")
        self.draws += 1
        return self._random.randint(low, high)

    def uniform_around(self, mean: float, deviation: float) -> float:
        """Uniform in ``[mean - deviation, mean + deviation]``, floored at 0.

        This is the paper's initialization distribution: "a size is selected
        from a uniform distribution with mean equal to initial size and
        deviation of initial deviation".
        """
        self.draws += 1
        return max(0.0, self._random.uniform(mean - deviation, mean + deviation))

    def normal(self, mean: float, deviation: float, minimum: float = 0.0) -> float:
        """Normal sample clamped below at ``minimum``.

        Request and extent sizes are normal; a raw normal can go negative,
        which has no physical meaning for a size, so the sample is clamped.
        """
        if deviation < 0:
            raise ConfigurationError(f"negative deviation: {deviation}")
        self.draws += 1
        return max(minimum, self._random.gauss(mean, deviation))

    def exponential(self, mean: float) -> float:
        """Exponential sample with the given mean (paper's think time)."""
        if mean < 0:
            raise ConfigurationError(f"negative exponential mean: {mean}")
        if mean == 0:
            return 0.0
        self.draws += 1
        return self._random.expovariate(1.0 / mean)

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        if not items:
            raise ConfigurationError("choice from an empty sequence")
        self.draws += 1
        return self._random.choice(items)

    def choice_index(self, n: int) -> int:
        """Uniform index in ``[0, n)``, draw-compatible with :meth:`choice`.

        ``random.Random.choice(seq)`` is ``seq[_randbelow(len(seq))]`` and
        ``randrange(n)`` consumes the same single ``_randbelow(n)`` draw,
        so ``items[stream.choice_index(len(items))]`` selects the exact
        item ``stream.choice(items)`` would while also exposing the index
        (which lets callers delete by position instead of scanning).
        """
        if n <= 0:
            raise ConfigurationError("choice from an empty sequence")
        self.draws += 1
        return self._random.randrange(n)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choice proportional to ``weights`` (used for operation ratios)."""
        if len(items) != len(weights):
            raise ConfigurationError("items and weights differ in length")
        for weight in weights:
            if weight < 0:
                raise ConfigurationError(f"negative weight: {weight}")
        total = float(sum(weights))
        if total <= 0:
            raise ConfigurationError("weights must sum to a positive value")
        self.draws += 1
        pick = self._random.random() * total
        cumulative = 0.0
        for item, weight in zip(items, weights):
            cumulative += weight
            if pick < cumulative:
                return item
        return items[-1]

    def weighted_choice_prepared(self, prepared: PreparedWeights) -> T:
        """Draw from a :class:`PreparedWeights`, one ``random()`` sample.

        Selects exactly the item :meth:`weighted_choice` would pick from
        the same items/weights at the same generator state: one uniform
        draw scaled by the same total, located in the same cumulative
        sums (bisect here, linear scan there — same first index with
        ``pick < cumulative[i]``).
        """
        self.draws += 1
        pick = self._random.random() * prepared.total
        index = bisect_right(prepared.cumulative, pick)
        items = prepared.items
        if index >= len(items):  # pick rounded up to the exact total
            return items[-1]
        return items[index]

    def shuffle(self, items: list[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self.draws += 1
        self._random.shuffle(items)

    def random(self) -> float:
        """Raw uniform in [0, 1)."""
        self.draws += 1
        return self._random.random()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RandomStream seed={self.seed} name={self.name!r}>"
