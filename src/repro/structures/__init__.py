"""Purpose-built data structures backing the allocators.

* :class:`CircularDll` — the paper's sorted circular doubly-linked free list.
* :class:`SortedAddresses` / :class:`SortedPairs` — bisect-backed ordered
  indexes for successor and best-fit queries.
* :class:`FreeExtentMap` — coalescing disjoint-interval free-space map.
"""

from .dll import CircularDll, DllNode
from .intervals import FreeExtentMap
from .sortedlist import SortedAddresses, SortedPairs

__all__ = [
    "CircularDll",
    "DllNode",
    "FreeExtentMap",
    "SortedAddresses",
    "SortedPairs",
]
