"""Bitmap over maximum-size blocks.

"A bit map is used to record the state (free or used) of every maximum
sized block in the system."  Backed by a single Python integer (arbitrary
precision), which gives C-speed bit tests and find-first-set scans.
Bit ``i`` set means block ``i`` is free.
"""

from __future__ import annotations

from ..errors import SimulationError


class Bitmap:
    """Fixed-size bitmap with set/clear/test and ordered free-bit scans."""

    __slots__ = ("size", "_bits", "_set_count")

    def __init__(self, size: int, all_set: bool = False) -> None:
        if size < 0:
            raise SimulationError(f"negative bitmap size: {size}")
        self.size = size
        self._bits = (1 << size) - 1 if all_set else 0
        self._set_count = size if all_set else 0

    def __len__(self) -> int:
        return self.size

    @property
    def set_count(self) -> int:
        """Number of set (free) bits."""
        return self._set_count

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise SimulationError(f"bit {index} outside bitmap of {self.size}")

    def test(self, index: int) -> bool:
        """True when bit ``index`` is set."""
        self._check(index)
        return bool((self._bits >> index) & 1)

    def set(self, index: int) -> None:
        """Set bit ``index``; setting a set bit is an error (double free)."""
        self._check(index)
        mask = 1 << index
        if self._bits & mask:
            raise SimulationError(f"bit {index} already set")
        self._bits |= mask
        self._set_count += 1

    def clear(self, index: int) -> None:
        """Clear bit ``index``; clearing a clear bit is an error."""
        self._check(index)
        mask = 1 << index
        if not self._bits & mask:
            raise SimulationError(f"bit {index} already clear")
        self._bits &= ~mask
        self._set_count -= 1

    def first_set_at_or_after(self, index: int) -> int | None:
        """Lowest set bit >= ``index``, or None.

        Implemented by masking off the low bits and isolating the lowest
        survivor with ``x & -x`` — one big-int operation regardless of
        bitmap width.
        """
        if index >= self.size:
            return None
        index = max(index, 0)
        shifted = self._bits >> index
        if shifted == 0:
            return None
        lowest = shifted & -shifted
        return index + lowest.bit_length() - 1

    def first_set_in_range(self, low: int, high: int) -> int | None:
        """Lowest set bit in ``[low, high)``, or None."""
        found = self.first_set_at_or_after(low)
        if found is not None and found < high:
            return found
        return None

    def set_bits(self) -> list[int]:
        """All set bit indexes in order (tests / debugging)."""
        result = []
        bits = self._bits
        position = 0
        while bits:
            lowest = bits & -bits
            index = position + lowest.bit_length() - 1
            result.append(index)
            bits >>= index - position + 1
            position = index + 1
        return result
