"""Coalescing free-extent map for the extent-based allocator.

The extent policy views the disk as a linear address space where "an extent
may begin at any address" and "when an extent is freed, it is coalesced
with its adjoining extents if they are free".  :class:`FreeExtentMap` keeps
the free space as a set of disjoint, automatically coalesced intervals and
answers first-fit (lowest adequate address) and best-fit (smallest adequate
length) queries.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import SimulationError
from .sortedlist import SortedAddresses, SortedPairs


class FreeExtentMap:
    """Disjoint free intervals over ``[0, capacity)`` with coalescing.

    Internally: a sorted list of interval start addresses, a dict mapping
    start -> length, and a ``(length, start)`` size index for best-fit.
    All three are updated together; a checker method validates the
    invariants for the test suite.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self._starts = SortedAddresses([0])
        self._lengths: dict[int, int] = {0: capacity}
        self._by_size = SortedPairs()
        self._by_size.add(capacity, 0)
        self._free_total = capacity

    # -- queries ------------------------------------------------------------

    @property
    def free_units(self) -> int:
        """Total free space across all intervals."""
        return self._free_total

    @property
    def fragment_count(self) -> int:
        """Number of disjoint free intervals."""
        return len(self._lengths)

    def intervals(self) -> Iterator[tuple[int, int]]:
        """All free ``(start, length)`` intervals in address order."""
        for start in self._starts:
            yield start, self._lengths[start]

    def largest_free(self) -> int:
        """Length of the largest free interval (0 when nothing is free)."""
        best = 0
        for length in self._lengths.values():
            best = max(best, length)
        return best

    def is_free(self, start: int, length: int) -> bool:
        """True when ``[start, start+length)`` lies inside one free interval."""
        candidate = self._starts.predecessor(start + 1)
        if candidate is None:
            return False
        return candidate <= start and start + length <= candidate + self._lengths[candidate]

    # -- allocation ----------------------------------------------------------

    def take_first_fit(self, length: int) -> int | None:
        """Allocate from the lowest-addressed interval that fits.

        Returns the start address or None when no interval is big enough.
        The tendency of first-fit "to allocate blocks toward the beginning
        of the disk system" that the paper credits for its slight clustering
        falls straight out of this address-ordered scan.
        """
        if length <= 0:
            raise SimulationError(f"allocation length must be positive: {length}")
        for start in self._starts:
            if self._lengths[start] >= length:
                self._carve(start, start, length)
                return start
        return None

    def take_best_fit(self, length: int) -> int | None:
        """Allocate from the smallest adequate interval (lowest address ties)."""
        if length <= 0:
            raise SimulationError(f"allocation length must be positive: {length}")
        found = self._by_size.first_with_primary_at_least(length)
        if found is None:
            return None
        interval_length, start = found
        assert interval_length >= length
        self._carve(start, start, length)
        return start

    def take_up_to_from(self, position: int, max_length: int) -> tuple[int, int] | None:
        """Take up to ``max_length`` units from the first free space at or
        after ``position``, wrapping to address zero when nothing lies
        beyond it.

        Used by log-structured allocation: the log head takes whatever
        contiguous run comes next, threading through the holes.  Returns
        ``(start, taken)`` or None when nothing at all is free.
        """
        if max_length <= 0:
            raise SimulationError(f"allocation length must be positive: {max_length}")
        found = self._usable_at_or_after(position)
        if found is None:
            found = self._usable_at_or_after(0)
        if found is None:
            return None
        interval_start, usable_start, usable_length = found
        take = min(usable_length, max_length)
        self._carve(interval_start, usable_start, take)
        return usable_start, take

    def _usable_at_or_after(
        self, position: int
    ) -> tuple[int, int, int] | None:
        """First free space at or after ``position``.

        Returns ``(interval start, usable start, usable length)``; when
        ``position`` falls inside a free interval, the usable part begins
        at ``position``.
        """
        containing = self._starts.predecessor(position + 1)
        if containing is not None:
            end = containing + self._lengths[containing]
            if position < end:
                return containing, position, end - position
        following = self._starts.successor(position)
        if following is None:
            return None
        return following, following, self._lengths[following]

    def take_at(self, start: int, length: int) -> bool:
        """Allocate the exact range ``[start, start+length)`` if it is free."""
        if length <= 0:
            raise SimulationError(f"allocation length must be positive: {length}")
        interval_start = self._starts.predecessor(start + 1)
        if interval_start is None:
            return False
        interval_length = self._lengths[interval_start]
        if interval_start <= start and start + length <= interval_start + interval_length:
            self._carve(interval_start, start, length)
            return True
        return False

    # -- release ---------------------------------------------------------------

    def release(self, start: int, length: int) -> None:
        """Return ``[start, start+length)`` to the free map, coalescing.

        Raises:
            SimulationError: when the range overlaps existing free space or
                falls outside the address space (double free / corruption).
        """
        if length <= 0:
            raise SimulationError(f"release length must be positive: {length}")
        if start < 0 or start + length > self.capacity:
            raise SimulationError(
                f"release [{start}, {start + length}) outside capacity {self.capacity}"
            )
        predecessor = self._starts.predecessor(start + 1)
        if predecessor is not None:
            pred_end = predecessor + self._lengths[predecessor]
            if pred_end > start:
                raise SimulationError(
                    f"double free: [{start}, {start + length}) overlaps "
                    f"free interval starting at {predecessor}"
                )
        successor = self._starts.successor(start)
        if successor is not None and successor < start + length:
            raise SimulationError(
                f"double free: [{start}, {start + length}) overlaps "
                f"free interval starting at {successor}"
            )

        new_start, new_length = start, length
        # Coalesce with the predecessor when it ends exactly at our start.
        if predecessor is not None and predecessor + self._lengths[predecessor] == start:
            new_start = predecessor
            new_length += self._lengths[predecessor]
            self._remove_interval(predecessor)
        # Coalesce with the successor when we end exactly at its start.
        if successor is not None and start + length == successor:
            new_length += self._lengths[successor]
            self._remove_interval(successor)
        self._add_interval(new_start, new_length)
        self._free_total += length

    # -- internals ----------------------------------------------------------

    def _carve(self, interval_start: int, take_start: int, take_length: int) -> None:
        """Remove ``[take_start, take_start+take_length)`` from one interval."""
        interval_length = self._lengths[interval_start]
        self._remove_interval(interval_start)
        left = take_start - interval_start
        right = (interval_start + interval_length) - (take_start + take_length)
        if left > 0:
            self._add_interval(interval_start, left)
        if right > 0:
            self._add_interval(take_start + take_length, right)
        self._free_total -= take_length

    def _add_interval(self, start: int, length: int) -> None:
        self._starts.add(start)
        self._lengths[start] = length
        self._by_size.add(length, start)

    def _remove_interval(self, start: int) -> None:
        length = self._lengths.pop(start)
        self._starts.remove(start)
        self._by_size.remove(length, start)

    # -- validation -----------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify internal consistency (used by tests, not hot paths)."""
        previous_end = -1
        total = 0
        sizes_seen = []
        for start, length in self.intervals():
            if length <= 0:
                raise SimulationError(f"empty interval at {start}")
            if start <= previous_end:
                raise SimulationError(
                    f"intervals overlap or failed to coalesce near {start}"
                )
            previous_end = start + length
            total += length
            sizes_seen.append((length, start))
        if previous_end > self.capacity:
            raise SimulationError("interval extends past capacity")
        if total != self._free_total:
            raise SimulationError(
                f"free total {self._free_total} != interval sum {total}"
            )
        if sorted(sizes_seen) != list(self._by_size):
            raise SimulationError("size index out of sync with intervals")
