"""Bisect-backed sorted containers for address and size indexing.

The allocators need three ordered queries fast: "is address X free",
"first free address >= X" (for contiguity hunting), and "smallest free
extent with length >= N" (for best-fit).  These thin wrappers around
``bisect`` on a compact Python list provide them with O(log n) search and
C-speed memmove inserts, which comfortably beats pointer-chasing structures
at the list sizes the simulations produce.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterator

from ..errors import SimulationError


class SortedAddresses:
    """A sorted set of integer addresses with successor/predecessor queries."""

    __slots__ = ("_items",)

    def __init__(self, items: list[int] | None = None) -> None:
        self._items: list[int] = sorted(items) if items else []

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, address: int) -> bool:
        index = bisect_left(self._items, address)
        return index < len(self._items) and self._items[index] == address

    def __iter__(self) -> Iterator[int]:
        return iter(self._items)

    def add(self, address: int) -> None:
        """Insert a new address; duplicates are an error (a block cannot be freed twice)."""
        index = bisect_left(self._items, address)
        if index < len(self._items) and self._items[index] == address:
            raise SimulationError(f"address {address} already present")
        self._items.insert(index, address)

    def remove(self, address: int) -> None:
        """Remove an address known to be present."""
        index = bisect_left(self._items, address)
        if index >= len(self._items) or self._items[index] != address:
            raise SimulationError(f"address {address} not present")
        del self._items[index]

    def discard(self, address: int) -> bool:
        """Remove ``address`` if present; return whether it was.

        One bisect for the membership test *and* the removal — the buddy
        coalescing walk's "is my buddy free, and if so take it" step.
        """
        index = bisect_left(self._items, address)
        if index < len(self._items) and self._items[index] == address:
            del self._items[index]
            return True
        return False

    def pop_first(self) -> int | None:
        """Remove and return the smallest member, or None when empty."""
        if not self._items:
            return None
        return self._items.pop(0)

    def successor(self, address: int) -> int | None:
        """Smallest member >= ``address``, or None."""
        index = bisect_left(self._items, address)
        if index < len(self._items):
            return self._items[index]
        return None

    def predecessor(self, address: int) -> int | None:
        """Largest member < ``address``, or None."""
        index = bisect_left(self._items, address)
        if index > 0:
            return self._items[index - 1]
        return None

    def first(self) -> int | None:
        """Smallest member, or None when empty."""
        return self._items[0] if self._items else None

    def range(self, low: int, high: int) -> list[int]:
        """Members in ``[low, high)`` in order."""
        lo = bisect_left(self._items, low)
        hi = bisect_left(self._items, high)
        return self._items[lo:hi]


class SortedPairs:
    """A sorted multiset of ``(primary, secondary)`` integer pairs.

    Used as the best-fit size index: pairs are ``(length, start)`` so the
    smallest adequate extent (ties broken by lowest address) is a single
    bisect away.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: list[tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self._items)

    def add(self, primary: int, secondary: int) -> None:
        """Insert a pair (duplicates allowed only if truly distinct pairs)."""
        insort(self._items, (primary, secondary))

    def remove(self, primary: int, secondary: int) -> None:
        """Remove a pair known to be present."""
        pair = (primary, secondary)
        index = bisect_left(self._items, pair)
        if index >= len(self._items) or self._items[index] != pair:
            raise SimulationError(f"pair {pair} not present")
        del self._items[index]

    def first_with_primary_at_least(self, minimum: int) -> tuple[int, int] | None:
        """Smallest pair whose primary >= ``minimum``, or None.

        For the best-fit index this is "the smallest free extent that still
        fits", with the lowest start address among equals.
        """
        index = bisect_left(self._items, (minimum, -1))
        if index < len(self._items):
            return self._items[index]
        return None
