"""Circular doubly-linked list, as the paper's free-list structure.

"For smaller blocks, a circular doubly linked list of free blocks is
maintained in sorted order."  This module implements that structure with
O(1) unlink given a node and ordered insertion helpers.  The restricted
buddy allocator keys nodes by disk address and walks them in address order
when hunting for a contiguous or nearby block.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..errors import SimulationError


class DllNode:
    """A node in a :class:`CircularDll`; carries an ordering ``key``."""

    __slots__ = ("key", "value", "prev", "next", "owner")

    def __init__(self, key: int, value: Any = None) -> None:
        self.key = key
        self.value = value
        self.prev: "DllNode | None" = None
        self.next: "DllNode | None" = None
        self.owner: "CircularDll | None" = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DllNode key={self.key}>"


class CircularDll:
    """Circular doubly-linked list ordered by node key.

    A sentinel-free circular list: ``head`` points at the smallest key.
    Insertion keeps sorted order; ``insert_after`` supports O(1) placement
    when the caller already knows the predecessor (the common case when
    freeing a block adjacent to a known neighbour).
    """

    def __init__(self) -> None:
        self.head: DllNode | None = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[DllNode]:
        """Iterate nodes in key order, starting from the head."""
        node = self.head
        for _ in range(self._size):
            assert node is not None
            yield node
            node = node.next

    def insert(self, node: DllNode) -> None:
        """Insert keeping sorted order (linear scan from head).

        The restricted buddy policy keeps these lists short (blocks appear
        only while a buddy is in use), so a linear scan matches both the
        1991 implementation and the observed workload.
        """
        if node.owner is not None:
            raise SimulationError("node already belongs to a list")
        if self.head is None:
            node.prev = node.next = node
            self.head = node
        elif node.key < self.head.key:
            self._link_before(self.head, node)
            self.head = node
        else:
            current = self.head
            while current.next is not self.head and current.next.key <= node.key:
                current = current.next
            self._link_before(current.next, node)
        node.owner = self
        self._size += 1

    def insert_after(self, anchor: DllNode, node: DllNode) -> None:
        """O(1) insert of ``node`` directly after ``anchor``.

        The caller asserts ``anchor.key <= node.key <= anchor.next.key``
        (modulo wraparound); sorted order is the caller's responsibility.
        """
        if anchor.owner is not self:
            raise SimulationError("anchor is not in this list")
        if node.owner is not None:
            raise SimulationError("node already belongs to a list")
        self._link_before(anchor.next, node)
        node.owner = self
        self._size += 1

    def remove(self, node: DllNode) -> None:
        """O(1) unlink of a node known to be in this list."""
        if node.owner is not self:
            raise SimulationError("node is not in this list")
        if self._size == 1:
            self.head = None
        else:
            node.prev.next = node.next
            node.next.prev = node.prev
            if self.head is node:
                self.head = node.next
        node.prev = node.next = None
        node.owner = None
        self._size -= 1

    def pop_head(self) -> DllNode:
        """Remove and return the smallest-key node."""
        if self.head is None:
            raise SimulationError("pop from empty list")
        node = self.head
        self.remove(node)
        return node

    def first_at_or_after(self, key: int) -> DllNode | None:
        """First node with ``node.key >= key``, or None.

        Linear scan in key order; used to find the free block nearest after
        a target address when hunting for contiguity.
        """
        for node in self:
            if node.key >= key:
                return node
        return None

    def find(self, key: int) -> DllNode | None:
        """Node with exactly this key, or None."""
        for node in self:
            if node.key == key:
                return node
            if node.key > key:
                return None
        return None

    def keys(self) -> list[int]:
        """All keys in order (mainly for tests and debugging)."""
        return [node.key for node in self]

    @staticmethod
    def _link_before(successor: DllNode, node: DllNode) -> None:
        predecessor = successor.prev
        node.prev = predecessor
        node.next = successor
        predecessor.next = node
        successor.prev = node
