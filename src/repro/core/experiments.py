"""The paper's three evaluation procedures (§3).

* :func:`run_allocation_experiment` — "run by performing only the extend,
  truncate, delete, and create operations ... As soon as the first
  allocation request fails, the external and internal fragmentation are
  computed."
* :func:`run_performance_experiment` — the application test (the §2.2
  workload mix, disks held 90–95 % full) followed by the sequential test
  ("only read and write operations ... each read or write is to an entire
  file"), each measured until the 3×10 s ±0.1 % stabilization rule fires
  or a simulated-time cap is hit.

Throughput is reported as a fraction of the disk system's maximum
sustained sequential bandwidth, the paper's normalization.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from typing import Callable

from ..audit.fingerprint import Fingerprint
from ..audit.invariants import AuditConfig, InvariantAuditor
from ..errors import ConfigurationError, DiskFullError
from ..fault.injector import FaultInjector, FaultSummary
from ..fs.filesystem import FileSystem
from ..obs.metrics import SEEK_DISTANCE_EDGES, MetricsRegistry
from ..obs.telemetry import emit, progress_frame, telemetry_enabled
from ..obs.tracer import TraceData, Tracer, drive_lane
from ..sim.engine import Simulator
from ..sim.meters import ThroughputMeter
from ..sim.rng import (
    PreparedWeights,
    RandomStream,
    StreamLedger,
    install_ledger,
    uninstall_ledger,
)
from ..workload.driver import (
    AllocationTestResult,
    WorkloadDriver,
    run_allocation_until_full,
)
from ..workload.ops import sample_rw_size
from ..workload.profiles import (
    Profile,
    supercomputer,
    time_sharing,
    transaction_processing,
)
from .configs import ExperimentConfig, SystemConfig

#: Default simulated-time caps (milliseconds).  Stabilization usually
#: fires earlier; the caps bound adversarial configurations.
DEFAULT_APP_CAP_MS = 600_000.0
DEFAULT_SEQ_CAP_MS = 600_000.0
DEFAULT_WARMUP_MS = 5_000.0

#: Default initial fill for allocation tests.  TP and SC populations are
#: the paper's fixed file sets (~75 % of capacity) whose extends dominate
#: their truncates, so churn carries them to the first failure.  TS file
#: sizes *hover* (small files delete/recreate at the same size; large
#: files drift up only ~15 %), so its allocation test must start close to
#: full — 90 % — for the churn to reach a failure in bounded time.
ALLOCATION_TEST_FILL = {"TS": 0.90, "TP": 0.75, "SC": 0.75}


def allocation_fill_for(workload: str) -> float:
    """Default allocation-test initial fill for a workload."""
    return ALLOCATION_TEST_FILL.get(workload.strip().upper(), 0.85)


def build_profile(
    workload: str, system: SystemConfig, fill_fraction: float
) -> Profile:
    """Construct the §2.2 profile for a workload at the system's scale.

    TS populations are solved from capacity (sizes stay 8K/96K); TP and SC
    use the paper's populations with file sizes scaled alongside the disk.
    """
    key = workload.strip().upper()
    if key == "TS":
        return time_sharing(system.capacity_bytes, fill_fraction=fill_fraction)
    if key == "TP":
        return transaction_processing(scale=system.scale)
    if key == "SC":
        return supercomputer(scale=system.scale)
    raise ConfigurationError(f"unknown workload {workload!r}")


# ---------------------------------------------------------------------------
# Allocation test
# ---------------------------------------------------------------------------


def run_allocation_experiment(
    config: ExperimentConfig,
    fill_fraction: float | None = None,
    max_operations: int = 5_000_000,
    audit: AuditConfig | None = None,
) -> AllocationTestResult:
    """Fill the disk through workload churn; measure fragmentation.

    ``audit`` attaches an :class:`~repro.audit.InvariantAuditor`; the
    allocation test never enters the event loop, so the auditor sweeps
    per churn *operation* instead of per executed event, plus once at
    the end.  Violations raise
    :class:`~repro.errors.InvariantViolation`.
    """
    if fill_fraction is None:
        fill_fraction = allocation_fill_for(config.workload)
    ledger = None
    if audit is not None:
        ledger = StreamLedger()
        install_ledger(ledger)
    # Same GC gate as the performance test (see there for why it cannot
    # change results): churn is short-lived-object heavy.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        sim = Simulator()
        array = config.system.build_array(sim)
        rng = RandomStream(config.seed, "allocation-experiment")
        allocator = config.policy.build(
            array.capacity_units, config.system.disk_unit_bytes, rng.fork("alloc")
        )
        fs = FileSystem(sim, array, allocator)
        auditor = None
        if audit is not None:
            auditor = InvariantAuditor(audit)
            auditor.observe(
                fs=fs, array=array, allocator=allocator, ledger=ledger
            )
        profile = build_profile(config.workload, config.system, fill_fraction)
        result = run_allocation_until_full(
            fs, profile, seed=config.seed, max_operations=max_operations,
            auditor=auditor,
        )
        if auditor is not None:
            auditor.finish(sim)
        return result
    finally:
        if gc_was_enabled:
            gc.enable()
        if ledger is not None:
            uninstall_ledger()


# ---------------------------------------------------------------------------
# Performance test
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhaseResult:
    """One measured phase (application or sequential).

    Attributes:
        utilization: mean fraction of maximum bandwidth over the final
            stabilization window (the number the paper plots).
        stabilized: whether the ±0.1 % rule fired before the time cap.
        simulated_ms: simulated time the phase consumed.
        bytes_moved: data bytes transferred during measurement.
    """

    utilization: float
    stabilized: bool
    simulated_ms: float
    bytes_moved: float

    @property
    def percent(self) -> float:
        """Utilization as a percentage (paper units)."""
        return 100.0 * self.utilization


@dataclass(frozen=True)
class PerformanceResult:
    """Application + sequential results for one (policy, workload) pair.

    ``io_failures`` and ``faults`` are only non-trivial when the config
    carries a :class:`~repro.fault.plan.FaultSpec`; fault-free runs report
    0 and ``None``.  ``trace`` and ``metrics`` are filled only when the
    experiment was asked to observe itself (``collect_trace`` /
    ``collect_metrics``); carrying them on the result keeps observability
    output flowing through the same cache/pool plumbing as the numbers it
    explains — which is also what lets the determinism tests compare
    traces across worker counts.
    """

    policy_label: str
    workload: str
    application: PhaseResult
    sequential: PhaseResult
    final_utilization: float
    operation_counts: dict[str, int]
    operation_latency_ms: dict[str, float]
    disk_full_events: int
    governor_conversions: int
    io_failures: int = 0
    faults: FaultSummary | None = None
    trace: TraceData | None = None
    metrics: dict | None = None
    #: Canonical state-fingerprint timeline (``audit=`` with fingerprints
    #: on); rides the cache/pool plumbing like traces do, which is what
    #: lets the determinism tests compare timelines across worker counts
    #: and engine variants.
    fingerprints: tuple[Fingerprint, ...] | None = None


class _PhaseMonitor:
    """Periodic stabilization check that can be retired between phases.

    The monitor's tick doubles as the live-telemetry heartbeat: it is an
    event the simulation schedules anyway, so progress frames ride along
    without adding engine work (frames are only built when an emitter is
    installed — see :mod:`repro.obs.telemetry`).
    """

    def __init__(
        self,
        sim: Simulator,
        meter: ThroughputMeter,
        interval_ms: float,
        window: int,
        tolerance: float,
        stage: str = "measure",
        cap_ms: float | None = None,
    ) -> None:
        self._active = True
        self.fired = False
        self._stage = stage
        self._cap_ms = cap_ms
        self._started = sim.now
        sim.process(self._loop(sim, meter, interval_ms, window, tolerance))

    def _loop(self, sim, meter, interval_ms, window, tolerance):
        while self._active:
            yield interval_ms
            if not self._active:
                return
            if telemetry_enabled():
                emit(
                    progress_frame(
                        self._stage,
                        sim.now - self._started,
                        cap_ms=self._cap_ms,
                        events=sim.events_executed,
                    )
                )
            if meter.stabilized(sim.now, window, tolerance):
                self.fired = True
                sim.stop()
                return

    def retire(self) -> None:
        self._active = False


def _prefill(
    fs: FileSystem, driver: WorkloadDriver, profile: Profile, target: float, seed: int
) -> None:
    """Untimed extends until utilization reaches ``target``.

    This is initialization, not measurement: the paper guarantees "the
    disks are at least 90% full ... during the test", and growing the
    population through each type's own extend stream (sizes and type mix
    included) reaches that state without simulating hours of warm-up.
    """
    growers = [t for t in profile.types if t.extend_ratio > 0]
    if not growers:
        return
    rng = RandomStream(seed, "prefill")
    # Prepared once: same cumulative sums (left-to-right float additions)
    # and the same single uniform draw per pick as weighted_choice, so
    # the chosen sequence is bit-identical to rebuilding per iteration.
    prepared = PreparedWeights(
        growers, [t.extend_ratio * t.event_rate for t in growers]
    )
    guard = 0
    while fs.utilization < target:
        file_type = rng.weighted_choice_prepared(prepared)
        population = driver.files.get(file_type.name)
        if not population:
            return
        fs_file = rng.choice(population)
        size = sample_rw_size(rng, file_type)
        try:
            fs.allocate_to(fs_file, fs_file.length_bytes + size)
        except DiskFullError:
            return
        guard += 1
        if guard > 20_000_000:  # pragma: no cover - runaway guard
            raise ConfigurationError("prefill failed to reach target fill")


def _measure_phase(
    sim: Simulator,
    fs: FileSystem,
    max_bandwidth: float,
    cap_ms: float,
    interval_ms: float,
    window: int,
    tolerance: float,
    stage: str = "measure",
) -> PhaseResult:
    """Attach a fresh meter, run to stabilization or the cap, report."""
    meter = ThroughputMeter(max_bandwidth, interval_ms, start_time=sim.now)
    fs.meter = meter
    monitor = _PhaseMonitor(
        sim, meter, interval_ms, window, tolerance, stage=stage, cap_ms=cap_ms
    )
    started = sim.now
    sim.run(until=started + cap_ms)
    monitor.retire()
    fs.meter = None
    return PhaseResult(
        utilization=meter.stable_utilization(sim.now, window),
        stabilized=monitor.fired,
        simulated_ms=sim.now - started,
        bytes_moved=meter.total_bytes,
    )


def collect_metrics_snapshot(
    sim: Simulator,
    fs: FileSystem,
    driver: WorkloadDriver,
    faults: FaultSummary | None = None,
) -> dict:
    """Fold the metrics registry and the simulator's existing counters
    into one JSON-safe snapshot.

    The registry holds only what no pre-existing counter captures
    (histograms, degraded transitions, per-drive maxima); everything the
    subsystems already tracked — per-drive tallies, operation counts,
    allocator request totals, fault-window meters — is merged in here so
    one dict describes the run.
    """
    snapshot = sim.metrics.snapshot()
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    totals = snapshot["totals"]
    counters["sim.events_executed"] = sim.events_executed
    counters["fs.bytes_read"] = fs.bytes_read
    counters["fs.bytes_written"] = fs.bytes_written
    counters.update(fs.allocator.counters())
    for op, count in driver.op_counts.as_dict().items():
        counters[f"workload.ops.{op}"] = count
    counters["workload.disk_full_events"] = driver.disk_full_events
    counters["workload.governor_conversions"] = driver.governor_conversions
    counters["workload.io_failures"] = driver.io_failures
    for drive in fs.disk.drives:
        suffix = f".d{drive.index}"
        counters[f"disk.bytes_moved{suffix}"] = drive.bytes_moved
        totals[f"disk.busy_ms{suffix}"] = drive.busy_ms
    if faults is not None:
        counters["fault.disk_failures"] = faults.disk_failures
        counters["fault.transient_errors"] = faults.transient_errors
        counters["fault.rebuilds_completed"] = faults.rebuilds_completed
        totals["fault.healthy_ms"] = faults.healthy_ms
        totals["fault.degraded_ms"] = faults.degraded_ms
        totals["fault.rebuild_bytes"] = faults.rebuild_bytes
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "totals": dict(sorted(totals.items())),
        "histograms": snapshot["histograms"],
    }


def _attach_observability(sim: Simulator, array) -> None:
    """Wire an attached tracer/registry into the built disk system."""
    tracer = sim.tracer
    if tracer is not None:
        for drive in array.drives:
            tracer.name_lane(
                drive_lane(drive.index),
                f"drive {drive.index} ({drive.geometry.name})",
            )
        tracer.observe_faults()
    metrics = sim.metrics
    if metrics is not None:
        metrics.observe_faults(sim)

        def seek_sink(distance, seek_ms, _observe=metrics.observe):
            _observe("disk.seek_distance_cyl", distance, SEEK_DISTANCE_EDGES)
            _observe("disk.seek_ms_dist", seek_ms)

        for drive in array.drives:
            drive.drive.obs_sink = seek_sink


def run_performance_experiment(
    config: ExperimentConfig,
    app_cap_ms: float = DEFAULT_APP_CAP_MS,
    seq_cap_ms: float = DEFAULT_SEQ_CAP_MS,
    warmup_ms: float = DEFAULT_WARMUP_MS,
    interval_ms: float = 10_000.0,
    window: int = 3,
    tolerance: float = 0.001,
    run_application: bool = True,
    run_sequential: bool = True,
    simulator_factory: Callable[[], Simulator] | None = None,
    collect_trace: bool = False,
    collect_metrics: bool = False,
    audit: AuditConfig | None = None,
) -> PerformanceResult:
    """The §3 application and sequential performance tests.

    Phases: populate (instant) → prefill to the 90–95 % window (instant)
    → short timed warm-up → application test to stabilization → switch
    every user to whole-file operations → sequential test.

    ``simulator_factory`` lets callers supply the engine — e.g. one with
    profiling enabled (``repro profile``) or with the zero-delay fast
    path disabled (the determinism regression tests).  The factory must
    return a fresh :class:`Simulator`; results are identical whichever
    engine variant it builds.

    ``collect_trace`` attaches a span tracer and ships the frozen trace
    on the result; ``collect_metrics`` attaches a metrics registry and
    ships its end-of-run snapshot.  Neither changes the simulated event
    sequence, so the performance numbers are bit-identical with
    observability on or off.

    ``audit`` attaches an :class:`~repro.audit.InvariantAuditor`: swept
    invariant checks (violations raise
    :class:`~repro.errors.InvariantViolation`) and, when the config asks
    for them, a canonical fingerprint timeline shipped on the result.
    Like observability, auditing schedules nothing — the event sequence
    and the reported numbers are identical with it on or off.
    """
    ledger = None
    if audit is not None:
        # Install before any stream exists so the ledger (and therefore
        # the rng fingerprint section) covers every stream in the run.
        ledger = StreamLedger()
        install_ledger(ledger)
    # Collector pauses while the experiment runs: the simulation allocates
    # millions of short-lived objects (events, extents, breakdowns) that
    # reference counting alone reclaims, so generation-0 sweeps are pure
    # overhead (~10% of wall time).  GC never alters program behaviour
    # here — no finalizer in the package touches simulation state — so
    # the event sequence and every result are identical either way.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        sim = Simulator() if simulator_factory is None else simulator_factory()
        if collect_trace:
            sim.tracer = Tracer(sim)
        if collect_metrics:
            sim.metrics = MetricsRegistry()
        array = config.system.build_array(sim)
        _attach_observability(sim, array)
        injector = None
        if config.faults is not None and not config.faults.empty:
            injector = FaultInjector(sim, array, config.faults, seed=config.seed)
        rng = RandomStream(config.seed, "perf-experiment")
        allocator = config.policy.build(
            array.capacity_units, config.system.disk_unit_bytes, rng.fork("alloc")
        )
        fs = FileSystem(sim, array, allocator)
        profile = build_profile(
            config.workload, config.system, config.fill_fraction
        )
        driver = WorkloadDriver(sim, fs, profile, seed=config.seed)
        auditor = None
        if audit is not None:
            auditor = InvariantAuditor(audit).attach(sim)
            auditor.observe(
                fs=fs, array=array, allocator=allocator,
                injector=injector, ledger=ledger,
            )
        if telemetry_enabled():
            emit(progress_frame("populate", sim.now))
        driver.populate()
        target = (driver.lower_bound + driver.upper_bound) / 2.0
        _prefill(fs, driver, profile, target, config.seed)
        driver.start_users()
        if telemetry_enabled():
            emit(progress_frame("warmup", sim.now, cap_ms=warmup_ms))
        sim.run(until=sim.now + warmup_ms)

        idle = PhaseResult(0.0, False, 0.0, 0.0)
        max_bandwidth = array.max_bandwidth_bytes_per_ms
        application = idle
        if run_application:
            application = _measure_phase(
                sim, fs, max_bandwidth, app_cap_ms, interval_ms, window,
                tolerance, stage="application",
            )
        sequential = idle
        if run_sequential:
            driver.mode = "sequential"
            sequential = _measure_phase(
                sim, fs, max_bandwidth, seq_cap_ms, interval_ms, window,
                tolerance, stage="sequential",
            )

        if auditor is not None:
            auditor.finish(sim)
        fault_summary = injector.summary(up_to_time=sim.now) if injector else None
        return _build_performance_result(
            config, fs, driver, sim, application, sequential,
            fault_summary, auditor,
        )
    finally:
        if gc_was_enabled:
            gc.enable()
        if ledger is not None:
            uninstall_ledger()


def _build_performance_result(
    config, fs, driver, sim, application, sequential, fault_summary, auditor
) -> PerformanceResult:
    """Assemble the result record from the finished run's subsystems."""
    return PerformanceResult(
        policy_label=config.policy.label,
        workload=config.workload,
        application=application,
        sequential=sequential,
        final_utilization=fs.utilization,
        operation_counts=driver.op_counts.as_dict(),
        operation_latency_ms={
            op: tally.mean for op, tally in driver.op_latency.items()
        },
        disk_full_events=driver.disk_full_events,
        governor_conversions=driver.governor_conversions,
        io_failures=driver.io_failures,
        faults=fault_summary,
        trace=sim.tracer.freeze() if sim.tracer is not None else None,
        metrics=(
            collect_metrics_snapshot(sim, fs, driver, fault_summary)
            if sim.metrics is not None
            else None
        ),
        fingerprints=(
            tuple(auditor.fingerprints)
            if auditor is not None and auditor.config.fingerprints
            else None
        ),
    )
