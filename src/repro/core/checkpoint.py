"""Checkpoint/resume for long experiment sweeps.

A sweep interrupted halfway — operator Ctrl-C, scheduler preemption, a
machine reboot — should not forfeit the hours already computed.  A
:class:`SweepCheckpoint` makes a sweep resumable from its own on-disk
state, independent of the global result cache:

* ``<dir>/manifest.json`` — the sweep's identity (format version, task
  count) plus the set of completed task keys, rewritten atomically
  (temp + ``os.replace``) after every completion, so the file is always
  a consistent snapshot no matter when the process dies.
* ``<dir>/results/`` — a private :class:`~repro.core.runner.ResultCache`
  holding each completed point's result under its task key.

Resume is key-based: a task whose cache key appears in the manifest
*and* whose result loads cleanly is replayed; everything else re-runs.
Keys cover the entire configuration (policy, workload, system, seed,
fault plan, kwargs), so resuming with a changed sweep definition
naturally re-runs exactly the changed points.  Failed points are never
recorded — a resume retries them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from ..errors import ReproError

MANIFEST_FORMAT = 1


class SweepCheckpoint:
    """Durable progress record for one sweep directory."""

    def __init__(self, directory: str | Path) -> None:
        from .runner import ResultCache  # local import avoids a cycle

        self.directory = Path(directory)
        self.manifest_path = self.directory / "manifest.json"
        self.results = ResultCache(self.directory / "results")
        self._done: set[str] = set()
        self._total = 0

    # -- lifecycle ----------------------------------------------------------

    def begin(self, total: int, resume: bool) -> None:
        """Open the checkpoint for a sweep of ``total`` tasks.

        With ``resume=True`` an existing manifest's completed keys are
        kept; otherwise the sweep starts fresh (stale state is dropped,
        though previously stored results remain loadable if their keys
        come up again).
        """
        self._total = total
        self._done = self._load_done() if resume else set()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.flush()

    def _load_done(self) -> set[str]:
        from .runner import CACHE_FORMAT_VERSION  # local import avoids a cycle

        try:
            with open(self.manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except Exception:
            # A corrupt or missing manifest resumes nothing; the sweep
            # re-runs (results may still replay from the global cache).
            return set()
        if not isinstance(manifest, dict):
            return set()
        # A manifest written under a different cache format holds keys
        # computed with a different hash recipe: none of them can match
        # this sweep's tasks, so a "resume" would silently re-run
        # everything while *appearing* to honor the checkpoint.  Fail
        # loudly instead of guessing.
        stored = manifest.get("cache_format")
        if stored != CACHE_FORMAT_VERSION:
            raise ReproError(
                f"checkpoint at {self.directory} was written under cache "
                f"format {stored!r} but this build uses "
                f"{CACHE_FORMAT_VERSION}; its task keys cannot match. "
                f"Restart the sweep without --resume, or clear the "
                f"checkpoint directory."
            )
        if manifest.get("format") != MANIFEST_FORMAT:
            return set()
        done = manifest.get("done", [])
        if not isinstance(done, list):
            return set()
        return {key for key in done if isinstance(key, str)}

    # -- progress -----------------------------------------------------------

    def result_for(self, key: str) -> Any | None:
        """The stored result for a completed task key, else ``None``."""
        if key not in self._done:
            return None
        return self.results.load(key)

    def record(self, key: str, result: Any) -> None:
        """Persist one completed point and flush the manifest."""
        self.results.store(key, result)
        self._done.add(key)
        self.flush()

    def flush(self) -> None:
        """Atomically rewrite the manifest snapshot (fsynced).

        The temp file is fsynced before the rename: ``os.replace`` alone
        guarantees readers never see a *torn* manifest, but after a power
        cut the rename can survive while the data does not — a SIGKILL
        (or outage) right after ``flush`` returns must never leave an
        empty or stale manifest claiming points that were lost.
        """
        from .runner import CACHE_FORMAT_VERSION  # local import avoids a cycle

        payload = {
            "format": MANIFEST_FORMAT,
            "cache_format": CACHE_FORMAT_VERSION,
            "total": self._total,
            "completed": len(self._done),
            "done": sorted(self._done),
        }
        temp = self.manifest_path.with_name(
            f"{self.manifest_path.name}.{os.getpid()}.tmp"
        )
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=0)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.manifest_path)

    @property
    def completed(self) -> int:
        """Completed task count recorded so far."""
        return len(self._done)
