"""Figure 3 ablation: how contiguous allocation and grow factors interact.

The paper's Figure 3 is an explanatory diagram: with grow factor 1, "any
file over 72K requires a 64K block.  However, when it is time to acquire a
64K block, the next sequential 64K block is not contiguous to the blocks
already allocated" — so the file pays a seek exactly at the tier boundary,
while grow factor 2 defers the boundary to 144K, past most TS files.

This module turns the diagram into a measurable experiment: grow a single
file by 8K appends on an otherwise idle restricted-buddy file system and,
for each file size, record (a) the number of discontiguous block
transitions and (b) the timed whole-file sequential read.  The grow-1
curve shows the discontinuity (and the latency step) arriving at 72K; the
grow-2 curve shows it at 144K.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fs.filesystem import FileSystem
from ..sim.engine import Simulator
from ..sim.rng import RandomStream
from ..units import KIB
from .configs import RestrictedPolicy, SystemConfig


@dataclass(frozen=True)
class GrowthPoint:
    """One measured file size in the Figure 3 ablation."""

    file_size_bytes: int
    grow_factor: int
    extent_count: int
    discontiguities: int
    read_ms: float
    effective_mbps: float


def _count_discontiguities(extents) -> int:
    return sum(
        1
        for previous, current in zip(extents, extents[1:])
        if previous.end != current.start
    )


def grow_factor_ablation(
    grow_factor: int,
    file_sizes_bytes: list[int] | None = None,
    append_bytes: int = 8 * KIB,
    system: SystemConfig | None = None,
    block_sizes: tuple[str, ...] = ("1K", "8K", "64K"),
    seed: int = 1991,
) -> list[GrowthPoint]:
    """Measure read latency vs file size for one grow factor.

    Each file size gets a fresh, empty file system (no competing files),
    so every discontiguity observed is the grow policy's own doing — the
    Figure 3 alignment effect, isolated.
    """
    if file_sizes_bytes is None:
        file_sizes_bytes = [n * 8 * KIB for n in range(1, 25)]  # 8K..192K
    system = system or SystemConfig(scale=0.05)
    policy = RestrictedPolicy(
        block_sizes=block_sizes, grow_factor=grow_factor, clustered=True
    )
    points = []
    for size in file_sizes_bytes:
        sim = Simulator()
        array = system.build_array(sim)
        allocator = policy.build(
            array.capacity_units, system.disk_unit_bytes, RandomStream(seed)
        )
        fs = FileSystem(sim, array, allocator)
        fs_file = fs.create(tag="ablation")
        # Grow by appends, as a file written incrementally would.
        position = 0
        while position < size:
            chunk = min(append_bytes, size - position)
            fs.allocate_to(fs_file, position + chunk)
            position += chunk

        outcome: dict[str, float] = {}

        def reader():
            started = sim.now
            yield from fs.read_whole(fs_file)
            outcome["ms"] = sim.now - started

        sim.process(reader())
        sim.run()
        read_ms = outcome["ms"]
        throughput = (size / (1024 * 1024)) / (read_ms / 1000.0) if read_ms else 0.0
        points.append(
            GrowthPoint(
                file_size_bytes=size,
                grow_factor=grow_factor,
                extent_count=fs_file.handle.extent_count,
                discontiguities=_count_discontiguities(fs_file.handle.extents),
                read_ms=read_ms,
                effective_mbps=throughput,
            )
        )
    return points
