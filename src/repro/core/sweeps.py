"""Parameter sweeps behind Figures 1, 2, 4, and 5.

Figures 1 and 2 sweep the restricted buddy policy over {2, 3, 4, 5 block
sizes} × {grow factor 1, 2} × {clustered, unclustered} for each workload;
Figures 4 and 5 sweep the extent policy over {first fit, best fit} ×
{1..5 extent ranges}.  Each sweep point runs the §3 allocation test
(fragmentation) or performance test (application + sequential) and the
results render as the paper's grouped bars.

Every sweep point is an independent simulation, so all four ``sweep_*``
functions accept an optional :class:`~repro.core.runner.ExperimentRunner`
to fan points across worker processes and replay cached results.  With
``runner=None`` they execute serially and uncached, exactly as before —
and parallel execution is bit-identical to serial because every point
derives its random streams purely from ``(seed, stream name)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workload.driver import AllocationTestResult
from .configs import (
    EXTENT_RANGES_TP_SC,
    EXTENT_RANGES_TS,
    RESTRICTED_CLUSTERING,
    RESTRICTED_GROW_FACTORS,
    RESTRICTED_LADDERS,
    ExperimentConfig,
    ExtentPolicy,
    RestrictedPolicy,
    SystemConfig,
    extent_ranges_for,
)
from .experiments import PerformanceResult
from .runner import ExperimentRunner, ExperimentTask, execute_all


@dataclass(frozen=True)
class RestrictedSweepPoint:
    """One (configuration, workload) cell of Figures 1/2."""

    workload: str
    n_sizes: int
    grow_factor: int
    clustered: bool
    allocation: AllocationTestResult | None = None
    performance: PerformanceResult | None = None

    @property
    def series_label(self) -> str:
        """Legend label matching the paper's four bars per group."""
        mode = "clustered" if self.clustered else "unclustered"
        return f"g={self.grow_factor} {mode}"

    @property
    def group_label(self) -> str:
        """X-axis label: number of block sizes."""
        return f"{self.n_sizes} sizes"


@dataclass(frozen=True)
class ExtentSweepPoint:
    """One (configuration, workload) cell of Figures 4/5 and Table 4."""

    workload: str
    n_ranges: int
    fit: str
    allocation: AllocationTestResult | None = None
    performance: PerformanceResult | None = None

    @property
    def series_label(self) -> str:
        return f"{self.fit}-fit"

    @property
    def group_label(self) -> str:
        return f"{self.n_ranges} range{'s' if self.n_ranges > 1 else ''}"


def restricted_configurations(
    ladders: dict[int, tuple[str, ...]] | None = None,
    grow_factors: tuple[int, ...] = RESTRICTED_GROW_FACTORS,
    clusterings: tuple[bool, ...] = RESTRICTED_CLUSTERING,
) -> list[RestrictedPolicy]:
    """The 16 restricted-buddy configurations of §4.2, in figure order."""
    ladders = ladders or RESTRICTED_LADDERS
    policies = []
    for n_sizes in sorted(ladders):
        for clustered in sorted(clusterings, reverse=True):  # clustered first
            for grow in grow_factors:
                policies.append(
                    RestrictedPolicy(
                        block_sizes=ladders[n_sizes],
                        grow_factor=grow,
                        clustered=clustered,
                    )
                )
    return policies


def sweep_restricted_fragmentation(
    workload: str,
    system: SystemConfig,
    seed: int = 1991,
    fill_fraction: float | None = None,
    ladders: dict[int, tuple[str, ...]] | None = None,
    runner: ExperimentRunner | None = None,
) -> list[RestrictedSweepPoint]:
    """Figure 1: allocation tests over the restricted configurations."""
    policies = restricted_configurations(ladders)
    tasks = [
        ExperimentTask.allocation(
            ExperimentConfig(policy=policy, workload=workload, system=system, seed=seed),
            fill_fraction=fill_fraction,
        )
        for policy in policies
    ]
    results = execute_all(tasks, runner)
    return [
        RestrictedSweepPoint(
            workload=workload,
            n_sizes=len(policy.block_sizes),
            grow_factor=policy.grow_factor,
            clustered=policy.clustered,
            allocation=result,
        )
        for policy, result in zip(policies, results)
    ]


def sweep_restricted_performance(
    workload: str,
    system: SystemConfig,
    seed: int = 1991,
    app_cap_ms: float = 300_000.0,
    seq_cap_ms: float = 300_000.0,
    ladders: dict[int, tuple[str, ...]] | None = None,
    runner: ExperimentRunner | None = None,
) -> list[RestrictedSweepPoint]:
    """Figure 2: performance tests over the restricted configurations."""
    policies = restricted_configurations(ladders)
    tasks = [
        ExperimentTask.performance(
            ExperimentConfig(policy=policy, workload=workload, system=system, seed=seed),
            app_cap_ms=app_cap_ms,
            seq_cap_ms=seq_cap_ms,
        )
        for policy in policies
    ]
    results = execute_all(tasks, runner)
    return [
        RestrictedSweepPoint(
            workload=workload,
            n_sizes=len(policy.block_sizes),
            grow_factor=policy.grow_factor,
            clustered=policy.clustered,
            performance=result,
        )
        for policy, result in zip(policies, results)
    ]


def extent_configurations(
    workload: str, fits: tuple[str, ...] = ("first", "best")
) -> list[ExtentPolicy]:
    """The extent-policy configurations of §4.3 for one workload."""
    table = EXTENT_RANGES_TS if workload.upper() == "TS" else EXTENT_RANGES_TP_SC
    policies = []
    for n_ranges in sorted(table):
        for fit in fits:
            policies.append(
                ExtentPolicy(range_means=extent_ranges_for(workload, n_ranges), fit=fit)
            )
    return policies


def sweep_extent_fragmentation(
    workload: str,
    system: SystemConfig,
    seed: int = 1991,
    fill_fraction: float | None = None,
    fits: tuple[str, ...] = ("first", "best"),
    runner: ExperimentRunner | None = None,
) -> list[ExtentSweepPoint]:
    """Figure 4 (and Table 4): allocation tests over the extent configs."""
    policies = extent_configurations(workload, fits)
    tasks = [
        ExperimentTask.allocation(
            ExperimentConfig(policy=policy, workload=workload, system=system, seed=seed),
            fill_fraction=fill_fraction,
        )
        for policy in policies
    ]
    results = execute_all(tasks, runner)
    return [
        ExtentSweepPoint(
            workload=workload,
            n_ranges=len(policy.range_means),
            fit=policy.fit,
            allocation=result,
        )
        for policy, result in zip(policies, results)
    ]


def sweep_extent_performance(
    workload: str,
    system: SystemConfig,
    seed: int = 1991,
    app_cap_ms: float = 300_000.0,
    seq_cap_ms: float = 300_000.0,
    fits: tuple[str, ...] = ("first", "best"),
    runner: ExperimentRunner | None = None,
) -> list[ExtentSweepPoint]:
    """Figure 5: performance tests over the extent configurations."""
    policies = extent_configurations(workload, fits)
    tasks = [
        ExperimentTask.performance(
            ExperimentConfig(policy=policy, workload=workload, system=system, seed=seed),
            app_cap_ms=app_cap_ms,
            seq_cap_ms=seq_cap_ms,
        )
        for policy in policies
    ]
    results = execute_all(tasks, runner)
    return [
        ExtentSweepPoint(
            workload=workload,
            n_ranges=len(policy.range_means),
            fit=policy.fit,
            performance=result,
        )
        for policy, result in zip(policies, results)
    ]
