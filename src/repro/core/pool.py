"""Supervised worker pool: timeouts, crash isolation, bounded retries.

``concurrent.futures.ProcessPoolExecutor`` cannot kill an individual
worker (a hung task hangs the sweep) and a worker that dies abruptly
poisons the whole pool (``BrokenProcessPool`` loses every in-flight
task).  Long sweeps need stronger guarantees, so :class:`SupervisedPool`
manages its own ``spawn`` processes over pipes:

* **Wall-clock timeouts** — a task that exceeds ``timeout_s`` has its
  worker killed and is retried or reported, while sibling tasks keep
  running.
* **Crash isolation** — a worker that dies (segfault, OOM kill,
  ``SIGKILL`` from an operator) is detected, its task is requeued, and a
  replacement worker is spawned.  No task is ever lost.
* **Bounded retries with seeded backoff** — crashes and timeouts retry
  up to ``retries`` times with exponential backoff plus deterministic
  jitter (derived from :class:`~repro.sim.rng.RandomStream`, so two runs
  of the same sweep back off identically).  Ordinary task exceptions are
  *not* retried: the simulation is deterministic, so a failing
  configuration fails identically every time — those travel back as
  structured errors instead.

Results are yielded as ``(index, task, (status, payload, elapsed_s))``
in completion order; the caller reorders by index, which keeps parallel
sweeps bit-identical to serial ones regardless of scheduling.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Iterator, Sequence

from ..errors import ConfigurationError
from ..sim.rng import RandomStream

#: How often (seconds) the supervisor wakes to check deadlines and
#: worker liveness when no result is ready.
_POLL_INTERVAL_S = 0.1


def _pool_worker_main(conn) -> None:  # pragma: no cover - child process
    """Worker loop: receive a task, run it, send the outcome back.

    Runs in a spawned child.  ``None`` is the shutdown sentinel.  The
    callable is received once per task so the parent can ship arbitrary
    work functions without global registration.

    While a task runs, a telemetry emitter is installed that streams
    ``("progress", frame)`` messages over the same pipe; the supervisor
    routes them to its telemetry callback.  Emitter exceptions are not
    swallowed: a worker whose parent is gone should die, and the
    supervisor's crash handling takes over from there.
    """
    from ..obs.telemetry import install_emitter, uninstall_emitter

    try:
        while True:
            item = conn.recv()
            if item is None:
                return
            work_fn, payload = item
            install_emitter(lambda frame: conn.send(("progress", frame)))
            try:
                conn.send(("done", work_fn(payload)))
            except Exception:  # noqa: BLE001 - structured failure channel
                conn.send(("raised", traceback.format_exc()))
            finally:
                uninstall_emitter()
    except (EOFError, KeyboardInterrupt):
        return


@dataclass
class _Assignment:
    """One task attempt in flight on a worker."""

    index: int
    payload: Any
    attempt: int  # 0 = first try
    deadline: float | None  # time.monotonic() cutoff, None = no timeout


@dataclass
class _Retry:
    """A task waiting out its backoff before re-entering the queue."""

    ready_at: float
    index: int
    payload: Any
    attempt: int


@dataclass
class PoolStats:
    """Supervision counters for reporting and tests."""

    crashes: int = 0
    timeouts: int = 0
    retries: int = 0
    workers_replaced: int = 0
    details: list[str] = field(default_factory=list)


class SupervisedPool:
    """Run tasks on supervised spawn workers; survive hangs and crashes.

    Args:
        work_fn: picklable callable applied to each task payload in a
            worker; its return value travels back verbatim.
        n_workers: worker process count (capped at the task count).
        timeout_s: per-attempt wall-clock budget; ``None`` disables.
        retries: extra attempts granted after a crash or timeout.
        backoff_base_s: first retry delay; doubles per attempt.
        jitter_seed: seeds the deterministic backoff jitter.
        telemetry: optional ``(task index, frame)`` callback for the
            progress frames workers stream alongside their results.
    """

    def __init__(
        self,
        work_fn: Callable[[Any], Any],
        n_workers: int,
        timeout_s: float | None = None,
        retries: int = 0,
        backoff_base_s: float = 0.5,
        jitter_seed: int = 0,
        telemetry: Callable[[int, dict], None] | None = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"need at least one worker: {n_workers}")
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError(f"timeout must be positive: {timeout_s}")
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0: {retries}")
        self.work_fn = work_fn
        self.n_workers = n_workers
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.jitter_seed = jitter_seed
        self.telemetry = telemetry
        self.stats = PoolStats()
        self._context = get_context("spawn")
        self._workers: dict[Any, tuple[Any, _Assignment | None]] = {}

    # -- public API ---------------------------------------------------------

    def run(
        self, items: Sequence[tuple[int, Any]]
    ) -> Iterator[tuple[int, Any, tuple[str, Any, float]]]:
        """Execute ``(index, payload)`` items; yield outcomes as they land.

        Outcome statuses mirror the runner's worker protocol: ``"ok"``
        carries the work function's return value, ``"error"`` carries a
        human-readable failure description (task exception traceback,
        crash report, or timeout report).
        """
        queue: deque[tuple[int, Any, int]] = deque(
            (index, payload, 0) for index, payload in items
        )
        retries: list[_Retry] = []
        outstanding = len(queue)
        try:
            for _ in range(min(self.n_workers, len(queue))):
                self._spawn_worker()
            while outstanding > 0:
                self._promote_ready_retries(retries, queue)
                self._assign_idle_workers(queue)
                for event in self._poll(queue, retries):
                    outstanding -= 1
                    yield event
        finally:
            self._shutdown()

    # -- supervision internals ----------------------------------------------

    def _spawn_worker(self) -> None:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_pool_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        self._workers[parent_conn] = (process, None)

    def _assign_idle_workers(self, queue: deque) -> None:
        for conn, (process, assignment) in list(self._workers.items()):
            if assignment is not None or not queue:
                continue
            index, payload, attempt = queue.popleft()
            deadline = (
                time.monotonic() + self.timeout_s
                if self.timeout_s is not None
                else None
            )
            conn.send((self.work_fn, payload))
            self._workers[conn] = (
                process,
                _Assignment(index, payload, attempt, deadline),
            )

    def _promote_ready_retries(self, retries: list[_Retry], queue: deque) -> None:
        now = time.monotonic()
        ready = [r for r in retries if r.ready_at <= now]
        for r in sorted(ready, key=lambda r: (r.ready_at, r.index)):
            retries.remove(r)
            queue.append((r.index, r.payload, r.attempt))

    def _next_wakeup(self, retries: list[_Retry]) -> float:
        """Seconds to sleep in ``connection.wait`` before re-checking."""
        now = time.monotonic()
        wake = now + _POLL_INTERVAL_S
        for _, assignment in self._workers.values():
            if assignment is not None and assignment.deadline is not None:
                wake = min(wake, assignment.deadline)
        for r in retries:
            wake = min(wake, r.ready_at)
        return max(0.0, wake - now)

    def _poll(self, queue: deque, retries: list[_Retry]):
        """One supervision step: collect results, reap the dead, enforce
        deadlines.  Yields finished outcomes."""
        busy = [
            conn
            for conn, (_, assignment) in self._workers.items()
            if assignment is not None
        ]
        if busy:
            readable = connection_wait(busy, timeout=self._next_wakeup(retries))
        else:
            # Everything in flight is waiting out a backoff.
            time.sleep(self._next_wakeup(retries))
            readable = []

        for conn in readable:
            process, assignment = self._workers[conn]
            started = (
                assignment.deadline - self.timeout_s
                if assignment.deadline is not None
                else None
            )
            elapsed = (
                time.monotonic() - started if started is not None else 0.0
            )
            finished = None
            try:
                # Drain progress frames queued ahead of the result; the
                # assignment stays in flight until a terminal message
                # ("done"/"raised") arrives, so timeouts and crash
                # detection still see the task as running.
                while True:
                    kind, payload = conn.recv()
                    if kind == "progress":
                        if self.telemetry is not None:
                            self.telemetry(assignment.index, payload)
                        if not conn.poll():
                            break
                    else:
                        finished = (kind, payload)
                        break
            except (EOFError, OSError):
                # Died between finishing and reporting: treat as a crash.
                continue
            if finished is None:
                continue
            kind, payload = finished
            self._workers[conn] = (process, None)
            if kind == "done":
                yield assignment.index, assignment.payload, payload
            else:
                yield (
                    assignment.index,
                    assignment.payload,
                    ("error", payload, elapsed),
                )

        now = time.monotonic()
        for conn, (process, assignment) in list(self._workers.items()):
            if assignment is None:
                continue
            if not process.is_alive():
                self.stats.crashes += 1
                self.stats.workers_replaced += 1
                detail = (
                    f"worker pid {process.pid} died (exitcode "
                    f"{process.exitcode}) running task {assignment.index}"
                )
                self.stats.details.append(detail)
                conn.close()
                del self._workers[conn]
                self._spawn_worker()
                yield from self._retry_or_fail(assignment, detail, retries)
            elif assignment.deadline is not None and now >= assignment.deadline:
                self.stats.timeouts += 1
                self.stats.workers_replaced += 1
                detail = (
                    f"task {assignment.index} exceeded its {self.timeout_s:g}s "
                    f"wall-clock timeout; worker pid {process.pid} killed"
                )
                self.stats.details.append(detail)
                process.kill()
                process.join()
                conn.close()
                del self._workers[conn]
                self._spawn_worker()
                yield from self._retry_or_fail(assignment, detail, retries)

    def _retry_or_fail(
        self, assignment: _Assignment, detail: str, retries: list[_Retry]
    ):
        if assignment.attempt < self.retries:
            self.stats.retries += 1
            delay = self.backoff_base_s * (2.0**assignment.attempt)
            jitter = RandomStream(
                self.jitter_seed,
                f"retry/{assignment.index}/{assignment.attempt}",
            ).uniform(0.0, 0.5 * delay)
            retries.append(
                _Retry(
                    ready_at=time.monotonic() + delay + jitter,
                    index=assignment.index,
                    payload=assignment.payload,
                    attempt=assignment.attempt + 1,
                )
            )
            return
        yield (
            assignment.index,
            assignment.payload,
            (
                "error",
                f"{detail} (after {assignment.attempt + 1} attempt(s), "
                f"retries exhausted)",
                0.0,
            ),
        )

    def _shutdown(self) -> None:
        for conn, (process, _) in self._workers.items():
            try:
                conn.send(None)
            except (OSError, BrokenPipeError):
                pass
        deadline = time.monotonic() + 2.0
        for conn, (process, _) in self._workers.items():
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join()
            conn.close()
        self._workers.clear()
