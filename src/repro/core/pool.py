"""Supervised worker execution: process management + task scheduling.

``concurrent.futures.ProcessPoolExecutor`` cannot kill an individual
worker (a hung task hangs the sweep) and a worker that dies abruptly
poisons the whole pool (``BrokenProcessPool`` loses every in-flight
task).  Long sweeps — and the long-running experiment service built on
top of them — need stronger guarantees, so this module manages its own
``spawn`` processes over pipes, split into two layers:

* :class:`WorkerCrew` — **process management only**.  Spawns workers,
  ships assignments over pipes, collects results and progress frames,
  detects crashed workers, enforces per-assignment wall-clock deadlines
  (killing the worker), and replaces casualties.  It has no opinion
  about *which* task runs next or whether a failure should retry.
* :class:`TaskScheduler` — **scheduling policy only**.  Owns the pending
  queue and the retry/backoff state, decides dispatch order, and turns
  crew failures into either a deterministic backoff retry or a final
  error outcome.  Tasks can be fed incrementally (:meth:`~TaskScheduler.add`
  at any time), which is what lets a network service pour requests into
  the same machinery a local sweep uses.

:class:`SupervisedPool` composes the two behind the original one-shot
``run(items)`` API and keeps its guarantees:

* **Wall-clock timeouts** — a task that exceeds ``timeout_s`` has its
  worker killed and is retried or reported, while sibling tasks keep
  running.
* **Crash isolation** — a worker that dies (segfault, OOM kill,
  ``SIGKILL`` from an operator) is detected, its task is requeued, and a
  replacement worker is spawned.  No task is ever lost.
* **Bounded retries with seeded backoff** — crashes and timeouts retry
  up to ``retries`` times with exponential backoff plus deterministic
  jitter (see :func:`backoff_delay`: two runs of the same sweep back off
  identically).  Ordinary task exceptions are *not* retried: the
  simulation is deterministic, so a failing configuration fails
  identically every time — those travel back as structured errors.

Results are yielded as ``(index, task, (status, payload, elapsed_s))``
in completion order; the caller reorders by index, which keeps parallel
sweeps bit-identical to serial ones regardless of scheduling.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Iterator, Sequence

from ..errors import ConfigurationError
from ..sim.rng import RandomStream

#: How often (seconds) the supervisor wakes to check deadlines and
#: worker liveness when no result is ready.
_POLL_INTERVAL_S = 0.1


def _pool_worker_main(conn) -> None:  # pragma: no cover - child process
    """Worker loop: receive a task, run it, send the outcome back.

    Runs in a spawned child.  ``None`` is the shutdown sentinel.  The
    callable is received once per task so the parent can ship arbitrary
    work functions without global registration.

    While a task runs, a telemetry emitter is installed that streams
    ``("progress", frame)`` messages over the same pipe; the supervisor
    routes them to its telemetry callback.  Emitter exceptions are not
    swallowed: a worker whose parent is gone should die, and the
    supervisor's crash handling takes over from there.
    """
    from ..obs.telemetry import install_emitter, uninstall_emitter

    try:
        while True:
            item = conn.recv()
            if item is None:
                return
            work_fn, payload = item
            install_emitter(lambda frame: conn.send(("progress", frame)))
            try:
                conn.send(("done", work_fn(payload)))
            except Exception:  # noqa: BLE001 - structured failure channel
                conn.send(("raised", traceback.format_exc()))
            finally:
                uninstall_emitter()
    except (EOFError, KeyboardInterrupt):
        return


def backoff_delay(
    jitter_seed: int, index: int, attempt: int, base_s: float
) -> float:
    """The deterministic delay before retry ``attempt + 1`` of a task.

    Exponential in the attempt number plus seeded jitter: the jitter
    stream is derived purely from ``(jitter_seed, index, attempt)``, so
    two runs of the same sweep — or a service restart replaying the same
    request — produce the identical backoff schedule.
    """
    delay = base_s * (2.0**attempt)
    jitter = RandomStream(
        jitter_seed, f"retry/{index}/{attempt}"
    ).uniform(0.0, 0.5 * delay)
    return delay + jitter


def backoff_schedule(
    jitter_seed: int, index: int, retries: int, base_s: float
) -> list[float]:
    """Every retry delay a task could experience, in attempt order."""
    return [
        backoff_delay(jitter_seed, index, attempt, base_s)
        for attempt in range(retries)
    ]


@dataclass
class _Assignment:
    """One task attempt in flight on a worker."""

    index: int
    payload: Any
    attempt: int  # 0 = first try
    deadline: float | None  # time.monotonic() cutoff, None = no timeout


@dataclass
class _Retry:
    """A task waiting out its backoff before re-entering the queue."""

    ready_at: float
    index: int
    payload: Any
    attempt: int


@dataclass
class PoolStats:
    """Supervision counters for reporting and tests."""

    crashes: int = 0
    timeouts: int = 0
    retries: int = 0
    workers_replaced: int = 0
    details: list[str] = field(default_factory=list)


@dataclass
class CrewEvent:
    """One terminal thing that happened to an in-flight assignment.

    ``kind`` is ``"done"`` (the worker reported an outcome — including a
    task exception, which is terminal and never retried) or ``"failed"``
    (the *worker* failed: crash or deadline kill; the scheduler decides
    whether the task retries).
    """

    kind: str
    assignment: _Assignment
    outcome: tuple[str, Any, float] | None = None
    detail: str | None = None


class WorkerCrew:
    """Process management: spawned workers, pipes, deadlines, casualties.

    The crew knows nothing about queues, priorities, or retry policy —
    it accepts one assignment per idle worker, reports
    :class:`CrewEvent`s from :meth:`poll`, and keeps its worker count
    stable by replacing the dead.  Both the one-shot
    :class:`SupervisedPool` and the long-running experiment service
    drive the same crew.

    Args:
        work_fn: picklable callable applied to each assignment payload
            in a worker; its return value travels back verbatim.
        timeout_s: per-assignment wall-clock budget enforced by the
            crew (the worker is killed at the deadline); ``None``
            disables.
        telemetry: optional ``(task index, frame)`` callback for the
            progress frames workers stream alongside their results.
        stats: shared :class:`PoolStats` to increment; a private one is
            created when omitted.
    """

    def __init__(
        self,
        work_fn: Callable[[Any], Any],
        timeout_s: float | None = None,
        telemetry: Callable[[int, dict], None] | None = None,
        stats: PoolStats | None = None,
    ) -> None:
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError(f"timeout must be positive: {timeout_s}")
        self.work_fn = work_fn
        self.timeout_s = timeout_s
        self.telemetry = telemetry
        self.stats = stats if stats is not None else PoolStats()
        self._context = get_context("spawn")
        self._workers: dict[Any, tuple[Any, _Assignment | None]] = {}

    # -- sizing --------------------------------------------------------------

    @property
    def size(self) -> int:
        """Living worker processes (busy + idle)."""
        return len(self._workers)

    @property
    def busy(self) -> int:
        """Workers currently running an assignment."""
        return sum(
            1 for _, assignment in self._workers.values() if assignment is not None
        )

    @property
    def idle(self) -> int:
        """Workers ready for an assignment."""
        return self.size - self.busy

    def ensure_workers(self, n: int) -> None:
        """Spawn workers until at least ``n`` are alive."""
        while self.size < n:
            self._spawn_worker()

    def _spawn_worker(self) -> None:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_pool_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        self._workers[parent_conn] = (process, None)

    # -- dispatch ------------------------------------------------------------

    def try_assign(self, index: int, payload: Any, attempt: int = 0) -> bool:
        """Ship one task to an idle worker; False when none is idle."""
        while True:
            idle = next(
                (
                    conn
                    for conn, (_, assignment) in self._workers.items()
                    if assignment is None
                ),
                None,
            )
            if idle is None:
                return False
            process, _ = self._workers[idle]
            deadline = (
                time.monotonic() + self.timeout_s
                if self.timeout_s is not None
                else None
            )
            try:
                idle.send((self.work_fn, payload))
            except OSError:
                # The worker died before its first assignment (startup
                # import failure, OOM kill): replace it and retry on the
                # replacement rather than poisoning the caller with a
                # broken pipe.
                self.stats.workers_replaced += 1
                self.stats.details.append(
                    f"worker pid {process.pid} unreachable at dispatch; replaced"
                )
                process.kill()
                process.join()
                idle.close()
                del self._workers[idle]
                self._spawn_worker()
                continue
            self._workers[idle] = (
                process,
                _Assignment(index, payload, attempt, deadline),
            )
            return True

    def kill_one(self) -> int | None:
        """SIGKILL one busy worker (chaos hook); returns its task index.

        The kill is observed by the next :meth:`poll` as an ordinary
        worker crash — the worker is replaced and the scheduler's retry
        policy applies — which is exactly what makes it useful for
        fault drills: the recovery path exercised is the real one.
        """
        for _, (process, assignment) in self._workers.items():
            if assignment is None:
                continue
            process.kill()
            return assignment.index
        return None

    # -- supervision ---------------------------------------------------------

    def next_deadline(self) -> float | None:
        """The earliest in-flight deadline (monotonic), if any."""
        deadlines = [
            a.deadline
            for _, a in self._workers.values()
            if a is not None and a.deadline is not None
        ]
        return min(deadlines) if deadlines else None

    def poll(self, timeout_s: float) -> list[CrewEvent]:
        """One supervision step: collect results, reap the dead, enforce
        deadlines.  Blocks up to ``timeout_s`` waiting for activity."""
        events: list[CrewEvent] = []
        busy = [
            conn
            for conn, (_, assignment) in self._workers.items()
            if assignment is not None
        ]
        now = time.monotonic()
        wait = timeout_s
        deadline = self.next_deadline()
        if deadline is not None:
            wait = min(wait, max(0.0, deadline - now))
        if busy:
            readable = connection_wait(busy, timeout=wait)
        else:
            if wait > 0:
                time.sleep(wait)
            readable = []

        for conn in readable:
            process, assignment = self._workers[conn]
            started = (
                assignment.deadline - self.timeout_s
                if assignment.deadline is not None
                else None
            )
            elapsed = (
                time.monotonic() - started if started is not None else 0.0
            )
            finished = None
            try:
                # Drain progress frames queued ahead of the result; the
                # assignment stays in flight until a terminal message
                # ("done"/"raised") arrives, so timeouts and crash
                # detection still see the task as running.
                while True:
                    kind, payload = conn.recv()
                    if kind == "progress":
                        if self.telemetry is not None:
                            self.telemetry(assignment.index, payload)
                        if not conn.poll():
                            break
                    else:
                        finished = (kind, payload)
                        break
            except (EOFError, OSError):
                # Died between finishing and reporting: treat as a crash
                # (caught by the liveness check below).
                continue
            if finished is None:
                continue
            kind, payload = finished
            self._workers[conn] = (process, None)
            if kind == "done":
                events.append(CrewEvent("done", assignment, outcome=payload))
            else:
                events.append(
                    CrewEvent(
                        "done",
                        assignment,
                        outcome=("error", payload, elapsed),
                    )
                )

        now = time.monotonic()
        for conn, (process, assignment) in list(self._workers.items()):
            if assignment is None:
                continue
            if not process.is_alive():
                self.stats.crashes += 1
                self.stats.workers_replaced += 1
                detail = (
                    f"worker pid {process.pid} died (exitcode "
                    f"{process.exitcode}) running task {assignment.index}"
                )
                self.stats.details.append(detail)
                conn.close()
                del self._workers[conn]
                self._spawn_worker()
                events.append(CrewEvent("failed", assignment, detail=detail))
            elif assignment.deadline is not None and now >= assignment.deadline:
                self.stats.timeouts += 1
                self.stats.workers_replaced += 1
                detail = (
                    f"task {assignment.index} exceeded its {self.timeout_s:g}s "
                    f"wall-clock timeout; worker pid {process.pid} killed"
                )
                self.stats.details.append(detail)
                process.kill()
                process.join()
                conn.close()
                del self._workers[conn]
                self._spawn_worker()
                events.append(CrewEvent("failed", assignment, detail=detail))
        return events

    def shutdown(self) -> None:
        """Stop every worker: polite sentinel first, SIGKILL stragglers.

        Safe to call repeatedly and from ``finally`` blocks; guarantees
        every spawned child is reaped (joined) and every pipe closed no
        matter how the caller exited, so repeated in-process crews leak
        neither processes nor descriptors.
        """
        for conn, (process, _) in self._workers.items():
            try:
                conn.send(None)
            except (OSError, BrokenPipeError):
                pass
        deadline = time.monotonic() + 2.0
        for conn, (process, _) in self._workers.items():
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join()
            try:
                conn.close()
            except OSError:
                pass
        self._workers.clear()


class TaskScheduler:
    """Scheduling policy over a :class:`WorkerCrew`: queueing + retries.

    Tasks enter through :meth:`add` — up front for a one-shot sweep, or
    continuously from a network front door — and leave as outcome
    triples from :meth:`step`.  Worker failures (crash, deadline kill)
    consult the retry budget and re-queue after a deterministic backoff;
    task exceptions are terminal.

    Args:
        crew: the worker crew to drive.
        retries: extra attempts granted after a crash or timeout.
        backoff_base_s: first retry delay; doubles per attempt.
        jitter_seed: seeds the deterministic backoff jitter.
    """

    def __init__(
        self,
        crew: WorkerCrew,
        retries: int = 0,
        backoff_base_s: float = 0.5,
        jitter_seed: int = 0,
    ) -> None:
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0: {retries}")
        self.crew = crew
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.jitter_seed = jitter_seed
        self.stats = crew.stats
        self._queue: deque[tuple[int, Any, int]] = deque()
        self._retries: list[_Retry] = []
        self._outstanding = 0

    # -- feeding -------------------------------------------------------------

    def add(self, index: int, payload: Any) -> None:
        """Enqueue one task; callable at any time, including mid-run."""
        self._queue.append((index, payload, 0))
        self._outstanding += 1

    @property
    def outstanding(self) -> int:
        """Tasks accepted but not yet resolved into an outcome."""
        return self._outstanding

    @property
    def queued(self) -> int:
        """Tasks waiting for a worker (excluding backoff waits)."""
        return len(self._queue)

    @property
    def has_capacity(self) -> bool:
        """True when a newly added task could dispatch immediately."""
        return self.crew.idle > 0 and not self._queue and not self._retries

    # -- one supervision step ------------------------------------------------

    def step(
        self, max_wait_s: float = _POLL_INTERVAL_S
    ) -> list[tuple[int, Any, tuple[str, Any, float]]]:
        """Promote retries, dispatch, poll the crew once; return outcomes.

        Blocks at most ``max_wait_s`` (less when a deadline or a backoff
        expiry lands sooner).  An empty return just means nothing
        finished this step.
        """
        self._promote_ready_retries()
        self._dispatch()
        outcomes: list[tuple[int, Any, tuple[str, Any, float]]] = []
        for event in self.crew.poll(self._wait_budget(max_wait_s)):
            if event.kind == "done":
                self._outstanding -= 1
                outcomes.append(
                    (event.assignment.index, event.assignment.payload, event.outcome)
                )
            else:
                outcome = self._retry_or_fail(event.assignment, event.detail)
                if outcome is not None:
                    self._outstanding -= 1
                    outcomes.append(outcome)
        return outcomes

    # -- internals -----------------------------------------------------------

    def _wait_budget(self, max_wait_s: float) -> float:
        now = time.monotonic()
        wake = now + max_wait_s
        for r in self._retries:
            wake = min(wake, r.ready_at)
        # If work is queued but every worker is busy, the crew's poll
        # will return as soon as one frees up; deadlines are handled by
        # the crew itself.
        return max(0.0, wake - now)

    def _promote_ready_retries(self) -> None:
        now = time.monotonic()
        ready = [r for r in self._retries if r.ready_at <= now]
        for r in sorted(ready, key=lambda r: (r.ready_at, r.index)):
            self._retries.remove(r)
            self._queue.append((r.index, r.payload, r.attempt))

    def _dispatch(self) -> None:
        while self._queue:
            index, payload, attempt = self._queue[0]
            if not self.crew.try_assign(index, payload, attempt):
                return
            self._queue.popleft()

    def _retry_or_fail(
        self, assignment: _Assignment, detail: str
    ) -> tuple[int, Any, tuple[str, Any, float]] | None:
        if assignment.attempt < self.retries:
            self.stats.retries += 1
            delay = backoff_delay(
                self.jitter_seed,
                assignment.index,
                assignment.attempt,
                self.backoff_base_s,
            )
            self._retries.append(
                _Retry(
                    ready_at=time.monotonic() + delay,
                    index=assignment.index,
                    payload=assignment.payload,
                    attempt=assignment.attempt + 1,
                )
            )
            return None
        return (
            assignment.index,
            assignment.payload,
            (
                "error",
                f"{detail} (after {assignment.attempt + 1} attempt(s), "
                f"retries exhausted)",
                0.0,
            ),
        )


class SupervisedPool:
    """Run tasks on supervised spawn workers; survive hangs and crashes.

    A thin one-shot facade over :class:`WorkerCrew` +
    :class:`TaskScheduler` preserving the original API: construct, call
    :meth:`run` once with every item, iterate outcomes.

    Args:
        work_fn: picklable callable applied to each task payload in a
            worker; its return value travels back verbatim.
        n_workers: worker process count (capped at the task count).
        timeout_s: per-attempt wall-clock budget; ``None`` disables.
        retries: extra attempts granted after a crash or timeout.
        backoff_base_s: first retry delay; doubles per attempt.
        jitter_seed: seeds the deterministic backoff jitter.
        telemetry: optional ``(task index, frame)`` callback for the
            progress frames workers stream alongside their results.
    """

    def __init__(
        self,
        work_fn: Callable[[Any], Any],
        n_workers: int,
        timeout_s: float | None = None,
        retries: int = 0,
        backoff_base_s: float = 0.5,
        jitter_seed: int = 0,
        telemetry: Callable[[int, dict], None] | None = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"need at least one worker: {n_workers}")
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError(f"timeout must be positive: {timeout_s}")
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0: {retries}")
        self.work_fn = work_fn
        self.n_workers = n_workers
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.jitter_seed = jitter_seed
        self.telemetry = telemetry
        self.stats = PoolStats()

    def run(
        self, items: Sequence[tuple[int, Any]]
    ) -> Iterator[tuple[int, Any, tuple[str, Any, float]]]:
        """Execute ``(index, payload)`` items; yield outcomes as they land.

        Outcome statuses mirror the runner's worker protocol: ``"ok"``
        carries the work function's return value, ``"error"`` carries a
        human-readable failure description (task exception traceback,
        crash report, or timeout report).
        """
        crew = WorkerCrew(
            self.work_fn,
            timeout_s=self.timeout_s,
            telemetry=self.telemetry,
            stats=self.stats,
        )
        scheduler = TaskScheduler(
            crew,
            retries=self.retries,
            backoff_base_s=self.backoff_base_s,
            jitter_seed=self.jitter_seed,
        )
        for index, payload in items:
            scheduler.add(index, payload)
        try:
            crew.ensure_workers(min(self.n_workers, scheduler.outstanding))
            while scheduler.outstanding > 0:
                yield from scheduler.step()
        finally:
            crew.shutdown()
