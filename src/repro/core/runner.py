"""Parallel experiment execution with deterministic result caching.

Every figure in the paper is a sweep of *independent* stochastic
simulations: each point derives its random streams purely from
``(seed, stream name)`` (see :mod:`repro.sim.rng`), so points can run in
any order, in any process, and produce bit-identical results.  This
module exploits that:

* :class:`ExperimentTask` names one point — a test kind plus an
  :class:`ExperimentConfig` and the experiment keyword arguments — and
  derives a stable content hash from it.
* :class:`ResultCache` persists finished results on disk under that
  hash, so re-running a figure replays cached points instantly.
* :class:`ExperimentRunner` fans pending tasks across a supervised
  ``spawn`` worker pool (:mod:`repro.core.pool`), reports per-point
  timing through an optional progress callback, and routes per-point
  failures into a structured :class:`PointOutcome.error` channel instead
  of letting one diverging configuration kill the whole sweep.

Supervision (all opt-in, all deterministic): per-task wall-clock
timeouts, bounded retry with seeded exponential backoff for crashed or
timed-out workers, checkpoint/resume of sweeps through
:class:`~repro.core.checkpoint.SweepCheckpoint`, and a graceful
``KeyboardInterrupt`` path that flushes partial results and raises
:class:`~repro.errors.SweepInterrupted` for the CLI to turn into exit
code 130.

``jobs=1`` (the default) executes inline in the calling process — no
pool, no pickling — and is the reference behavior: parallel execution is
required to be bit-identical to it.  (Setting a timeout forces the pool
even at ``jobs=1``: only a separate process can be killed mid-task.)

Cache keys cover the policy configuration (class name and every field),
the workload, the system (geometry included), the seed, the test kind,
and the experiment keyword arguments (caps, tolerances, fill fractions),
plus a cache format version.  Change any of these and the key changes;
delete the cache directory to invalidate everything.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import itertools
import json
import os
import pickle
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from ..errors import ConfigurationError, ExperimentError, SweepInterrupted
from ..obs.telemetry import install_emitter, uninstall_emitter
from .checkpoint import SweepCheckpoint
from .configs import ExperimentConfig
from .experiments import run_allocation_experiment, run_performance_experiment
from .pool import SupervisedPool

#: Bump when result dataclasses or experiment semantics change shape;
#: old cache entries then miss instead of deserializing stale science.
#: 2: checksummed cache entries; PerformanceResult gained fault fields.
#: 3: PerformanceResult gained trace/metrics fields (repro.obs).
#: 4: PerformanceResult gained the fingerprint timeline (repro.audit).
CACHE_FORMAT_VERSION = 4

#: Test kinds and the §3 procedures they dispatch to.
_EXPERIMENT_KINDS: dict[str, Callable[..., Any]] = {
    "allocation": run_allocation_experiment,
    "performance": run_performance_experiment,
}


def default_cache_dir() -> Path:
    """The default on-disk cache location.

    ``$REPRO_CACHE_DIR`` wins; otherwise ``$XDG_CACHE_HOME/repro`` (or
    ``~/.cache/repro``).
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


# ---------------------------------------------------------------------------
# Tasks and cache keys
# ---------------------------------------------------------------------------


def _canonical(value: Any) -> Any:
    """A JSON-serializable, order-stable projection of a config value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return [type(value).__name__, fields]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass(frozen=True)
class ExperimentTask:
    """One executable sweep point: a test kind, a config, and kwargs.

    ``kwargs`` is stored as a sorted tuple of pairs so tasks stay hashable
    and their cache keys are independent of keyword order.  ``None``
    values are dropped at construction — passing ``fill_fraction=None``
    means the same thing as omitting it, and must hash the same.
    """

    kind: str
    config: ExperimentConfig
    kwargs: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _EXPERIMENT_KINDS:
            raise ExperimentError(f"unknown experiment kind {self.kind!r}")

    @classmethod
    def allocation(cls, config: ExperimentConfig, **kwargs: Any) -> "ExperimentTask":
        """An allocation (fragmentation) test point."""
        return cls("allocation", config, _freeze_kwargs(kwargs))

    @classmethod
    def performance(cls, config: ExperimentConfig, **kwargs: Any) -> "ExperimentTask":
        """A performance (application + sequential) test point."""
        return cls("performance", config, _freeze_kwargs(kwargs))

    def execute(self) -> Any:
        """Run the experiment synchronously in this process."""
        return _EXPERIMENT_KINDS[self.kind](self.config, **dict(self.kwargs))

    @property
    def cache_key(self) -> str:
        """Stable content hash identifying this point's result."""
        payload = json.dumps(
            [
                "repro-experiment",
                CACHE_FORMAT_VERSION,
                self.kind,
                _canonical(self.config),
                _canonical(dict(self.kwargs)),
            ],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def describe(self) -> str:
        """One-line label for progress reports."""
        return f"{self.kind}: {self.config.describe()}"


def _freeze_kwargs(kwargs: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted((k, v) for k, v in kwargs.items() if v is not None))


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------


#: Magic prefix of a checksummed cache entry (version in the tag).
_CACHE_MAGIC = b"RPRC2\n"

#: Per-process serial for temp-file names: two threads of one process
#: storing the same key concurrently must never share a temp path.
_TEMP_SERIAL = itertools.count()


class ResultCache:
    """Pickle-per-key result store with atomic, checksummed writes.

    Entries are written to a temp file and ``os.replace``d into place, so
    readers never observe a half-written entry; each entry carries a
    SHA-256 of its payload, verified on every load.  Corrupt, truncated,
    or tampered entries are treated as misses — and *evicted*, so a bad
    entry costs one recompute instead of a validation failure on every
    subsequent run.  The cache is an accelerator, not a source of truth.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def load(self, key: str) -> Any | None:
        """The cached result for ``key``, or ``None`` on a miss."""
        path = self.path(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            self.misses += 1
            return None
        try:
            magic, digest, payload = (
                blob[: len(_CACHE_MAGIC)],
                blob[len(_CACHE_MAGIC) : len(_CACHE_MAGIC) + 64],
                blob[len(_CACHE_MAGIC) + 64 :],
            )
            if magic != _CACHE_MAGIC:
                raise ValueError("bad cache magic")
            if hashlib.sha256(payload).hexdigest().encode() != digest:
                raise ValueError("cache checksum mismatch")
            result = pickle.loads(payload)
        except Exception:
            # A corrupt or truncated entry is a miss, never an error —
            # pickle raises far more than PickleError on garbage bytes
            # (ValueError, KeyError, UnicodeDecodeError, ImportError...).
            # Evict it so the recompute's store replaces it for good.
            self._evict(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _evict(self, path: Path) -> None:
        self.evictions += 1
        with contextlib.suppress(OSError):
            path.unlink()

    def stats_line(self) -> str:
        """``hits/misses/evictions`` summary for end-of-sweep logs."""
        return (
            f"cache: {self.hits} hit{'s' if self.hits != 1 else ''}, "
            f"{self.misses} miss{'es' if self.misses != 1 else ''}, "
            f"{self.evictions} evicted"
        )

    def store(self, key: str, result: Any) -> None:
        """Persist ``result`` under ``key`` (atomic rename, last wins).

        Safe under concurrent writers: every writer gets a unique temp
        file (pid alone is not enough — the experiment service races
        multiple threads of one process on the same key), the payload is
        fsynced before the rename, and ``os.replace`` is atomic, so a
        reader (or a crash at any instant) sees either the old complete
        entry or the new complete entry, never a torn one.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        final = self.path(key)
        temp = final.with_name(
            f"{final.name}.{os.getpid()}.{next(_TEMP_SERIAL)}.tmp"
        )
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest().encode()
        try:
            with open(temp, "wb") as handle:
                handle.write(_CACHE_MAGIC)
                handle.write(digest)
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, final)
        finally:
            with contextlib.suppress(OSError):
                temp.unlink()


# ---------------------------------------------------------------------------
# Outcomes, stats, and the runner
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PointOutcome:
    """What happened to one task: a result, or a structured failure.

    Attributes:
        index: the task's position in the submitted sequence (outcomes
            are returned in submission order regardless of completion
            order).
        result: the experiment result, or ``None`` if the point failed.
        error: ``None`` on success; otherwise the worker's formatted
            traceback — the sweep's other points still complete.
        elapsed_s: wall-clock seconds this point took (0 for cache hits).
        from_cache: True when the result was replayed from the cache.
    """

    index: int
    task: ExperimentTask
    result: Any | None
    error: str | None = None
    elapsed_s: float = 0.0
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class RunnerStats:
    """Counters across a runner's lifetime (all ``run`` calls)."""

    executed: int = 0
    cached: int = 0
    failed: int = 0
    elapsed_s: float = 0.0

    def summary(self) -> str:
        """One-line summary for logs: ``3 executed, 9 cached, 0 failed``."""
        return (
            f"{self.executed} executed, {self.cached} cached, "
            f"{self.failed} failed ({self.elapsed_s:.1f}s)"
        )


#: Progress callback: (outcome, completed count, total count).
ProgressCallback = Callable[[PointOutcome, int, int], None]


def _worker(task: ExperimentTask) -> tuple[str, Any, float]:
    """Execute one task; never raise — failures travel as data.

    Runs in worker processes (spawn) and inline for ``jobs=1``; both
    paths share it so serial and parallel execution are identical.
    """
    start = time.perf_counter()
    try:
        result = task.execute()
        return ("ok", result, time.perf_counter() - start)
    except Exception:  # noqa: BLE001 - structured failure channel
        return ("error", traceback.format_exc(), time.perf_counter() - start)


class ExperimentRunner:
    """Executes independent experiment tasks, in parallel, with caching.

    Args:
        jobs: worker processes.  1 (default) runs inline in this process;
            ``None`` or 0 means one per CPU.
        cache_dir: result cache directory; ``None`` disables caching.
        use_cache: master switch — False ignores ``cache_dir`` entirely.
        progress: optional per-point completion callback.
        timeout_s: per-task wall-clock budget.  A task over budget has
            its worker killed (and retried if ``retries`` allows); a
            timeout forces pool execution even at ``jobs=1``.
        retries: extra attempts after a worker crash or timeout.
            Deterministic task exceptions are *not* retried — the same
            configuration fails the same way every time.
        backoff_base_s: first retry delay; doubles per attempt, plus
            seeded jitter.
        checkpoint_dir: sweep checkpoint directory; every completed
            point is flushed there so an interrupted sweep can resume.
        resume: replay completed points from ``checkpoint_dir`` instead
            of re-running them.
        telemetry: optional live-progress callback ``(task index,
            frame)``; frames come from running experiments (see
            :mod:`repro.obs.telemetry`), streamed over the supervision
            pipes for pool workers and delivered directly for inline
            execution.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        cache_dir: str | Path | None = None,
        use_cache: bool = True,
        progress: ProgressCallback | None = None,
        timeout_s: float | None = None,
        retries: int = 0,
        backoff_base_s: float = 0.5,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
        telemetry: Callable[[int, dict], None] | None = None,
    ) -> None:
        if jobs is not None and jobs < 0:
            raise ConfigurationError(f"jobs must be >= 0: {jobs}")
        if not jobs:
            jobs = os.cpu_count() or 1
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError(f"timeout must be positive: {timeout_s}")
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0: {retries}")
        if resume and not checkpoint_dir:
            raise ConfigurationError("resume requires a checkpoint directory")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if (use_cache and cache_dir) else None
        self.progress = progress
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.checkpoint = (
            SweepCheckpoint(checkpoint_dir) if checkpoint_dir else None
        )
        self.resume = resume
        self.telemetry = telemetry
        self.stats = RunnerStats()

    # -- execution ---------------------------------------------------------

    def run(self, tasks: Sequence[ExperimentTask]) -> list[PointOutcome]:
        """Execute every task; return outcomes in submission order.

        Cached and checkpointed points are replayed without executing;
        pending points fan across the supervised pool (or run inline for
        ``jobs=1`` with no timeout).  A failing point yields an outcome
        with ``error`` set — it never raises here and never interrupts
        sibling points.

        Raises:
            SweepInterrupted: on ``KeyboardInterrupt``.  Results already
                computed are in the cache and checkpoint (both are
                flushed point by point); the exception names the
                directory holding the partial results.
        """
        started = time.perf_counter()
        outcomes: list[PointOutcome | None] = [None] * len(tasks)
        pending: list[tuple[int, ExperimentTask]] = []
        total = len(tasks)
        completed = 0
        if self.checkpoint is not None:
            self.checkpoint.begin(total, self.resume)

        for index, task in enumerate(tasks):
            cached = None
            if self.checkpoint is not None and self.resume:
                cached = self.checkpoint.result_for(task.cache_key)
            if cached is None and self.cache:
                cached = self.cache.load(task.cache_key)
            if cached is not None:
                outcomes[index] = PointOutcome(
                    index, task, cached, from_cache=True
                )
                self.stats.cached += 1
                completed += 1
                if self.checkpoint is not None:
                    self.checkpoint.record(task.cache_key, cached)
                self._report(outcomes[index], completed, total)
            else:
                pending.append((index, task))

        use_pool = bool(pending) and (
            (self.jobs > 1 and len(pending) > 1) or self.timeout_s is not None
        )
        if use_pool:
            pool = SupervisedPool(
                _worker,
                n_workers=min(self.jobs, len(pending)),
                timeout_s=self.timeout_s,
                retries=self.retries,
                backoff_base_s=self.backoff_base_s,
                telemetry=self.telemetry,
            )
            finished = pool.run(pending)
        else:
            finished = self._run_inline(pending)

        try:
            for index, task, (status, payload, elapsed) in finished:
                if status == "ok":
                    outcome = PointOutcome(index, task, payload, elapsed_s=elapsed)
                    self.stats.executed += 1
                    if self.cache:
                        self.cache.store(task.cache_key, payload)
                    if self.checkpoint is not None:
                        self.checkpoint.record(task.cache_key, payload)
                else:
                    outcome = PointOutcome(
                        index, task, None, error=payload, elapsed_s=elapsed
                    )
                    self.stats.failed += 1
                outcomes[index] = outcome
                completed += 1
                self._report(outcome, completed, total)
        except KeyboardInterrupt:
            # Flush what we have and report how far we got; the CLI maps
            # this to the conventional exit code 130.
            if self.checkpoint is not None:
                self.checkpoint.flush()
            self.stats.elapsed_s += time.perf_counter() - started
            partial_dir = (
                self.checkpoint.directory
                if self.checkpoint is not None
                else (self.cache.directory if self.cache else None)
            )
            raise SweepInterrupted(partial_dir, completed, total) from None
        finally:
            # Any abnormal exit (interrupt, a failing progress callback,
            # a cache-store error) must still tear the pool down: closing
            # the generator runs its ``finally`` and reaps every spawned
            # worker, so repeated in-process sweeps — the daemon's
            # steady state — leak no child processes.
            finished.close()

        self.stats.elapsed_s += time.perf_counter() - started
        return [o for o in outcomes if o is not None]

    def results(self, tasks: Sequence[ExperimentTask]) -> list[Any]:
        """Like :meth:`run`, but unwrap results and raise on any failure.

        All points complete (and successful ones are cached) before the
        aggregated :class:`ExperimentError` is raised, so a re-run only
        repeats the diverging configurations.
        """
        outcomes = self.run(tasks)
        failures = [o for o in outcomes if not o.ok]
        if failures:
            details = "\n\n".join(
                f"[{o.index}] {o.task.describe()}\n{o.error}" for o in failures
            )
            raise ExperimentError(
                f"{len(failures)} of {len(outcomes)} sweep points failed:\n"
                f"{details}"
            )
        return [o.result for o in outcomes]

    # -- internals ---------------------------------------------------------

    def _run_inline(self, pending):
        """Execute pending tasks in this process, one at a time.

        When a telemetry callback is wired, each task runs with an
        emitter installed that forwards its frames (tagged with the
        task's index) straight to the callback — the inline counterpart
        of the pool workers' pipe-backed emitter.
        """
        for index, task in pending:
            if self.telemetry is None:
                yield index, task, _worker(task)
                continue
            install_emitter(lambda frame, _i=index: self.telemetry(_i, frame))
            try:
                yield index, task, _worker(task)
            finally:
                uninstall_emitter()

    def _report(self, outcome: PointOutcome, completed: int, total: int) -> None:
        if self.progress is not None:
            self.progress(outcome, completed, total)


def execute_all(
    tasks: Sequence[ExperimentTask], runner: ExperimentRunner | None = None
) -> list[Any]:
    """Run tasks through ``runner`` (or a throwaway serial one); unwrap.

    This is the sweep modules' entry point: passing ``runner=None``
    preserves the historical serial, uncached behavior exactly.
    """
    runner = runner or ExperimentRunner()
    return runner.results(tasks)
